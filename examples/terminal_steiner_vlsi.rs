//! Minimal terminal Steiner trees for VLSI-style pin routing.
//!
//! In VLSI routing (Lin & Xue [28], cited by the paper), the terminals are
//! I/O pins that must connect through the routing fabric but may not be
//! used as through-vertices — i.e. they must be **leaves**: exactly the
//! terminal Steiner tree problem (§5.1). This example enumerates all
//! minimal routings of a pin set over a grid fabric.
//!
//! Run with: `cargo run --example terminal_steiner_vlsi`

use minimal_steiner::graph::{generators, UndirectedGraph, VertexId};
use minimal_steiner::steiner::verify::is_minimal_terminal_steiner_tree;
use minimal_steiner::{Enumeration, SteinerTree, TerminalSteinerTree};
use std::ops::ControlFlow;

fn main() {
    // Routing fabric: a 4×4 grid; pins are attached to fabric cells.
    let mut g: UndirectedGraph = generators::grid(4, 4);
    let pin_a = g.add_vertex();
    let pin_b = g.add_vertex();
    let pin_c = g.add_vertex();
    // Each pin attaches to two fabric cells (redundant taps).
    g.add_edge(pin_a, VertexId(0)).unwrap();
    g.add_edge(pin_a, VertexId(1)).unwrap();
    g.add_edge(pin_b, VertexId(15)).unwrap();
    g.add_edge(pin_b, VertexId(14)).unwrap();
    g.add_edge(pin_c, VertexId(12)).unwrap();
    g.add_edge(pin_c, VertexId(8)).unwrap();
    let pins = [pin_a, pin_b, pin_c];
    println!(
        "fabric: 4x4 grid + 3 pins with redundant taps (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );
    println!("pins: {pins:?} (must be leaves of every routing)");

    let mut count = 0u64;
    let mut min_len = usize::MAX;
    let stats = Enumeration::new(TerminalSteinerTree::new(&g, &pins))
        .for_each(|edges| {
            assert!(is_minimal_terminal_steiner_tree(&g, &pins, edges));
            count += 1;
            min_len = min_len.min(edges.len());
            ControlFlow::Continue(())
        })
        .expect("pins are connected through the fabric");
    println!("\n{count} minimal routings (minimal terminal Steiner trees)");
    println!("shortest routing uses {min_len} wires");
    println!(
        "enumeration: {} nodes, {} solutions, max gap {} work units",
        stats.nodes, stats.solutions, stats.max_emission_gap
    );

    // Contrast with plain Steiner trees, where pins may be through-routed:
    let plain = Enumeration::new(SteinerTree::new(&g, &pins))
        .count()
        .expect("pins are connected through the fabric");
    println!("\n(for contrast, plain minimal Steiner trees: {plain} — a superset count,");
    println!(" since those may route *through* a pin)");
}
