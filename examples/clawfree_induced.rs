//! Minimal induced Steiner subgraphs on claw-free graphs (§7), and the
//! Theorem 39 bridge back to ordinary Steiner trees.
//!
//! Run with: `cargo run --example clawfree_induced`

use minimal_steiner::graph::line_graph::Theorem39Instance;
use minimal_steiner::graph::{clawfree, generators, UndirectedGraph, VertexId};
use minimal_steiner::induced::supergraph::enumerate_minimal_induced_steiner_subgraphs;
use minimal_steiner::induced::verify::is_minimal_induced_steiner_subgraph;
use std::ops::ControlFlow;

fn main() {
    // Part 1: a claw-free graph directly — the line graph of a grid.
    let base = generators::grid(3, 3);
    let g = minimal_steiner::graph::line_graph::line_graph(&base);
    assert!(clawfree::is_claw_free(&g), "line graphs are claw-free");
    let terminals = [VertexId(0), VertexId(11)];
    println!(
        "claw-free host: L(3x3 grid) with n = {}, m = {}; terminals {:?}",
        g.num_vertices(),
        g.num_edges(),
        terminals
    );
    let mut count = 0u64;
    let stats = enumerate_minimal_induced_steiner_subgraphs(&g, &terminals, &mut |set| {
        assert!(is_minimal_induced_steiner_subgraph(&g, &terminals, set));
        count += 1;
        if count <= 3 {
            println!("  solution #{count}: {set:?}");
        }
        ControlFlow::Continue(())
    })
    .expect("claw-free input");
    println!(
        "  total: {} minimal induced Steiner subgraphs ({} supergraph nodes expanded)",
        stats.solutions, stats.expanded
    );

    // Part 2: Theorem 39 — Steiner Tree Enumeration through the claw-free
    // enumerator.
    let host =
        UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap();
    let w = [VertexId(0), VertexId(2), VertexId(4)];
    let inst = Theorem39Instance::new(&host, &w);
    assert!(
        clawfree::is_claw_free(&inst.h),
        "Theorem 39 construction is claw-free"
    );
    println!(
        "\nTheorem 39: (G, W) with n = {} -> claw-free H with n = {}",
        host.num_vertices(),
        inst.h.num_vertices()
    );
    let mut trees = Vec::new();
    enumerate_minimal_induced_steiner_subgraphs(&inst.h, &inst.h_terminals, &mut |set| {
        trees.push(inst.solution_to_edges(set));
        ControlFlow::Continue(())
    })
    .expect("claw-free instance");
    trees.sort();
    println!("minimal Steiner trees of (G, W) recovered through H:");
    for t in &trees {
        println!("  {t:?}");
    }

    // Cross-check against the direct enumerator of §4.
    let mut direct =
        minimal_steiner::Enumeration::new(minimal_steiner::SteinerTree::new(&host, &w))
            .collect_vec()
            .expect("valid instance");
    direct.sort();
    assert_eq!(
        trees, direct,
        "Theorem 39 round trip agrees with the direct enumerator"
    );
    println!("(matches the direct §4 enumerator: {} trees)", direct.len());
}
