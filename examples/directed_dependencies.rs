//! Minimal directed Steiner trees: dependency provisioning.
//!
//! A build system must materialize a set of target artifacts from a root
//! toolchain; edges are derivation steps. The inclusion-minimal derivation
//! plans are the minimal directed Steiner trees of §5.2. This example
//! enumerates all plans over a layered derivation DAG, streams them
//! through the iterator adapter, and checks the Lemma 35 branching
//! invariant.
//!
//! Run with: `cargo run --example directed_dependencies`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::paths::streaming::Enumeration;
use minimal_steiner::steiner::directed::enumerate_minimal_directed_steiner_trees;
use minimal_steiner::steiner::verify::is_minimal_directed_steiner_subgraph;
use std::ops::ControlFlow;

fn main() {
    let (d, root) = generators::layered_digraph(3, 3);
    // Targets: two artifacts in the last layer.
    let targets = [VertexId(7), VertexId(9)];
    println!(
        "derivation DAG: 3 layers x 3 (n = {}, m = {}), root {}, targets {:?}",
        d.num_vertices(),
        d.num_arcs(),
        root,
        targets
    );

    let mut count = 0u64;
    let mut smallest = usize::MAX;
    let stats = enumerate_minimal_directed_steiner_trees(&d, root, &targets, &mut |arcs| {
        assert!(is_minimal_directed_steiner_subgraph(&d, root, &targets, arcs));
        count += 1;
        smallest = smallest.min(arcs.len());
        ControlFlow::Continue(())
    });
    println!("\n{count} minimal derivation plans; smallest uses {smallest} steps");
    println!(
        "enumeration tree: {} nodes, deficient internal nodes: {} (Lemma 35 invariant)",
        stats.nodes, stats.deficient_internal_nodes
    );

    // Streaming consumption on a worker thread: take 5 plans lazily.
    let d2 = d.clone();
    let iter = Enumeration::spawn(move |sink| {
        enumerate_minimal_directed_steiner_trees(&d2, root, &targets, &mut |arcs| {
            sink(arcs.to_vec())
        });
    });
    println!("\nfirst 5 plans via the streaming iterator:");
    for (i, plan) in iter.take(5).enumerate() {
        println!("  plan {}: {:?}", i + 1, plan);
    }
}
