//! Minimal directed Steiner trees: dependency provisioning.
//!
//! A build system must materialize a set of target artifacts from a root
//! toolchain; edges are derivation steps. The inclusion-minimal derivation
//! plans are the minimal directed Steiner trees of §5.2. This example
//! enumerates all plans over a layered derivation DAG, streams them
//! through the iterator adapter, and checks the Lemma 35 branching
//! invariant.
//!
//! Run with: `cargo run --example directed_dependencies`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::steiner::verify::is_minimal_directed_steiner_subgraph;
use minimal_steiner::{DirectedSteinerTree, Enumeration};
use std::ops::ControlFlow;

fn main() {
    let (d, root) = generators::layered_digraph(3, 3);
    // Targets: two artifacts in the last layer.
    let targets = [VertexId(7), VertexId(9)];
    println!(
        "derivation DAG: 3 layers x 3 (n = {}, m = {}), root {}, targets {:?}",
        d.num_vertices(),
        d.num_arcs(),
        root,
        targets
    );

    let mut count = 0u64;
    let mut smallest = usize::MAX;
    let stats = Enumeration::new(DirectedSteinerTree::new(&d, root, &targets))
        .for_each(|arcs| {
            assert!(is_minimal_directed_steiner_subgraph(
                &d, root, &targets, arcs
            ));
            count += 1;
            smallest = smallest.min(arcs.len());
            ControlFlow::Continue(())
        })
        .expect("targets are derivable from the root");
    println!("\n{count} minimal derivation plans; smallest uses {smallest} steps");
    println!(
        "enumeration tree: {} nodes, deficient internal nodes: {} (Lemma 35 invariant)",
        stats.nodes, stats.deficient_internal_nodes
    );

    // Streaming consumption on a worker thread: take 5 plans lazily. The
    // problem owns the DAG so it can move to the worker.
    let iter = Enumeration::new(DirectedSteinerTree::from_graph(d, root, &targets))
        .into_iter()
        .expect("targets are derivable from the root");
    println!("\nfirst 5 plans via the iterator front-end:");
    for (i, plan) in iter.take(5).enumerate() {
        println!("  plan {}: {:?}", i + 1, plan);
    }
}
