//! A long-lived enumeration service for keyword search.
//!
//! Builds a movie database as a data graph and stands up a
//! `steiner-service` engine over it: two tenants (a high-priority
//! interactive UI and a batch crawler) submit keyword-search-style
//! Steiner queries concurrently, the engine's admission control pushes
//! back when the pool fills, a deadline'd query returns its valid
//! prefix, and a snapshot lets a restarted engine answer warm.
//!
//! Run with: `cargo run --example enumeration_service`

use std::time::Duration;

use minimal_steiner::kfragment::data_graph::DataGraph;
use minimal_steiner::service::{EngineConfig, EnumerationEngine, Query, QueryOptions, Ticket};
use minimal_steiner::SteinerError;

/// A small movie database: movies, people, genres as nodes; roles as
/// edges. Keyword queries become Steiner-tree enumerations over the
/// terminals carrying the keywords.
fn movie_db() -> DataGraph {
    let mut db = DataGraph::new();
    let heat = db.add_node(&["Heat", "1995"]);
    let ronin = db.add_node(&["Ronin"]);
    let deniro = db.add_node(&["DeNiro"]);
    let pacino = db.add_node(&["Pacino"]);
    let mann = db.add_node(&["Mann"]);
    let crime = db.add_node(&["crime"]);
    let thriller = db.add_node(&["thriller"]);
    db.add_edge(heat, deniro).unwrap();
    db.add_edge(heat, pacino).unwrap();
    db.add_edge(heat, mann).unwrap();
    db.add_edge(heat, crime).unwrap();
    db.add_edge(ronin, deniro).unwrap();
    db.add_edge(ronin, thriller).unwrap();
    db.add_edge(crime, thriller).unwrap();
    db
}

fn keyword_query(db: &DataGraph, keywords: &[&str]) -> Query {
    Query::SteinerTree {
        terminals: db.terminals_for(keywords).expect("keywords exist"),
    }
}

fn main() {
    let db = movie_db();
    let engine = EnumerationEngine::with_config(
        db.graph.clone(),
        EngineConfig {
            workers: 2,
            max_in_flight: 4,
            tenant_queue_depth: 2,
            cache_capacity_bytes: None,
        },
    );

    // Two tenants: the interactive UI gets three times the batch
    // crawler's dispatch share.
    let ui = engine.session_with_weight("ui", 3);
    let crawler = engine.session_with_weight("crawler", 1);

    println!("== concurrent keyword queries from two tenants ==");
    let searches = [
        (&ui, vec!["DeNiro", "Pacino"]),
        (&crawler, vec!["Pacino", "thriller"]),
        (&ui, vec!["DeNiro", "Mann"]),
        (&crawler, vec!["crime", "Ronin"]),
    ];
    let tickets: Vec<(&str, Vec<&str>, Ticket)> = searches
        .iter()
        .map(|(session, keywords)| {
            let ticket = session
                .submit(keyword_query(&db, keywords), QueryOptions::default())
                .expect("within admission limits");
            (
                if std::ptr::eq(*session, &ui) {
                    "ui"
                } else {
                    "crawler"
                },
                keywords.clone(),
                ticket,
            )
        })
        .collect();
    for (tenant, keywords, ticket) in tickets {
        let outcome = ticket.wait();
        println!(
            "  [{tenant}] {keywords:?}: {} Steiner trees ({})",
            outcome.solutions.len(),
            if outcome.stats.cache_hits > 0 {
                "cache hit"
            } else {
                "cold run"
            },
        );
    }

    println!("\n== admission control: a burst beyond the caps is refused ==");
    engine.pause(); // hold dispatch so the burst deterministically queues
    let query = keyword_query(&db, &["DeNiro", "Pacino"]);
    let mut held = Vec::new();
    for i in 0.. {
        match crawler.submit(query.clone(), QueryOptions::default()) {
            Ok(ticket) => held.push(ticket),
            Err(SteinerError::AdmissionRejected {
                in_flight,
                capacity,
            }) => {
                println!("  submission #{i} rejected: {in_flight}/{capacity} in flight");
                break;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    engine.resume();
    for ticket in held {
        assert!(ticket.wait().is_complete());
    }

    println!("\n== a deadline'd query returns its valid prefix ==");
    // An already-expired deadline makes the outcome deterministic for
    // this tiny graph; real deployments pass e.g. `.timeout(50ms)`.
    let outcome = ui
        .run(
            keyword_query(&db, &["DeNiro", "thriller"]),
            QueryOptions::default().timeout(Duration::ZERO),
        )
        .expect("admitted");
    match outcome.status {
        Err(SteinerError::DeadlineExceeded) => println!(
            "  deadline exceeded after {} delivered solutions (a valid prefix)",
            outcome.solutions.len()
        ),
        ref other => println!("  finished in time: {other:?}"),
    }

    println!("\n== warm restart from a snapshot ==");
    let blob = engine.snapshot();
    println!("  snapshot: {} bytes", blob.len());
    for report in engine.tenants() {
        println!(
            "  tenant {:10} weight {} completed {:2} rejected {} deadline-expired {}",
            report.name, report.weight, report.completed, report.rejected, report.deadline_exceeded
        );
    }
    drop(engine); // graceful drain

    let restarted = EnumerationEngine::new(db.graph.clone());
    let restored = restarted
        .restore(&blob)
        .expect("same graph, valid snapshot");
    println!("  restored {restored} cached queries into a fresh engine");
    let warm = restarted
        .session("ui")
        .run(
            keyword_query(&db, &["DeNiro", "Pacino"]),
            QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(warm.stats.cache_hits, 1);
    println!(
        "  repeated query answered warm: {} trees, {} cache hit(s), no search",
        warm.solutions.len(),
        warm.stats.cache_hits
    );
}
