//! Minimal Steiner forests for multicast group provisioning.
//!
//! A network operator must provision links so that each multicast group's
//! members can reach each other; different groups may share links. The
//! inclusion-minimal link sets are exactly the minimal Steiner forests of
//! §5 of the paper. This example enumerates them on a small backbone
//! topology and reports the cheapest options.
//!
//! The second half re-runs the same enumeration through the **sharded
//! front-end** (`with_threads`): the root's provisioning alternatives are
//! split across four workers and merged back deterministically, so the
//! plan stream is identical — byte for byte — while the subtree work
//! spreads across cores.
//!
//! Run with: `cargo run --example steiner_forest_multicast`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::steiner::verify::is_minimal_steiner_forest;
use minimal_steiner::{Enumeration, SteinerForest};
use std::ops::ControlFlow;
use std::time::Instant;

fn main() {
    // Backbone: a 3×5 grid of routers.
    let g = generators::grid(3, 5);
    println!(
        "backbone: 3x5 grid (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    // Two multicast groups.
    let groups = vec![
        vec![VertexId(0), VertexId(4), VertexId(14)], // group A: three sites
        vec![VertexId(10), VertexId(2)],              // group B: two sites
    ];
    println!("group A: {:?}", groups[0]);
    println!("group B: {:?}", groups[1]);

    let mut count = 0u64;
    let mut best: Option<Vec<_>> = None;
    let mut sizes: Vec<usize> = Vec::new();
    let stats = Enumeration::new(SteinerForest::new(&g, &groups))
        .for_each(|edges| {
            assert!(is_minimal_steiner_forest(&g, &groups, edges));
            count += 1;
            sizes.push(edges.len());
            if best.as_ref().is_none_or(|b: &Vec<_>| edges.len() < b.len()) {
                best = Some(edges.to_vec());
            }
            ControlFlow::Continue(())
        })
        .expect("every multicast group is connected");

    println!("\n{count} minimal provisioning plans (minimal Steiner forests)");
    sizes.sort_unstable();
    println!(
        "link counts: min {}, median {}, max {}",
        sizes.first().unwrap(),
        sizes[sizes.len() / 2],
        sizes.last().unwrap()
    );
    println!(
        "a cheapest plan uses {} links: {:?}",
        best.as_ref().unwrap().len(),
        best.unwrap()
    );
    println!(
        "enumeration: {} nodes, {} work units, max inter-solution gap {} units",
        stats.nodes, stats.work, stats.max_emission_gap
    );
    println!(
        "every internal node branched (Theorem 25 invariant): {}",
        stats.deficient_internal_nodes == 0
    );

    // The same enumeration, sharded across four workers. The merge is
    // deterministic, so the plan stream is identical to the sequential
    // run — verified here by re-collecting and comparing.
    println!("\n-- sharded front-end (with_threads(4)) --");
    let t0 = Instant::now();
    let sequential = Enumeration::new(SteinerForest::new(&g, &groups))
        .collect_vec()
        .expect("every multicast group is connected");
    let sequential_elapsed = t0.elapsed();
    let t0 = Instant::now();
    let sharded = Enumeration::new(SteinerForest::new(&g, &groups))
        .with_threads(4)
        .collect_vec()
        .expect("every multicast group is connected");
    let sharded_elapsed = t0.elapsed();
    assert_eq!(
        sequential, sharded,
        "the sharded stream is byte-identical to the sequential one"
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "sequential {sequential_elapsed:.1?} vs sharded x4 {sharded_elapsed:.1?} \
         on {cores} core(s); {} plans, identical order",
        sharded.len()
    );
    println!("(sharding pays off once the host has cores to spread the subtrees over)");
}
