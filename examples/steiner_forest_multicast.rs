//! Minimal Steiner forests for multicast group provisioning.
//!
//! A network operator must provision links so that each multicast group's
//! members can reach each other; different groups may share links. The
//! inclusion-minimal link sets are exactly the minimal Steiner forests of
//! §5 of the paper. This example enumerates them on a small backbone
//! topology and reports the cheapest options.
//!
//! Run with: `cargo run --example steiner_forest_multicast`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::steiner::verify::is_minimal_steiner_forest;
use minimal_steiner::{Enumeration, SteinerForest};
use std::ops::ControlFlow;

fn main() {
    // Backbone: a 3×5 grid of routers.
    let g = generators::grid(3, 5);
    println!(
        "backbone: 3x5 grid (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    // Two multicast groups.
    let groups = vec![
        vec![VertexId(0), VertexId(4), VertexId(14)], // group A: three sites
        vec![VertexId(10), VertexId(2)],              // group B: two sites
    ];
    println!("group A: {:?}", groups[0]);
    println!("group B: {:?}", groups[1]);

    let mut count = 0u64;
    let mut best: Option<Vec<_>> = None;
    let mut sizes: Vec<usize> = Vec::new();
    let stats = Enumeration::new(SteinerForest::new(&g, &groups))
        .for_each(|edges| {
            assert!(is_minimal_steiner_forest(&g, &groups, edges));
            count += 1;
            sizes.push(edges.len());
            if best.as_ref().is_none_or(|b: &Vec<_>| edges.len() < b.len()) {
                best = Some(edges.to_vec());
            }
            ControlFlow::Continue(())
        })
        .expect("every multicast group is connected");

    println!("\n{count} minimal provisioning plans (minimal Steiner forests)");
    sizes.sort_unstable();
    println!(
        "link counts: min {}, median {}, max {}",
        sizes.first().unwrap(),
        sizes[sizes.len() / 2],
        sizes.last().unwrap()
    );
    println!(
        "a cheapest plan uses {} links: {:?}",
        best.as_ref().unwrap().len(),
        best.unwrap()
    );
    println!(
        "enumeration: {} nodes, {} work units, max inter-solution gap {} units",
        stats.nodes, stats.work, stats.max_emission_gap
    );
    println!(
        "every internal node branched (Theorem 25 invariant): {}",
        stats.deficient_internal_nodes == 0
    );
}
