//! Quickstart: enumerate minimal Steiner trees of a small graph through
//! the unified `Enumeration` builder — push sink, bounded run, output
//! queue, pull iterator, and typed errors — plus the simple Algorithm 2
//! baseline for contrast.
//!
//! Run with: `cargo run --example quickstart`

use minimal_steiner::graph::{generators, UndirectedGraph, VertexId};
use minimal_steiner::steiner::simple::enumerate_minimal_steiner_trees_simple;
use minimal_steiner::steiner::verify::is_minimal_steiner_tree;
use minimal_steiner::{Enumeration, SteinerError, SteinerTree};
use std::ops::ControlFlow;

fn main() {
    // A 3×4 grid; terminals in three corners.
    let g = generators::grid(3, 4);
    let terminals = [VertexId(0), VertexId(3), VertexId(8)];
    println!(
        "graph: 3x4 grid (n = {}, m = {}), terminals = {:?}",
        g.num_vertices(),
        g.num_edges(),
        terminals
    );

    // 1. Push front-end: a sink sees each solution the moment it is
    //    emitted, with amortized O(n + m) time per solution (Theorem 17).
    let mut count = 0u64;
    let mut first: Option<Vec<_>> = None;
    let stats = Enumeration::new(SteinerTree::new(&g, &terminals))
        .for_each(|tree| {
            assert!(is_minimal_steiner_tree(&g, &terminals, tree));
            if first.is_none() {
                first = Some(tree.to_vec());
            }
            count += 1;
            ControlFlow::Continue(())
        })
        .expect("terminals are connected");
    println!("\npush front-end: {count} minimal Steiner trees");
    println!("  first solution (edge ids): {:?}", first.unwrap());
    println!(
        "  enumeration tree: {} nodes ({} internal / {} leaves), max depth {}",
        stats.nodes, stats.internal_nodes, stats.leaf_nodes, stats.max_depth
    );
    println!(
        "  every internal node had >= 2 children: {}",
        stats.deficient_internal_nodes == 0
    );
    println!(
        "  work: {} units (+{} preprocessing), max gap between solutions: {} units",
        stats.work, stats.preprocessing_work, stats.max_emission_gap
    );

    // 2. The simple Algorithm 2 finds the same set, with worse delay.
    let mut simple_count = 0u64;
    let simple_stats = enumerate_minimal_steiner_trees_simple(&g, &terminals, &mut |_| {
        simple_count += 1;
        ControlFlow::Continue(())
    });
    println!(
        "\nsimple Algorithm 2: {simple_count} trees, max gap {} units (vs {} improved)",
        simple_stats.max_emission_gap, stats.max_emission_gap
    );

    // 3. The output queue smooths the delay further (Theorem 20).
    let queued_count = Enumeration::new(SteinerTree::new(&g, &terminals))
        .with_default_queue()
        .count()
        .expect("terminals are connected");
    println!("output-queue front-end: {queued_count} trees (same set, bounded delay)");

    // 4. Early termination: the first 3 solutions via `with_limit`.
    let top = Enumeration::new(SteinerTree::new(&g, &terminals))
        .with_limit(3)
        .collect_vec()
        .expect("terminals are connected");
    println!("\nfirst 3 solutions:");
    for t in &top {
        println!("  {t:?}");
    }

    // 5. Pull front-end: a plain Iterator on a worker thread. The problem
    //    owns its graph (`from_graph`) so it can move to the worker.
    let lazy: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g, &terminals))
        .into_iter()
        .expect("terminals are connected")
        .take(2)
        .collect();
    println!(
        "\npull front-end: took {} solutions lazily from the iterator",
        lazy.len()
    );

    // 6. Invalid instances are typed errors, not panics.
    let disconnected = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let err = Enumeration::new(SteinerTree::new(&disconnected, &[VertexId(0), VertexId(2)]))
        .run()
        .unwrap_err();
    assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
    println!("\ninvalid instance reports a typed error: \"{err}\"");
}
