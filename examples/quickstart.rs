//! Quickstart: enumerate minimal Steiner trees of a small graph, three
//! ways — simple Algorithm 2, the improved linear-delay enumerator, and
//! the output-queue variant — and show the enumeration statistics.
//!
//! Run with: `cargo run --example quickstart`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::steiner::improved::{
    enumerate_minimal_steiner_trees, enumerate_minimal_steiner_trees_queued,
};
use minimal_steiner::steiner::simple::enumerate_minimal_steiner_trees_simple;
use minimal_steiner::steiner::verify::is_minimal_steiner_tree;
use std::ops::ControlFlow;

fn main() {
    // A 3×4 grid; terminals in three corners.
    let g = generators::grid(3, 4);
    let terminals = [VertexId(0), VertexId(3), VertexId(8)];
    println!(
        "graph: 3x4 grid (n = {}, m = {}), terminals = {:?}",
        g.num_vertices(),
        g.num_edges(),
        terminals
    );

    // 1. The improved enumerator (amortized O(n + m) per solution).
    let mut count = 0u64;
    let mut first: Option<Vec<_>> = None;
    let stats = enumerate_minimal_steiner_trees(&g, &terminals, &mut |tree| {
        assert!(is_minimal_steiner_tree(&g, &terminals, tree));
        if first.is_none() {
            first = Some(tree.to_vec());
        }
        count += 1;
        ControlFlow::Continue(())
    });
    println!("\nimproved enumerator: {count} minimal Steiner trees");
    println!("  first solution (edge ids): {:?}", first.unwrap());
    println!(
        "  enumeration tree: {} nodes ({} internal / {} leaves), max depth {}",
        stats.nodes, stats.internal_nodes, stats.leaf_nodes, stats.max_depth
    );
    println!(
        "  every internal node had >= 2 children: {}",
        stats.deficient_internal_nodes == 0
    );
    println!(
        "  work: {} units (+{} preprocessing), max gap between solutions: {} units",
        stats.work, stats.preprocessing_work, stats.max_emission_gap
    );

    // 2. The simple Algorithm 2 finds the same set, with worse delay.
    let mut simple_count = 0u64;
    let simple_stats = enumerate_minimal_steiner_trees_simple(&g, &terminals, &mut |_| {
        simple_count += 1;
        ControlFlow::Continue(())
    });
    println!(
        "\nsimple Algorithm 2: {simple_count} trees, max gap {} units (vs {} improved)",
        simple_stats.max_emission_gap, stats.max_emission_gap
    );

    // 3. The output queue smooths the delay further (Theorem 20).
    let mut queued_count = 0u64;
    enumerate_minimal_steiner_trees_queued(&g, &terminals, None, &mut |_| {
        queued_count += 1;
        ControlFlow::Continue(())
    });
    println!("output-queue variant: {queued_count} trees (same set, bounded delay)");

    // 4. Early termination: the first 3 solutions only.
    let mut top = Vec::new();
    enumerate_minimal_steiner_trees(&g, &terminals, &mut |tree| {
        top.push(tree.to_vec());
        if top.len() == 3 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    println!("\nfirst 3 solutions:");
    for t in &top {
        println!("  {t:?}");
    }
}
