//! Keyword search on a data graph — the paper's motivating application
//! (Kimelfeld & Sagiv's K-fragments).
//!
//! Builds a small movie database as a data graph and answers keyword
//! queries by enumerating K-fragments: undirected (minimal Steiner
//! trees), strong (keyword nodes as leaves), and directed fragments, with
//! top-k-smallest ranking.
//!
//! Run with: `cargo run --example keyword_search`

use minimal_steiner::kfragment::data_graph::{DataGraph, DirectedDataGraph};
use minimal_steiner::kfragment::fragments::{
    directed_k_fragments, k_fragments, strong_k_fragments,
};
use minimal_steiner::kfragment::ranking::smallest_k;
use minimal_steiner::{Enumeration, ResultCache, SteinerTree};
use std::ops::ControlFlow;

fn main() {
    // Movie database: movies, people, genres as nodes; roles as edges.
    let mut db = DataGraph::new();
    let heat = db.add_node(&["Heat", "1995"]);
    let ronin = db.add_node(&["Ronin"]);
    let deniro = db.add_node(&["DeNiro"]);
    let pacino = db.add_node(&["Pacino"]);
    let mann = db.add_node(&["Mann"]);
    let crime = db.add_node(&["crime"]);
    let thriller = db.add_node(&["thriller"]);
    db.add_edge(heat, deniro).unwrap();
    db.add_edge(heat, pacino).unwrap();
    db.add_edge(heat, mann).unwrap();
    db.add_edge(heat, crime).unwrap();
    db.add_edge(ronin, deniro).unwrap();
    db.add_edge(ronin, thriller).unwrap();
    db.add_edge(crime, thriller).unwrap();

    println!("query: DeNiro AND Pacino");
    let mut answers = Vec::new();
    k_fragments(&db, &["DeNiro", "Pacino"], &mut |edges| {
        answers.push(edges.to_vec());
        ControlFlow::Continue(())
    })
    .expect("keywords exist");
    println!("  {} K-fragments:", answers.len());
    for a in &answers {
        println!("    edges {a:?}");
    }

    println!("\nquery: Pacino AND thriller (top-2 smallest fragments)");
    let top = smallest_k(2, None, |sink| {
        k_fragments(&db, &["Pacino", "thriller"], sink).expect("keywords exist");
    });
    for (rank, a) in top.iter().enumerate() {
        println!("  #{} ({} edges): {a:?}", rank + 1, a.len());
    }

    println!("\nquery (strong): DeNiro AND Pacino AND Mann — keyword nodes must be leaves");
    let mut strong = 0;
    strong_k_fragments(&db, &["DeNiro", "Pacino", "Mann"], &mut |edges| {
        strong += 1;
        println!("  strong fragment: {edges:?}");
        ControlFlow::Continue(())
    })
    .expect("keywords exist");
    println!("  ({strong} strong fragments)");

    // Directed variant: citations database.
    let mut cite = DirectedDataGraph::new();
    let survey = cite.add_node(&["survey"]);
    let a = cite.add_node(&["enumeration"]);
    let b = cite.add_node(&["steiner"]);
    let c = cite.add_node(&[]);
    cite.add_arc(survey, a).unwrap();
    cite.add_arc(survey, c).unwrap();
    cite.add_arc(c, b).unwrap();
    cite.add_arc(a, b).unwrap();
    println!("\ndirected query: enumeration AND steiner (rooted fragments)");
    directed_k_fragments(&cite, &["enumeration", "steiner"], &mut |f| {
        println!("  root {} arcs {:?}", f.root, f.arcs);
        ControlFlow::Continue(())
    })
    .expect("keywords exist");

    // Production keyword search is repetitive: the same query arrives
    // again and again while the data graph rarely changes. A ResultCache
    // serves the repeats from the interned solution store — no search.
    println!("\nrepeated query: DeNiro AND Pacino, through a ResultCache");
    let cache = ResultCache::new();
    let terminals = db.terminals_for(&["DeNiro", "Pacino"]).expect("keywords");
    for round in 1..=2 {
        let (run, stats) = Enumeration::new(SteinerTree::new(&db.graph, &terminals))
            .cached(&cache)
            .with_stats();
        let count = run.count().expect("valid instance");
        let s = stats.get();
        println!(
            "  round {round}: {count} fragments, cache {} (work {} units)",
            if s.cache_hits > 0 { "hit" } else { "miss" },
            s.work,
        );
    }
    let cs = cache.stats();
    println!(
        "  cache: {} hits / {} misses, {} interned solutions, {} bytes",
        cs.hits, cs.misses, cs.solutions, cs.bytes
    );
}
