//! The §6 hardness results, executed.
//!
//! 1. Theorem 38: minimal group Steiner trees on a star ≡ minimal
//!    hypergraph transversals — we run the reduction in both directions.
//! 2. Theorem 37: internal Steiner trees with `W = V ∖ {s, t}` exist iff
//!    an `s`-`t` Hamiltonian path exists.
//!
//! Run with: `cargo run --example hardness_demo`

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::hardness::group_steiner::{
    minimal_transversals_via_group_steiner, star_group_steiner_via_transversals, StarInstance,
};
use minimal_steiner::hardness::hypergraph::Hypergraph;
use minimal_steiner::hardness::internal::{
    hamiltonian_st_path_exists, internal_steiner_tree_exists_brute,
};
use minimal_steiner::hardness::transversal::enumerate_minimal_transversals;
use std::ops::ControlFlow;

fn main() {
    // --- Theorem 38 ---------------------------------------------------
    let h = Hypergraph::new(
        5,
        vec![vec![0, 1, 2], vec![1, 3], vec![2, 3, 4], vec![0, 4]],
    );
    println!("hypergraph H on 5 vertices with edges {:?}", h.edges);

    println!("\nminimal transversals (MMCS-style enumerator):");
    let count = enumerate_minimal_transversals(&h, &mut |t| {
        println!("  {t:?}");
        ControlFlow::Continue(())
    });
    println!("  ({count} minimal transversals)");

    let inst = StarInstance::new(&h);
    println!(
        "\nTheorem 38 star instance: star with {} leaves, {} groups",
        h.n,
        inst.groups.len()
    );
    let via_gst = minimal_transversals_via_group_steiner(&h);
    println!(
        "transversals recovered from group Steiner trees: {}",
        via_gst.len()
    );
    assert_eq!(via_gst.len() as u64, count);

    let gst = star_group_steiner_via_transversals(&h);
    println!("group Steiner trees built from transversals: {}", gst.len());
    for t in gst.iter().take(3) {
        println!("  tree vertices {:?} edges {:?}", t.vertices, t.edges);
    }
    println!(
        "=> an output-polynomial group Steiner enumerator would dualize hypergraphs\n\
         in output-polynomial time (open since Fredman–Khachiyan)."
    );

    // --- Theorem 37 ---------------------------------------------------
    println!("\nTheorem 37: internal Steiner trees vs Hamiltonian paths");
    for (name, g) in [
        ("C6", generators::cycle(6)),
        ("2x3 grid", generators::grid(2, 3)),
        ("star(4)", generators::star(4)),
    ] {
        let n = g.num_vertices();
        let (s, t) = (VertexId(0), VertexId::new(n - 1));
        let w: Vec<VertexId> = g.vertices().filter(|&v| v != s && v != t).collect();
        let ham = hamiltonian_st_path_exists(&g, s, t);
        let ist = internal_steiner_tree_exists_brute(&g, &w);
        println!(
            "  {name}: s-t Hamiltonian path: {ham:5} | internal Steiner tree (W = V-s-t): {ist:5}"
        );
        assert_eq!(ham, ist, "Theorem 37 equivalence");
    }
    println!("=> deciding emptiness is NP-hard; no incremental-polynomial enumeration\n   unless P = NP.");
}
