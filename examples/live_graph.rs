//! Keyword search on a *live* data graph: the serving graph mutates
//! between queries, and the epoch engine invalidates exactly the cache
//! entries whose region an edit touched.
//!
//! Two disjoint catalog shards (movies, music) live in one undirected
//! serving graph; regions are connected components, so each shard is
//! its own region. Tenants answer keyword queries (minimal Steiner
//! trees over the keyword nodes) while an edge stream applies edits to
//! the movie shard. After every batch the engine reports how many cache
//! entries survived versus how many were dropped — the music shard's
//! entries ride through every movie edit untouched and keep replaying
//! as cache hits.
//!
//! Run with: `cargo run --example live_graph`

use minimal_steiner::graph::{UndirectedGraph, VertexId};
use minimal_steiner::service::{EnumerationEngine, GraphMutation, Query, QueryOptions};

/// Vertex labels for the demo data graph: nodes 0..=5 are the movie
/// shard, 6..=10 the music shard. The shards are disjoint components.
const LABELS: [&str; 11] = [
    "Heat",       // 0: movie
    "Ronin",      // 1: movie
    "DeNiro",     // 2: actor
    "Pacino",     // 3: actor
    "Mann",       // 4: director
    "crime",      // 5: genre
    "KindOfBlue", // 6: album
    "Davis",      // 7: artist
    "Coltrane",   // 8: artist
    "jazz",       // 9: genre
    "BlueTrain",  // 10: album
];

fn v(label: &str) -> VertexId {
    VertexId(
        LABELS
            .iter()
            .position(|&l| l == label)
            .expect("known label") as u32,
    )
}

fn names(vs: &[VertexId]) -> Vec<&'static str> {
    vs.iter().map(|&x| LABELS[x.0 as usize]).collect()
}

fn main() {
    // The initial graph: role edges inside each shard.
    let g = UndirectedGraph::from_edges(
        LABELS.len(),
        &[
            (0, 2),  // Heat - DeNiro
            (0, 3),  // Heat - Pacino
            (0, 4),  // Heat - Mann
            (0, 5),  // Heat - crime
            (1, 2),  // Ronin - DeNiro
            (6, 7),  // KindOfBlue - Davis
            (6, 9),  // KindOfBlue - jazz
            (10, 8), // BlueTrain - Coltrane
            (10, 9), // BlueTrain - jazz
        ],
    )
    .expect("well-formed seed graph");
    let engine = EnumerationEngine::new(g);
    let session = engine.session("searcher");

    // Two standing keyword queries, one per shard.
    let movie_q = Query::SteinerTree {
        terminals: vec![v("DeNiro"), v("Pacino")],
    };
    let music_q = Query::SteinerTree {
        terminals: vec![v("Davis"), v("Coltrane")],
    };
    for (name, q) in [("movies", &movie_q), ("music", &music_q)] {
        let out = session
            .run(q.clone(), QueryOptions::default())
            .expect("admitted");
        println!(
            "epoch {}: {name} query -> {} fragments (cold)",
            engine.epoch(),
            out.solutions.len()
        );
    }

    // The edge stream: edits arriving one batch at a time, all confined
    // to the movie shard.
    let stream: [(&str, Vec<GraphMutation>); 3] = [
        (
            "Pacino joins the Ronin cast",
            vec![GraphMutation::InsertEdge {
                u: v("Ronin"),
                v: v("Pacino"),
            }],
        ),
        (
            "Ronin tagged with the crime genre",
            vec![GraphMutation::InsertEdge {
                u: v("Ronin"),
                v: v("crime"),
            }],
        ),
        (
            "the newest edge is retracted again",
            vec![GraphMutation::RemoveEdge(minimal_steiner::graph::EdgeId(
                10,
            ))],
        ),
    ];

    for (what, batch) in stream {
        let out = engine.apply_mutations(&batch).expect("valid edit");
        println!(
            "\nepoch {}: {what}\n  touched regions {:?} (region id = min vertex, {:?})\n  cache entries: {} retained, {} invalidated",
            out.epoch,
            out.touched_regions,
            names(&out.touched_regions.iter().map(|&r| VertexId(r)).collect::<Vec<_>>()),
            out.entries_retained,
            out.entries_invalidated,
        );

        // Replay both standing queries at the new epoch.
        for (name, q) in [("movies", &movie_q), ("music", &music_q)] {
            let out = session
                .run(q.clone(), QueryOptions::default())
                .expect("admitted");
            let how = if out.stats.cache_hits == 1 {
                "cache hit — region untouched"
            } else {
                "re-enumerated — region changed"
            };
            println!(
                "  {name} query -> {} fragments ({how})",
                out.solutions.len()
            );
        }
    }

    let totals = engine.mutation_stats();
    println!(
        "\nlifetime mutation totals: {} entries retained, {} invalidated across {} epochs",
        totals.entries_retained,
        totals.entries_invalidated,
        engine.epoch()
    );
}
