//! Snapshot persistence properties: snapshot → restore → replay is
//! byte-identical for every paper problem on arbitrary instances, the
//! byte format is deterministic and self-verifying, and corrupted or
//! mismatched snapshots are rejected with typed errors — never
//! silently served.

use minimal_steiner::graph::{DiGraph, RegionMap, UndirectedGraph, VertexId};
use minimal_steiner::steiner::snapshot::{paper_problem_kinds, SnapshotError};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, ResultCache, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Strategy: a connected multigraph on `n ∈ [2, 7]` vertices — a path
/// backbone plus random extra (possibly parallel) edges.
fn connected_graph() -> impl Strategy<Value = UndirectedGraph> {
    (2usize..=7).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n), 0..8);
        extra.prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for i in 1..n {
                g.add_edge_indices(i - 1, i).unwrap();
            }
            for (u, v) in pairs {
                if u != v {
                    g.add_edge_indices(u, v).unwrap();
                }
            }
            g
        })
    })
}

fn terminal_subset(n: usize, mask: u8, max: usize) -> Vec<VertexId> {
    let mask = mask as u64;
    let mut w: Vec<VertexId> = (0..n.min(63))
        .filter(|i| mask & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect();
    w.truncate(max);
    w
}

/// Runs `enumeration` against `cache` and returns the delivered stream,
/// or `None` for invalid instances (nothing gets cached for those).
fn run_cached<P>(e: Enumeration<P>, cache: &ResultCache<P::Item>) -> Option<Vec<Vec<P::Item>>>
where
    P: minimal_steiner::MinimalSteinerProblem + Send,
    P::Item: Send,
{
    let mut out = Vec::new();
    e.cached(cache)
        .for_each(|s| {
            out.push(s.to_vec());
            ControlFlow::Continue(())
        })
        .ok()
        .map(|_| out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three undirected problems cached into one store: snapshot,
    /// restore into a fresh store, replay — same bytes, pure hits —
    /// and re-snapshotting the restored store reproduces the blob.
    #[test]
    fn snapshot_roundtrip_replays_undirected_problems(
        g in connected_graph(),
        mask in 1u8..128,
    ) {
        prop_assume!(g.num_edges() <= 18);
        let w = terminal_subset(g.num_vertices(), mask, 4);
        prop_assume!(w.len() >= 2);

        let cache = ResultCache::new();
        let tree = run_cached(Enumeration::new(SteinerTree::new(&g, &w)), &cache);
        let forest = run_cached(
            Enumeration::new(SteinerForest::new(&g, std::slice::from_ref(&w))),
            &cache,
        );
        let terminal = run_cached(
            Enumeration::new(TerminalSteinerTree::new(&g, &w)),
            &cache,
        );
        let stored = [&tree, &forest, &terminal]
            .iter()
            .filter(|r| r.is_some())
            .count() as u64;
        prop_assume!(stored > 0);

        let blob = cache.snapshot();
        prop_assert_eq!(&blob, &cache.snapshot(), "snapshot bytes are deterministic");

        let fresh: ResultCache<minimal_steiner::graph::EdgeId> = ResultCache::new();
        let kinds = paper_problem_kinds();
        let regions = RegionMap::of_undirected(&g);
        let restored = fresh
            .restore(&blob, &kinds, Some(&regions))
            .expect("self-produced snapshot restores");
        prop_assert_eq!(restored, stored);
        prop_assert_eq!(&fresh.snapshot(), &blob, "restore is lossless");

        // Replays are pure hits with byte-identical streams.
        if let Some(cold) = &tree {
            let warm = run_cached(Enumeration::new(SteinerTree::new(&g, &w)), &fresh).unwrap();
            prop_assert_eq!(&warm, cold);
        }
        if let Some(cold) = &forest {
            let warm =
                run_cached(Enumeration::new(SteinerForest::new(&g, std::slice::from_ref(&w))), &fresh)
                    .unwrap();
            prop_assert_eq!(&warm, cold);
        }
        if let Some(cold) = &terminal {
            let warm =
                run_cached(Enumeration::new(TerminalSteinerTree::new(&g, &w)), &fresh).unwrap();
            prop_assert_eq!(&warm, cold);
        }
        let stats = fresh.stats();
        prop_assert_eq!(stats.hits, stored, "every replay was a hit");
        prop_assert_eq!(stats.misses, 0);
    }

    /// The directed problem round-trips through its arc-item store.
    #[test]
    fn snapshot_roundtrip_replays_directed_problem(
        n in 2usize..=6,
        arcs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
        mask in 1u8..128,
    ) {
        let mut d = DiGraph::new(n);
        for i in 1..n {
            d.add_arc_indices(i - 1, i).unwrap();
        }
        for (u, v) in arcs {
            if u != v && u < n && v < n {
                d.add_arc_indices(u, v).unwrap();
            }
        }
        let w = terminal_subset(n, mask | 2, 3);
        prop_assume!(!w.is_empty());
        let root = VertexId(0);

        let cache = ResultCache::new();
        let cold = run_cached(
            Enumeration::new(DirectedSteinerTree::new(&d, root, &w)),
            &cache,
        );
        prop_assume!(cold.is_some());
        let cold = cold.unwrap();

        let blob = cache.snapshot();
        let fresh = ResultCache::new();
        let regions = RegionMap::of_digraph(&d);
        let restored = fresh
            .restore(&blob, &paper_problem_kinds(), Some(&regions))
            .expect("self-produced snapshot restores");
        prop_assert_eq!(restored, 1);
        let warm = run_cached(
            Enumeration::new(DirectedSteinerTree::new(&d, root, &w)),
            &fresh,
        )
        .unwrap();
        prop_assert_eq!(warm, cold);
        prop_assert_eq!(fresh.stats().hits, 1);
    }

    /// Single-byte corruption anywhere in a snapshot is always caught:
    /// the header fields are validated and the payload is checksummed,
    /// so no flipped byte can smuggle a wrong answer into the store.
    #[test]
    fn any_single_byte_flip_is_rejected(seed in 0u64..1000, pos_seed in 0usize..100_000, flip in 1u8..255) {
        let g = UndirectedGraph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let w = [VertexId(seed as u32 % 3), VertexId(3)];
        prop_assume!(w[0] != w[1]);
        let cache = ResultCache::new();
        run_cached(Enumeration::new(SteinerTree::new(&g, &w)), &cache).unwrap();
        let blob = cache.snapshot();
        let pos = pos_seed % blob.len();

        let mut bad = blob;
        bad[pos] ^= flip;
        let fresh: ResultCache<minimal_steiner::graph::EdgeId> = ResultCache::new();
        fresh
            .restore(&bad, &paper_problem_kinds(), Some(&RegionMap::of_undirected(&g)))
            .expect_err("corruption must be detected");
        prop_assert_eq!(fresh.stats().entries, 0, "nothing was committed");
    }
}

/// Deterministic spot checks of every typed rejection.
#[test]
fn typed_rejections() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let w = [VertexId(0), VertexId(2)];
    let cache = ResultCache::new();
    Enumeration::new(SteinerTree::new(&g, &w))
        .cached(&cache)
        .run()
        .unwrap();
    let blob = cache.snapshot();
    let kinds = paper_problem_kinds();
    let regions = RegionMap::of_undirected(&g);

    // Truncations at every prefix length fail (never panic, never load).
    for cut in 0..blob.len() {
        let fresh: ResultCache<minimal_steiner::graph::EdgeId> = ResultCache::new();
        assert!(fresh.restore(&blob[..cut], &kinds, Some(&regions)).is_err());
        assert_eq!(fresh.stats().entries, 0);
    }

    // Version skew is named in both directions: a foreign (future)
    // version and an old v1 blob are each refused with the stored and
    // supported versions spelled out.
    let mut skewed = blob.clone();
    skewed[4] = 0xFF;
    let fresh: ResultCache<minimal_steiner::graph::EdgeId> = ResultCache::new();
    assert!(matches!(
        fresh.restore(&skewed, &kinds, Some(&regions)),
        Err(SnapshotError::VersionSkew { stored: 255, .. })
    ));
    let mut v1 = blob.clone();
    v1[4..8].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        fresh.restore(&v1, &kinds, Some(&regions)),
        Err(SnapshotError::VersionSkew {
            stored: 1,
            supported: 2
        })
    ));
    assert_eq!(fresh.stats().entries, 0);

    // An edge-item snapshot cannot load into an arc-item cache.
    let arc_cache: ResultCache<minimal_steiner::graph::ArcId> = ResultCache::new();
    assert!(matches!(
        arc_cache.restore(&blob, &kinds, None),
        Err(SnapshotError::ItemKindMismatch { .. })
    ));

    // A different graph's region fingerprints are refused entry-by-entry.
    let other = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    assert!(matches!(
        ResultCache::<minimal_steiner::graph::EdgeId>::new().restore(
            &blob,
            &kinds,
            Some(&RegionMap::of_undirected(&other))
        ),
        Err(SnapshotError::GraphMismatch { .. })
    ));

    // An unknown problem kind (e.g. a future problem type) is refused.
    assert!(matches!(
        ResultCache::<minimal_steiner::graph::EdgeId>::new().restore(
            &blob,
            &["some other problem"],
            Some(&regions)
        ),
        Err(SnapshotError::UnknownProblemKind(_))
    ));

    // Every rejection implements Display + Error with useful text.
    let err = SnapshotError::VersionSkew {
        stored: 9,
        supported: 2,
    };
    assert!(err.to_string().contains('9'));
    let _: &dyn std::error::Error = &err;
}
