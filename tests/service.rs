//! End-to-end tests of the `steiner-service` layer: byte-identity of
//! served streams against one-shot engine runs, admission control,
//! deadline'd queries, fair-share aggregation, and warm restarts.

use std::time::{Duration, Instant};

use minimal_steiner::graph::{generators, DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::service::{
    EngineConfig, EnumerationEngine, Query, QueryOptions, SolutionItems,
};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, SteinerError, SteinerForest, SteinerTree, TerminalSteinerTree,
};

fn undirected() -> (UndirectedGraph, Vec<VertexId>) {
    let g = generators::theta_chain(2, 3);
    let last = VertexId(g.num_vertices() as u32 - 1);
    (g, vec![VertexId(0), last])
}

fn directed() -> (DiGraph, VertexId, Vec<VertexId>) {
    let (d, root) = generators::layered_digraph(3, 2);
    let last = VertexId(d.num_vertices() as u32 - 1);
    (d, root, vec![last])
}

/// Acceptance criterion: for every paper problem, at least two
/// sessions, with and without per-query sharding (and with the
/// Theorem-20 queue), the service delivers exactly the stream a
/// one-shot [`Enumeration`] run of the same query delivers.
#[test]
fn served_streams_are_byte_identical_to_one_shot_runs() {
    let (g, w) = undirected();
    let (d, root, dw) = directed();
    let expected = [
        SolutionItems::Edges(
            Enumeration::new(SteinerTree::new(&g, &w))
                .collect_vec()
                .unwrap(),
        ),
        SolutionItems::Edges(
            Enumeration::new(SteinerForest::new(&g, std::slice::from_ref(&w)))
                .collect_vec()
                .unwrap(),
        ),
        SolutionItems::Edges(
            Enumeration::new(TerminalSteinerTree::new(&g, &w))
                .collect_vec()
                .unwrap(),
        ),
        SolutionItems::Arcs(
            Enumeration::new(DirectedSteinerTree::new(&d, root, &dw))
                .collect_vec()
                .unwrap(),
        ),
    ];
    let queries = [
        Query::SteinerTree {
            terminals: w.clone(),
        },
        Query::SteinerForest {
            sets: vec![w.clone()],
        },
        Query::TerminalSteinerTree { terminals: w },
        Query::DirectedSteinerTree {
            root,
            terminals: dw,
        },
    ];

    let engine = EnumerationEngine::with_graphs(g, Some(d), EngineConfig::default());
    let sessions = [engine.session("alpha"), engine.session("beta")];
    for (query, want) in queries.iter().zip(&expected) {
        for session in &sessions {
            for threads in [0, 2] {
                for queue in [false, true] {
                    let mut opts = QueryOptions::default().threads(threads);
                    if queue {
                        opts = opts.queued();
                    }
                    let outcome = session.run(query.clone(), opts).unwrap();
                    assert!(outcome.is_complete());
                    assert_eq!(
                        &outcome.solutions,
                        want,
                        "tenant {} threads {threads} queue {queue}",
                        session.name()
                    );
                }
            }
        }
    }
    // 4 queries × 2 sessions × 4 option combinations; the first run of
    // each query was the only miss, everything after replayed.
    let (edge_stats, arc_stats) = engine.cache_stats();
    assert_eq!(edge_stats.entries, 3);
    assert_eq!(arc_stats.entries, 1);
    assert_eq!(edge_stats.misses, 3);
    assert_eq!(arc_stats.misses, 1);
    assert_eq!(edge_stats.hits + arc_stats.hits, 4 * 2 * 4 - 4);
}

/// Pooled sharded queries steal by default; `stealing(false)` keeps the
/// root-only reference path, and both deliver the sequential stream.
#[test]
fn pooled_queries_steal_by_default_and_match_the_reference() {
    // A multi-terminal grid: the enumeration tree has depth, so the
    // adaptive steal points are actually reachable.
    let g = generators::grid(3, 4);
    let w = vec![VertexId(0), VertexId(5), VertexId(11)];
    let want = Enumeration::new(SteinerTree::new(&g, &w))
        .collect_vec()
        .unwrap();
    let query = Query::SteinerTree { terminals: w };
    let engine = EnumerationEngine::new(g);
    let session = engine.session("ab-test");
    // Fresh cache entries per option set would mask differences — the
    // cache key ignores execution options, so each run below would
    // replay the first one's stream. That is exactly what the test
    // wants to rule out, so the *first* run uses the reference path and
    // the stealing runs must reproduce it bit for bit.
    let reference = session
        .run(
            query.clone(),
            QueryOptions::default().threads(4).stealing(false),
        )
        .unwrap();
    assert_eq!(reference.solutions.edges().unwrap(), &want[..]);
    for opts in [
        QueryOptions::default().threads(4), // stealing defaults on
        QueryOptions::default().threads(4).stealing(true),
        QueryOptions::default().threads(2).queued(),
    ] {
        let outcome = session.run(query.clone(), opts).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.solutions.edges().unwrap(), &want[..]);
    }
}

/// Concurrent submissions from several tenants all complete, all match
/// the one-shot stream, and the engine drains to idle.
#[test]
fn concurrent_tenants_complete_with_identical_answers() {
    let (g, w) = undirected();
    let want = Enumeration::new(SteinerTree::new(&g, &w))
        .collect_vec()
        .unwrap();
    let engine = EnumerationEngine::with_config(
        g,
        EngineConfig {
            workers: 3,
            max_in_flight: 64,
            tenant_queue_depth: 16,
            cache_capacity_bytes: None,
        },
    );
    let query = Query::SteinerTree { terminals: w };
    let tickets: Vec<_> = ["a", "b", "c"]
        .iter()
        .flat_map(|name| {
            let session = engine.session(name);
            let query = query.clone();
            (0..5).map(move |_| {
                session
                    .submit(query.clone(), QueryOptions::default())
                    .unwrap()
            })
        })
        .collect();
    for ticket in tickets {
        let outcome = ticket.wait();
        assert!(outcome.is_complete());
        assert_eq!(outcome.solutions.edges().unwrap(), &want[..]);
    }
    engine.wait_idle();
    assert_eq!(engine.in_flight(), 0);
    let reports = engine.tenants();
    assert_eq!(reports.len(), 3);
    for report in reports {
        assert_eq!(report.completed, 5);
        assert_eq!(report.rejected, 0);
        // Per-tenant stats fold each completed run's counters.
        assert_eq!(report.stats.solutions, 5 * want.len() as u64);
    }
}

/// The global in-flight pool rejects what it cannot hold — typed, with
/// the observed occupancy — and admitted work is unaffected.
#[test]
fn global_pool_admission_control() {
    let (g, w) = undirected();
    let engine = EnumerationEngine::with_config(
        g,
        EngineConfig {
            workers: 1,
            max_in_flight: 3,
            tenant_queue_depth: 8,
            cache_capacity_bytes: None,
        },
    );
    engine.pause();
    let session = engine.session("tenant");
    let query = Query::SteinerTree { terminals: w };
    let admitted: Vec<_> = (0..3)
        .map(|_| {
            session
                .submit(query.clone(), QueryOptions::default())
                .unwrap()
        })
        .collect();
    for _ in 0..2 {
        assert_eq!(
            session
                .submit(query.clone(), QueryOptions::default())
                .unwrap_err(),
            SteinerError::AdmissionRejected {
                in_flight: 3,
                capacity: 3
            }
        );
    }
    assert_eq!(session.report().rejected, 2);
    engine.resume();
    for ticket in admitted {
        assert!(ticket.wait().is_complete());
    }
    // With the pool drained, submissions are admitted again.
    let outcome = session.run(query, QueryOptions::default()).unwrap();
    assert!(outcome.is_complete());
}

/// A deadline'd query on an effectively inexhaustible instance
/// terminates within a bounded overshoot, reports
/// [`SteinerError::DeadlineExceeded`], and its partial stream is a
/// prefix of the deterministic full stream.
#[test]
fn deadline_terminates_with_bounded_overshoot_and_valid_prefix() {
    // 7×7 grid, opposite corners: the minimal Steiner trees between two
    // terminals are the corner-to-corner induced paths — far too many
    // to enumerate within the deadline.
    let g = generators::grid(7, 7);
    let w = vec![VertexId(0), VertexId(48)];
    let engine = EnumerationEngine::new(g.clone());
    let session = engine.session("tenant");
    let timeout = Duration::from_millis(40);
    let started = Instant::now();
    let outcome = session
        .run(
            Query::SteinerTree {
                terminals: w.clone(),
            },
            QueryOptions::default().timeout(timeout),
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(outcome.status, Err(SteinerError::DeadlineExceeded));
    // Generous CI slack; the engine's check granularity is a constant
    // number of node expansions, so the overshoot is far smaller.
    assert!(
        elapsed < timeout + Duration::from_secs(5),
        "query overshot its deadline by {:?}",
        elapsed - timeout
    );
    assert_eq!(session.report().deadline_exceeded, 1);

    // The delivered prefix is exactly the one-shot stream's prefix.
    let delivered = outcome.solutions.edges().unwrap();
    if !delivered.is_empty() {
        let reference = Enumeration::new(SteinerTree::new(&g, &w))
            .with_limit(delivered.len() as u64)
            .collect_vec()
            .unwrap();
        assert_eq!(delivered, &reference[..]);
    }

    // The incomplete run was never recorded: a bounded re-run misses.
    let again = session
        .run(
            Query::SteinerTree { terminals: w },
            QueryOptions::default().limit(5),
        )
        .unwrap();
    assert!(again.is_complete());
    assert_eq!(again.stats.cache_hits, 0);
}

/// Weighted tenants drain proportionally and their lifetime counters
/// fold every completed run.
#[test]
fn weighted_tenants_drain_and_aggregate() {
    let (g, w) = undirected();
    let want = Enumeration::new(SteinerTree::new(&g, &w))
        .collect_vec()
        .unwrap();
    let engine = EnumerationEngine::with_config(
        g,
        EngineConfig {
            workers: 1,
            max_in_flight: 32,
            tenant_queue_depth: 16,
            cache_capacity_bytes: None,
        },
    );
    engine.pause();
    let heavy = engine.session_with_weight("heavy", 3);
    let light = engine.session_with_weight("light", 1);
    let query = Query::SteinerTree { terminals: w };
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let session = if i % 2 == 0 { &heavy } else { &light };
            session
                .submit(query.clone(), QueryOptions::default())
                .unwrap()
        })
        .collect();
    engine.resume();
    for ticket in tickets {
        assert!(ticket.wait().is_complete());
    }
    let reports = engine.tenants();
    assert_eq!(reports.len(), 2);
    for report in &reports {
        assert_eq!(report.completed, 3);
        assert_eq!(report.queued, 0);
        assert_eq!(report.stats.solutions, 3 * want.len() as u64);
        // One of the six runs was the cache miss; its tenant's fold
        // shows it, every other run replayed.
        assert_eq!(
            report.stats.cache_hits + report.stats.cache_misses,
            3,
            "every run either hit or missed"
        );
    }
    let total_misses: u64 = reports.iter().map(|r| r.stats.cache_misses).sum();
    assert_eq!(total_misses, 1);
}

/// Warm restart end to end: snapshot a served engine, restore into a
/// fresh one over the same graphs, and the repeated queries replay as
/// cache hits with byte-identical streams.
#[test]
fn warm_restart_replays_identically() {
    let (g, w) = undirected();
    let (d, root, dw) = directed();
    let engine =
        EnumerationEngine::with_graphs(g.clone(), Some(d.clone()), EngineConfig::default());
    let session = engine.session("tenant");
    let queries = [
        Query::SteinerTree {
            terminals: w.clone(),
        },
        Query::SteinerForest {
            sets: vec![w.clone()],
        },
        Query::TerminalSteinerTree { terminals: w },
        Query::DirectedSteinerTree {
            root,
            terminals: dw,
        },
    ];
    let cold: Vec<_> = queries
        .iter()
        .map(|q| session.run(q.clone(), QueryOptions::default()).unwrap())
        .collect();
    let blob = engine.snapshot();
    assert_eq!(blob, engine.snapshot(), "snapshots are deterministic");
    drop(engine);

    let restarted = EnumerationEngine::with_graphs(g, Some(d), EngineConfig::default());
    assert_eq!(restarted.restore(&blob).unwrap(), 4);
    let session = restarted.session("tenant");
    for (query, cold) in queries.iter().zip(&cold) {
        let warm = session.run(query.clone(), QueryOptions::default()).unwrap();
        assert!(warm.is_complete());
        assert_eq!(warm.stats.cache_hits, 1, "restored entry served the query");
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.solutions, cold.solutions);
    }
    // And the restored engine's snapshot reproduces the original blob.
    assert_eq!(restarted.snapshot(), blob);
}

/// A snapshot taken over one graph is refused by an engine over another
/// — stale answers are never silently served.
#[test]
fn restore_refuses_snapshots_of_a_different_graph() {
    let (g, w) = undirected();
    let engine = EnumerationEngine::new(g);
    let session = engine.session("tenant");
    session
        .run(Query::SteinerTree { terminals: w }, QueryOptions::default())
        .unwrap();
    let blob = engine.snapshot();

    let other = EnumerationEngine::new(generators::cycle(5));
    assert!(other.restore(&blob).is_err());
    let (edge_stats, _) = other.cache_stats();
    assert_eq!(edge_stats.entries, 0, "nothing was committed");
}
