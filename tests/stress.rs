//! Bounded stress tests: larger instances than the unit tests touch,
//! verifying scalability-critical paths (deep recursion, big outputs,
//! streaming) without unbounded runtimes.

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::paths::streaming::Enumeration as StreamingEnumeration;
use minimal_steiner::{Enumeration, SteinerTree};
use std::ops::ControlFlow;

/// Long path graphs exercise Θ(n) recursion depth in every enumerator.
#[test]
fn deep_recursion_on_long_paths() {
    let n = 20_000;
    let g = generators::path(n);
    let w = [VertexId(0), VertexId::new(n - 1)];
    let mut count = 0u64;
    // Unique solution (the whole path), found through a unique-completion
    // leaf — but the s-t path enumerator underneath still recurses.
    let stats = Enumeration::new(SteinerTree::new(&g, &w))
        .for_each(|tree| {
            count += 1;
            assert_eq!(tree.len(), n - 1);
            ControlFlow::Continue(())
        })
        .expect("valid instance");
    assert_eq!(count, 1);
    assert_eq!(stats.nodes, 1);
}

/// Deep recursion inside the path enumerator itself, on a worker thread
/// with a large stack (the streaming adapter's reason for existing).
#[test]
fn deep_path_enumeration_streams() {
    let n = 30_000;
    let g = generators::path(n);
    let iter = StreamingEnumeration::spawn(move |sink| {
        minimal_steiner::paths::undirected::enumerate_st_paths(
            &g,
            VertexId(0),
            VertexId::new(n - 1),
            None,
            &mut |p| sink(p.edges.len()),
        );
    });
    let lengths: Vec<usize> = iter.collect();
    assert_eq!(lengths, vec![n - 1]);
}

/// A dense-output instance: all 4^8 = 65536 minimal Steiner trees of an
/// 8-block width-4 theta chain, verified for count and distinctness.
#[test]
fn theta_chain_full_output() {
    let g = generators::theta_chain(8, 4);
    let w = [VertexId(0), VertexId(8)];
    let stats = Enumeration::new(SteinerTree::new(&g, &w))
        .run()
        .expect("valid instance");
    assert_eq!(stats.solutions, 4u64.pow(8));
    assert_eq!(stats.deficient_internal_nodes, 0);
    assert!(stats.internal_nodes <= stats.leaf_nodes);
}

/// Moderate grid, many terminals: tens of thousands of solutions with the
/// work-per-solution bound holding throughout.
#[test]
fn grid_many_terminals_bounded_amortized_work() {
    let g = generators::grid(4, 7);
    let w: Vec<VertexId> = vec![VertexId(0), VertexId(6), VertexId(21), VertexId(27)];
    let mut count = 0u64;
    let stats = Enumeration::new(SteinerTree::new(&g, &w))
        .for_each(|_| {
            count += 1;
            if count >= 50_000 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .expect("valid instance");
    assert!(stats.solutions >= 50_000 || stats.solutions == count);
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    assert!(stats.work / stats.solutions.max(1) <= 20 * nm);
}

/// Genuinely deep enumeration recursion: on a ladder (2×k grid) the path
/// enumeration tree nests prefixes along the whole chain, so recursion
/// depth grows with k. Run on the large-stack worker.
#[test]
fn deep_nested_branching_on_ladders() {
    let k = 1_500;
    let g = generators::ladder(k);
    let target = VertexId::new(g.num_vertices() - 1);
    let iter = StreamingEnumeration::spawn(move |sink| {
        minimal_steiner::paths::undirected::enumerate_st_paths(
            &g,
            VertexId(0),
            target,
            None,
            &mut |p| sink(p.edges.len()),
        );
    });
    let first: Vec<usize> = iter.take(500).collect();
    assert_eq!(first.len(), 500);
    // Corner-to-corner distance in a 2×k ladder is k edges.
    assert!(first.iter().all(|&len| len >= k));
}

/// The induced enumerator on a larger claw-free host, capped.
#[test]
fn induced_on_larger_line_graph() {
    let base = generators::grid(3, 5);
    let g = minimal_steiner::graph::line_graph::line_graph(&base);
    let w = [VertexId(0), VertexId::new(g.num_vertices() - 1)];
    let mut count = 0u64;
    minimal_steiner::induced::supergraph::enumerate_minimal_induced_steiner_subgraphs(
        &g,
        &w,
        &mut |set| {
            assert!(
                minimal_steiner::induced::verify::is_minimal_induced_steiner_subgraph(&g, &w, set)
            );
            count += 1;
            if count >= 200 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    )
    .expect("line graphs are claw-free");
    assert!(count > 10);
}
