//! Determinism and coverage for second-level work stealing in the
//! sharded front-end (`Enumeration::with_stealing` /
//! `Enumeration::with_steal_schedule`).
//!
//! The contract under test: with stealing enabled, the delivered stream
//! stays **byte-identical to the sequential run** for every problem
//! type, thread count, and front-end (direct, queued, limited, early
//! break, pull iterator, cached) — no matter which worker executed
//! which subtree, and no matter how pathological the steal
//! interleaving. Scripted [`StealSchedule`]s make the pathological
//! cases deterministic: the spawned-subtree *set* depends only on the
//! enumeration tree, so these tests replay identically on a single-core
//! CI container.

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::{
    DirectedSteinerTree, EnumStats, Enumeration, MinimalSteinerProblem, ResultCache, StealObserver,
    StealSchedule, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::ops::ControlFlow;
use steiner_bench::workloads;

/// Collects the full ordered stream of an enumeration.
fn ordered<P>(e: Enumeration<P>) -> Vec<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    e.collect_vec().expect("valid instance")
}

/// Collects the stream and the final merged statistics.
fn ordered_with_stats<P>(e: Enumeration<P>) -> (Vec<Vec<P::Item>>, EnumStats)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    let (e, handle) = e.with_stats();
    let stream = e.collect_vec().expect("valid instance");
    (stream, handle.get())
}

/// Asserts that stealing (adaptive), stealing off (the A/B reference),
/// and the queued chain all reproduce the sequential stream exactly for
/// k ∈ {1, 2, 4}, and that `with_limit` under stealing delivers exactly
/// the sequential prefix.
fn assert_stealing_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + std::fmt::Debug + PartialEq,
    F: Fn() -> P,
{
    let sequential = ordered(Enumeration::new(make()));
    for k in [1usize, 2, 4] {
        let stealing = ordered(Enumeration::new(make()).with_threads(k).with_stealing(true));
        assert_eq!(stealing, sequential, "threads({k}) stealing direct");
        let reference = ordered(
            Enumeration::new(make())
                .with_threads(k)
                .with_stealing(false),
        );
        assert_eq!(reference, sequential, "threads({k}) root-only reference");
        let queued = ordered(
            Enumeration::new(make())
                .with_threads(k)
                .with_stealing(true)
                .with_default_queue(),
        );
        assert_eq!(queued, sequential, "threads({k}) stealing queued");
    }
    let total = sequential.len() as u64;
    let cuts: Vec<u64> = if total <= 6 {
        (0..=total + 1).collect()
    } else {
        vec![0, 1, 2, total / 2, total - 1, total, total + 1]
    };
    for k in [2usize, 4] {
        for &limit in &cuts {
            let capped = ordered(
                Enumeration::new(make())
                    .with_threads(k)
                    .with_stealing(true)
                    .with_limit(limit),
            );
            let want = &sequential[..(limit.min(total)) as usize];
            assert_eq!(capped, want, "threads({k}) stealing with_limit({limit})");
        }
    }
}

/// Runs `make()` under a scripted schedule and asserts the stream is
/// byte-identical to `sequential`; returns the merged stats so callers
/// can assert on steal counters.
fn scripted_run<P, F>(
    make: &F,
    k: usize,
    schedule: StealSchedule,
    sequential: &[Vec<P::Item>],
    label: &str,
) -> EnumStats
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + std::fmt::Debug + PartialEq,
    F: Fn() -> P,
{
    let (stream, stats) = ordered_with_stats(
        Enumeration::new(make())
            .with_threads(k)
            .with_steal_schedule(schedule),
    );
    assert_eq!(stream, sequential, "threads({k}) scripted {label}");
    stats
}

// ---------------------------------------------------------------------
// Adaptive stealing: stream equality across all four problems.
// ---------------------------------------------------------------------

#[test]
fn steiner_tree_stealing_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57ea_0001);
    for case in 0..6 {
        let n = 4 + case % 5;
        let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        assert_stealing_matches(|| SteinerTree::new(&g, &w));
    }
    // Deep and solution-dense: many stealable branch children.
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    assert_stealing_matches(|| SteinerTree::new(&g, &w));
}

#[test]
fn steiner_forest_stealing_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57ea_0002);
    for case in 0..5 {
        let n = 4 + case % 4;
        let m = (n + rng.gen_range(0..4)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let num_sets = 1 + rng.gen_range(0..3usize);
        let sets: Vec<Vec<VertexId>> = (0..num_sets)
            .map(|_| {
                let k = 2 + rng.gen_range(0..2usize).min(n - 2);
                generators::random_terminals(n, k, &mut rng)
            })
            .collect();
        assert_stealing_matches(|| SteinerForest::new(&g, &sets));
    }
}

#[test]
fn terminal_steiner_tree_stealing_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57ea_0003);
    for case in 0..5 {
        let n = 5 + case % 4;
        let m = (n + 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        assert_stealing_matches(|| TerminalSteinerTree::new(&g, &w));
    }
}

#[test]
fn directed_steiner_tree_stealing_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57ea_0004);
    let mut cases = 0;
    while cases < 5 {
        let n = 4 + cases % 4;
        let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
        let (d, root) = generators::random_rooted_dag(n, m, &mut rng);
        let t = 1 + rng.gen_range(0..3usize).min(n - 1);
        let mut w = generators::random_terminals(n, t, &mut rng);
        w.retain(|&v| v != root);
        if w.is_empty() {
            continue;
        }
        cases += 1;
        assert_stealing_matches(|| DirectedSteinerTree::new(&d, root, &w));
    }
}

// ---------------------------------------------------------------------
// Scripted schedules: forced steals at each depth on skewed workloads.
// ---------------------------------------------------------------------

#[test]
fn scripted_steals_at_each_depth_preserve_the_stream() {
    // Five terminals give the enumeration tree real depth (each branch
    // level connects one more terminal), so spawn points exist at every
    // depth in 1..=4; the pendant tails skew the subtree sizes.
    let inst = workloads::bridged_instance(3, 3, 4, 1);
    let make = || SteinerTree::new(&inst.graph, &inst.terminals);
    let sequential = ordered(Enumeration::new(make()));
    assert!(sequential.len() > 4, "instance must be solution-dense");
    for depth in 1..=4u32 {
        for k in [2usize, 4] {
            let schedule = StealSchedule::new().steal_at_depths(depth, depth);
            let stats = scripted_run(&make, k, schedule, &sequential, "depth-pinned");
            assert!(
                stats.subtrees_stolen > 0,
                "depth {depth}, threads({k}): the script must publish subtrees"
            );
        }
    }
    // A depth band crossing several levels at once.
    let stats = scripted_run(
        &make,
        4,
        StealSchedule::new().steal_at_depths(1, 4),
        &sequential,
        "depth band 1..=4",
    );
    assert!(stats.subtrees_stolen > 0);
}

#[test]
fn scripted_steals_preserve_streams_for_every_problem() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57ea_0005);
    let schedule = || StealSchedule::new().steal_at_depths(1, 3);

    let g = generators::random_connected_graph(7, 11, &mut rng);
    let w = generators::random_terminals(7, 3, &mut rng);
    let make = || SteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));
    scripted_run(&make, 4, schedule(), &sequential, "tree");

    let sets = vec![w.clone(), generators::random_terminals(7, 2, &mut rng)];
    let make = || SteinerForest::new(&g, &sets);
    let sequential = ordered(Enumeration::new(make()));
    scripted_run(&make, 4, schedule(), &sequential, "forest");

    let make = || TerminalSteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));
    scripted_run(&make, 4, schedule(), &sequential, "terminal");

    let (d, root) = generators::random_rooted_dag(8, 14, &mut rng);
    let mut dw = generators::random_terminals(8, 3, &mut rng);
    dw.retain(|&v| v != root);
    if !dw.is_empty() {
        let make = || DirectedSteinerTree::new(&d, root, &dw);
        let sequential = ordered(Enumeration::new(make()));
        scripted_run(&make, 4, schedule(), &sequential, "directed");
    }
}

#[test]
fn scripted_single_address_and_every_nth_schedules() {
    // Exactly one named subtree is published (an instance with branch
    // nodes below the root, so the address [1, 0] exists).
    let inst = workloads::bridged_instance(3, 3, 4, 1);
    let make = || SteinerTree::new(&inst.graph, &inst.terminals);
    let sequential = ordered(Enumeration::new(make()));
    let stats = scripted_run(
        &make,
        4,
        StealSchedule::new().steal_at(&[1, 0]),
        &sequential,
        "at [1,0]",
    );
    assert_eq!(
        stats.subtrees_stolen, 1,
        "an At schedule publishes exactly the named subtree"
    );

    // Every second opportunity across all depths.
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    let make = || SteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));
    let stats = scripted_run(
        &make,
        2,
        StealSchedule::new().steal_every(2),
        &sequential,
        "every 2nd",
    );
    assert!(stats.subtrees_stolen > 0);
}

// ---------------------------------------------------------------------
// Front-end composition under forced steals.
// ---------------------------------------------------------------------

#[test]
fn stealing_composes_with_queue_limit_and_early_break() {
    // 80 solutions over a depth-4 enumeration tree: the depth band
    // publishes subtrees at every level while limits and breaks cut the
    // stream mid-subtree.
    let inst = workloads::bridged_instance(3, 3, 4, 1);
    let make = || SteinerTree::new(&inst.graph, &inst.terminals);
    let sequential = ordered(Enumeration::new(make()));
    let schedule = || StealSchedule::new().steal_at_depths(1, 4);

    // Queued chain under forced steals.
    let queued = ordered(
        Enumeration::new(make())
            .with_threads(4)
            .with_steal_schedule(schedule())
            .with_default_queue(),
    );
    assert_eq!(queued, sequential, "queued + scripted steals");

    // Limits cut the exact sequential prefix even when the cut lands
    // inside a stolen subtree.
    for limit in [1u64, 7, 40, 79] {
        let capped = ordered(
            Enumeration::new(make())
                .with_threads(4)
                .with_steal_schedule(schedule())
                .with_limit(limit),
        );
        assert_eq!(
            capped,
            sequential[..limit as usize],
            "with_limit({limit}) + scripted steals"
        );
    }

    // Early break from the sink mid-stolen-subtree.
    for stop_at in [1usize, 7, 40] {
        let mut got = Vec::new();
        Enumeration::new(make())
            .with_threads(4)
            .with_steal_schedule(schedule())
            .for_each(|tree| {
                got.push(tree.to_vec());
                if got.len() == stop_at {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .expect("valid instance");
        assert_eq!(got, sequential[..stop_at], "break after {stop_at}");
    }
}

#[test]
fn stealing_iterator_front_end_matches_and_stops_on_drop() {
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));

    let pulled: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
        .with_threads(4)
        .with_steal_schedule(StealSchedule::new().steal_at_depths(1, 3))
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(pulled, sequential, "pull front-end + scripted steals");

    let adaptive: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g, &w))
        .with_threads(4)
        .with_stealing(true)
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(adaptive, sequential, "pull front-end + adaptive stealing");

    // Dropping the iterator early must hang up the whole pool promptly
    // even with subtrees in flight.
    let big = generators::theta_chain(8, 3); // 3^8 solutions
    let mut iter = Enumeration::new(SteinerTree::from_graph(big, &[VertexId(0), VertexId(8)]))
        .with_threads(4)
        .with_steal_schedule(StealSchedule::new().steal_at_depths(2, 5))
        .into_iter()
        .expect("valid instance");
    assert!(iter.next().is_some());
    assert!(iter.next().is_some());
    drop(iter); // must not hang
}

#[test]
fn stealing_cached_runs_fill_and_replay_identically() {
    let g = generators::theta_chain(4, 3);
    let w = [VertexId(0), VertexId(4)];
    let make = || SteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));

    let cache = ResultCache::new();
    let cold = ordered(
        Enumeration::new(make())
            .with_threads(4)
            .with_steal_schedule(StealSchedule::new().steal_at_depths(1, 3))
            .cached(&cache),
    );
    assert_eq!(cold, sequential, "cold fill under forced steals");
    let warm = ordered(Enumeration::new(make()).cached(&cache));
    assert_eq!(warm, sequential, "warm replay of a steal-filled entry");
}

// ---------------------------------------------------------------------
// Skew-hazard regression: all workers work on a starved root.
// ---------------------------------------------------------------------

/// The starved-root instance: a lone terminal (vertex 0) behind a
/// two-path theta bottleneck into the corner (vertex 3) of a 3×3 grid
/// holding the remaining terminals. The root's first branch connects
/// terminal 3 across the bottleneck, so the root has exactly **two**
/// children — root-only sharding with k = 4 permanently starves workers
/// 2 and 3 — while the grid side branches richly at depths 2–3.
fn starved_root_instance() -> (minimal_steiner::graph::UndirectedGraph, Vec<VertexId>) {
    let g = minimal_steiner::graph::UndirectedGraph::from_edges(
        12,
        &[
            (0, 1),
            (1, 3),
            (0, 2),
            (2, 3), // theta bottleneck 0 ↔ 3
            (3, 4),
            (4, 5),
            (6, 7),
            (7, 8),
            (9, 10),
            (10, 11), // grid rows
            (3, 6),
            (6, 9),
            (4, 7),
            (7, 10),
            (5, 8),
            (8, 11), // grid columns
        ],
    )
    .unwrap();
    let w = vec![VertexId(0), VertexId(3), VertexId(7), VertexId(11)];
    (g, w)
}

#[test]
fn starved_root_with_stealing_keeps_every_worker_busy() {
    let (g, w) = starved_root_instance();
    let make = || SteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));
    assert!(sequential.len() > 16, "grid side must be solution-dense");

    let observer = StealObserver::new();
    let schedule = StealSchedule::new()
        .steal_at_depths(2, 3)
        .pin_claims(true)
        .observe(&observer);
    let (stream, stats) = ordered_with_stats(
        Enumeration::new(make())
            .with_threads(4)
            .with_steal_schedule(schedule),
    );
    assert_eq!(stream, sequential, "starved-root stream is exact");
    assert!(
        stats.subtrees_stolen >= 4,
        "enough subtrees published to cover every pinned residue \
         (got {})",
        stats.subtrees_stolen
    );
    let retired = observer.retired();
    assert_eq!(retired.len(), 4, "all four workers reported retirements");
    for (worker, &count) in retired.iter().enumerate() {
        assert!(
            count >= 1,
            "worker {worker} retired no subtree: {retired:?} — \
             stealing failed to spread a 2-child root across 4 workers"
        );
    }
}

#[test]
fn root_only_reference_starves_late_workers_on_a_two_child_root() {
    // The A/B contrast for the regression above: with stealing off, the
    // same instance delivers the same stream but only via workers 0 and
    // 1 (there is nothing observable to count without a schedule, so
    // this asserts the stream-level contract the reference provides).
    let (g, w) = starved_root_instance();
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    let reference = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_threads(4)
            .with_stealing(false),
    );
    assert_eq!(reference, sequential);
}

// ---------------------------------------------------------------------
// Stats: steal counters on skewed workloads, and failure accounting.
// ---------------------------------------------------------------------

#[test]
fn skewed_workload_records_steals_in_merged_stats() {
    let inst = workloads::bridged_instance(3, 3, 2, 2);
    let make = || SteinerTree::new(&inst.graph, &inst.terminals);
    let sequential = ordered(Enumeration::new(make()));
    let stats = scripted_run(
        &make,
        4,
        StealSchedule::new().steal_at_depths(1, 5),
        &sequential,
        "skewed stats",
    );
    assert!(
        stats.subtrees_stolen > 0,
        "skewed workload must publish subtrees under a depth-band script"
    );
    assert_eq!(
        stats.solutions,
        sequential.len() as u64,
        "solution count survives the steal-path merge"
    );
}

#[test]
fn stealing_off_records_no_steals() {
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    let (stream, stats) = ordered_with_stats(
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_threads(4)
            .with_stealing(false),
    );
    assert_eq!(stream.len(), 243);
    assert_eq!(stats.subtrees_stolen, 0);
    assert_eq!(stats.steal_failures, 0);
}

// ---------------------------------------------------------------------
// Property-based sweep: random instances, every front-end, on/off.
// ---------------------------------------------------------------------

/// One randomized conformance check: sequential vs stealing (adaptive
/// and scripted) across direct / queued / limited front-ends.
fn prop_check_tree(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = 4 + (seed % 5) as usize;
    let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
    let g = generators::random_connected_graph(n, m, &mut rng);
    let t = 2 + rng.gen_range(0..3usize).min(n - 2);
    let w = generators::random_terminals(n, t, &mut rng);
    let make = || SteinerTree::new(&g, &w);
    let sequential = ordered(Enumeration::new(make()));
    for k in [2usize, 4] {
        let adaptive = ordered(Enumeration::new(make()).with_threads(k).with_stealing(true));
        prop_assert_eq!(&adaptive, &sequential, "adaptive threads({})", k);
        let scripted = ordered(
            Enumeration::new(make())
                .with_threads(k)
                .with_steal_schedule(StealSchedule::new().steal_at_depths(1, 4)),
        );
        prop_assert_eq!(&scripted, &sequential, "scripted threads({})", k);
        let queued = ordered(
            Enumeration::new(make())
                .with_threads(k)
                .with_steal_schedule(StealSchedule::new().steal_every(2))
                .with_default_queue(),
        );
        prop_assert_eq!(&queued, &sequential, "queued threads({})", k);
    }
    let total = sequential.len() as u64;
    let limit = total / 2;
    let capped = ordered(
        Enumeration::new(make())
            .with_threads(4)
            .with_steal_schedule(StealSchedule::new().steal_at_depths(1, 3))
            .with_limit(limit),
    );
    prop_assert_eq!(&capped, &sequential[..limit as usize], "limited prefix");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stealing_streams_match_sequential_on_random_instances(seed in 0u64..1_000_000) {
        prop_check_tree(seed)?;
    }
}
