//! Cross-problem conformance suite for the unified solver API.
//!
//! Every [`MinimalSteinerProblem`] implementation — [`SteinerTree`],
//! [`SteinerForest`], [`TerminalSteinerTree`], [`DirectedSteinerTree`] —
//! is run through the generic engine on random instances from
//! `generators`, through all three front-ends (push sink, pull iterator,
//! output queue), and its solution sets are checked for exact equality
//! against the exponential-time `brute` oracles. The limit front-end and
//! the stats handle are exercised as prefix/consistency checks.

use minimal_steiner::graph::{generators, DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::steiner::brute;
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, SteinerForest, SteinerTree,
    TerminalSteinerTree,
};
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::ControlFlow;

/// Runs one problem instance through the push, queued, and iterator
/// front-ends, asserting all three produce the same solution set, and
/// returns it.
fn all_front_ends<P, Q>(borrowed: impl Fn() -> P, owned: Q) -> BTreeSet<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    Q: MinimalSteinerProblem<Item = P::Item> + Send + 'static,
    P::Item: Send + 'static + Debug,
{
    let mut push = BTreeSet::new();
    let (run, handle) = Enumeration::new(borrowed()).with_stats();
    run.for_each(|items| {
        assert!(
            push.insert(items.to_vec()),
            "push front-end emitted a duplicate"
        );
        ControlFlow::Continue(())
    })
    .expect("valid instance");
    assert_eq!(
        handle.get().solutions,
        push.len() as u64,
        "stats handle agrees with the sink"
    );

    let mut queued = BTreeSet::new();
    Enumeration::new(borrowed())
        .with_default_queue()
        .for_each(|items| {
            assert!(
                queued.insert(items.to_vec()),
                "queued front-end emitted a duplicate"
            );
            ControlFlow::Continue(())
        })
        .expect("valid instance");
    assert_eq!(
        push, queued,
        "queued front-end must match the push front-end"
    );

    let pulled: BTreeSet<Vec<P::Item>> = Enumeration::new(owned)
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(
        push, pulled,
        "iterator front-end must match the push front-end"
    );

    // The limit front-end delivers a prefix of the full set.
    if push.len() > 1 {
        let capped = Enumeration::new(borrowed())
            .with_limit(push.len() as u64 - 1)
            .collect_vec()
            .expect("valid instance");
        assert_eq!(capped.len(), push.len() - 1);
        for sol in &capped {
            assert!(push.contains(sol), "limited run emitted a non-solution");
        }
    }

    push
}

#[test]
fn steiner_tree_conforms_to_brute_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xa11ce);
    for case in 0..40 {
        let n = 3 + case % 5;
        let m = (n - 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 1 + rng.gen_range(0..n.min(4));
        let w = generators::random_terminals(n, t, &mut rng);
        let got = all_front_ends(
            || SteinerTree::new(&g, &w),
            SteinerTree::from_graph(g.clone(), &w),
        );
        assert_eq!(
            got,
            brute::minimal_steiner_trees(&g, &w),
            "graph {g:?} terminals {w:?}"
        );
    }
}

#[test]
fn steiner_forest_conforms_to_brute_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xf0e57);
    for case in 0..40 {
        let n = 3 + case % 5;
        let m = (n - 1 + rng.gen_range(0..4)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let num_sets = 1 + rng.gen_range(0..3usize);
        let sets: Vec<Vec<VertexId>> = (0..num_sets)
            .map(|_| {
                let k = 2 + rng.gen_range(0..2usize).min(n - 2);
                generators::random_terminals(n, k, &mut rng)
            })
            .collect();
        let got = all_front_ends(
            || SteinerForest::new(&g, &sets),
            SteinerForest::from_graph(g.clone(), &sets),
        );
        assert_eq!(
            got,
            brute::minimal_steiner_forests(&g, &sets),
            "graph {g:?} sets {sets:?}"
        );
    }
}

#[test]
fn terminal_steiner_tree_conforms_to_brute_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e2a1);
    for case in 0..40 {
        let n = 4 + case % 5;
        let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        let got = all_front_ends(
            || TerminalSteinerTree::new(&g, &w),
            TerminalSteinerTree::from_graph(g.clone(), &w),
        );
        assert_eq!(
            got,
            brute::minimal_terminal_steiner_trees(&g, &w),
            "graph {g:?} terminals {w:?}"
        );
    }
}

#[test]
fn directed_steiner_tree_conforms_to_brute_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd12ec);
    for case in 0..40 {
        let n = 3 + case % 5;
        let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
        let (d, root) = generators::random_rooted_dag(n, m, &mut rng);
        if d.num_arcs() > brute::MAX_BRUTE_EDGES {
            continue;
        }
        let t = 1 + rng.gen_range(0..3usize).min(n - 1);
        let mut w = generators::random_terminals(n, t, &mut rng);
        w.retain(|&v| v != root);
        if w.is_empty() {
            continue;
        }
        let got = all_front_ends(
            || DirectedSteinerTree::new(&d, root, &w),
            DirectedSteinerTree::from_graph(d.clone(), root, &w),
        );
        assert_eq!(
            got,
            brute::minimal_directed_steiner_trees(&d, root, &w),
            "digraph {d:?} root {root} terminals {w:?}"
        );
    }
}

/// The deprecated free-function shims delegate to the same engine: their
/// solution sets must match the builder's on every problem.
#[test]
#[allow(deprecated)]
fn deprecated_shims_match_the_engine() {
    use minimal_steiner::steiner::directed::enumerate_minimal_directed_steiner_trees;
    use minimal_steiner::steiner::forest::enumerate_minimal_steiner_forests;
    use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
    use minimal_steiner::steiner::terminal::enumerate_minimal_terminal_steiner_trees;

    let g: UndirectedGraph = generators::grid(3, 4);
    let w = [VertexId(0), VertexId(7), VertexId(11)];
    let via_builder: BTreeSet<Vec<_>> = Enumeration::new(SteinerTree::new(&g, &w))
        .collect_vec()
        .unwrap()
        .into_iter()
        .collect();
    let mut via_shim = BTreeSet::new();
    enumerate_minimal_steiner_trees(&g, &w, &mut |e| {
        via_shim.insert(e.to_vec());
        ControlFlow::Continue(())
    });
    assert_eq!(via_builder, via_shim);

    let sets = vec![
        vec![VertexId(0), VertexId(11)],
        vec![VertexId(3), VertexId(8)],
    ];
    let via_builder: BTreeSet<Vec<_>> = Enumeration::new(SteinerForest::new(&g, &sets))
        .collect_vec()
        .unwrap()
        .into_iter()
        .collect();
    let mut via_shim = BTreeSet::new();
    enumerate_minimal_steiner_forests(&g, &sets, &mut |e| {
        via_shim.insert(e.to_vec());
        ControlFlow::Continue(())
    });
    assert_eq!(via_builder, via_shim);

    let via_builder: BTreeSet<Vec<_>> = Enumeration::new(TerminalSteinerTree::new(&g, &w))
        .collect_vec()
        .unwrap()
        .into_iter()
        .collect();
    let mut via_shim = BTreeSet::new();
    enumerate_minimal_terminal_steiner_trees(&g, &w, &mut |e| {
        via_shim.insert(e.to_vec());
        ControlFlow::Continue(())
    });
    assert_eq!(via_builder, via_shim);

    let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    let (root, dw) = (VertexId(0), [VertexId(3)]);
    let via_builder: BTreeSet<Vec<_>> = Enumeration::new(DirectedSteinerTree::new(&d, root, &dw))
        .collect_vec()
        .unwrap()
        .into_iter()
        .collect();
    let mut via_shim = BTreeSet::new();
    enumerate_minimal_directed_steiner_trees(&d, root, &dw, &mut |a| {
        via_shim.insert(a.to_vec());
        ControlFlow::Continue(())
    });
    assert_eq!(via_builder, via_shim);
}

/// Dropping the pull iterator early must stop the worker without hanging
/// and without exhausting the enumeration.
#[test]
fn dropping_the_iterator_stops_the_worker() {
    let g = generators::theta_chain(8, 3); // 3^8 solutions
    let w = [VertexId(0), VertexId(8)];
    let mut iter = Enumeration::new(SteinerTree::from_graph(g, &w))
        .into_iter()
        .expect("valid instance");
    assert!(iter.next().is_some());
    assert!(iter.next().is_some());
    drop(iter); // must not hang
}
