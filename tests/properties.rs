//! Property-based tests (proptest): the fast enumerators agree with the
//! brute-force oracles on arbitrary small instances, and every output
//! passes its validity checker.

use minimal_steiner::graph::{DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::steiner::{brute, verify};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, SteinerError, SteinerForest,
    SteinerTree, TerminalSteinerTree,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// `with_limit(k)` composed with `with_default_queue()` must deliver
/// exactly `min(k, total)` solutions, and — since the output queue is
/// FIFO — they must be precisely the direct front-end's first `k`.
fn check_limit_queue_prefix<P, F>(make: F, k: u64) -> Result<(), TestCaseError>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
    F: Fn() -> P,
{
    let direct = match Enumeration::new(make()).collect_vec() {
        Ok(all) => all,
        // Valid-but-empty instances (e.g. an unreachable terminal) have
        // nothing to compare; both front-ends fail identically.
        Err(_) => {
            prop_assert!(Enumeration::new(make())
                .with_default_queue()
                .with_limit(k)
                .collect_vec()
                .is_err());
            return Ok(());
        }
    };
    let queued = Enumeration::new(make())
        .with_default_queue()
        .with_limit(k)
        .collect_vec()
        .expect("same instance, same validation");
    let expect = (k as usize).min(direct.len());
    prop_assert_eq!(queued.len(), expect, "exactly min(k, total) delivered");
    prop_assert_eq!(
        &queued[..],
        &direct[..expect],
        "the queued, limited stream is the direct stream's prefix"
    );
    Ok(())
}

/// Strategy: a connected graph on `n ∈ [2, 7]` vertices — a path backbone
/// plus up to 8 random extra edges (parallel edges allowed, exercising the
/// multigraph code paths).
fn connected_graph() -> impl Strategy<Value = UndirectedGraph> {
    (2usize..=7).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n), 0..8);
        extra.prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for i in 1..n {
                g.add_edge_indices(i - 1, i).unwrap();
            }
            for (u, v) in pairs {
                if u != v {
                    g.add_edge_indices(u, v).unwrap();
                }
            }
            g
        })
    })
}

/// Strategy: a digraph on `n ∈ [2, 6]` vertices with random arcs.
fn digraph() -> impl Strategy<Value = DiGraph> {
    (2usize..=6).prop_flat_map(|n| {
        let arcs = proptest::collection::vec((0..n, 0..n), 0..12);
        arcs.prop_map(move |pairs| {
            let mut d = DiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    d.add_arc_indices(u, v).unwrap();
                }
            }
            d
        })
    })
}

fn terminal_subset(n: usize, mask: u8, max: usize) -> Vec<VertexId> {
    let mask = mask as u64;
    let mut w: Vec<VertexId> = (0..n.min(63))
        .filter(|i| mask & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect();
    w.truncate(max);
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn improved_steiner_matches_brute(g in connected_graph(), mask in 1u8..128) {
        prop_assume!(g.num_edges() <= 18);
        let w = terminal_subset(g.num_vertices(), mask, 4);
        prop_assume!(!w.is_empty());
        let mut got = BTreeSet::new();
        let mut all_valid = true;
        let mut duplicate = false;
        Enumeration::new(SteinerTree::new(&g, &w))
            .for_each(|e| {
                all_valid &= verify::is_minimal_steiner_tree(&g, &w, e);
                duplicate |= !got.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("strategy generates connected graphs");
        prop_assert!(all_valid, "invalid solution emitted");
        prop_assert!(!duplicate, "duplicate solution emitted");
        prop_assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn queued_steiner_matches_direct(g in connected_graph(), mask in 1u8..128) {
        prop_assume!(g.num_edges() <= 18);
        let w = terminal_subset(g.num_vertices(), mask, 4);
        prop_assume!(w.len() >= 2);
        let mut direct = BTreeSet::new();
        Enumeration::new(SteinerTree::new(&g, &w))
            .for_each(|e| {
                direct.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("strategy generates connected graphs");
        let mut queued = BTreeSet::new();
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_default_queue()
            .for_each(|e| {
                queued.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("strategy generates connected graphs");
        let mut pulled = BTreeSet::new();
        for e in Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
            .into_iter()
            .expect("strategy generates connected graphs")
        {
            pulled.insert(e);
        }
        prop_assert_eq!(&direct, &queued);
        prop_assert_eq!(&direct, &pulled);
    }

    #[test]
    fn terminal_steiner_matches_brute(g in connected_graph(), mask in 1u8..128) {
        prop_assume!(g.num_edges() <= 18);
        let w = terminal_subset(g.num_vertices(), mask, 4);
        prop_assume!(w.len() >= 2);
        let mut got = BTreeSet::new();
        let mut all_valid = true;
        let mut duplicate = false;
        Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .for_each(|e| {
                all_valid &= verify::is_minimal_terminal_steiner_tree(&g, &w, e);
                duplicate |= !got.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("strategy generates connected graphs");
        prop_assert!(all_valid, "invalid solution emitted");
        prop_assert!(!duplicate, "duplicate solution emitted");
        prop_assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
    }

    #[test]
    fn forest_matches_brute(g in connected_graph(), m1 in 1u8..128, m2 in 1u8..128) {
        prop_assume!(g.num_edges() <= 16);
        let n = g.num_vertices();
        let s1 = terminal_subset(n, m1, 3);
        let s2 = terminal_subset(n, m2, 3);
        let sets = vec![s1, s2];
        let mut got = BTreeSet::new();
        let mut all_valid = true;
        let mut duplicate = false;
        Enumeration::new(SteinerForest::new(&g, &sets))
            .for_each(|e| {
                all_valid &= verify::is_minimal_steiner_forest(&g, &sets, e);
                duplicate |= !got.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("strategy generates connected graphs");
        prop_assert!(all_valid, "invalid solution emitted");
        prop_assert!(!duplicate, "duplicate solution emitted");
        prop_assert_eq!(got, brute::minimal_steiner_forests(&g, &sets));
    }

    #[test]
    fn directed_matches_brute(d in digraph(), mask in 1u8..64) {
        prop_assume!(d.num_arcs() <= 16);
        let n = d.num_vertices();
        let root = VertexId(0);
        let mut w = terminal_subset(n, mask, 3);
        w.retain(|&v| v != root);
        prop_assume!(!w.is_empty());
        let mut got = BTreeSet::new();
        let mut all_valid = true;
        let mut duplicate = false;
        let run = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).for_each(|a| {
            all_valid &= verify::is_minimal_directed_steiner_subgraph(&d, root, &w, a);
            duplicate |= !got.insert(a.to_vec());
            ControlFlow::Continue(())
        });
        match run {
            Ok(_) => {}
            // Random digraphs can leave a terminal unreachable: the strict
            // API reports it, and the brute oracle has no solutions.
            Err(SteinerError::UnreachableTerminal(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
        prop_assert!(all_valid, "invalid solution emitted");
        prop_assert!(!duplicate, "duplicate solution emitted");
        prop_assert_eq!(got, brute::minimal_directed_steiner_trees(&d, root, &w));
    }

    #[test]
    fn limit_and_queue_deliver_direct_prefix(
        g in connected_graph(),
        d in digraph(),
        mask in 1u8..128,
        k in 0u64..12,
    ) {
        prop_assume!(g.num_edges() <= 16 && d.num_arcs() <= 14);
        let n = g.num_vertices();
        let w = terminal_subset(n, mask, 4);
        prop_assume!(w.len() >= 2);

        check_limit_queue_prefix(|| SteinerTree::new(&g, &w), k)?;
        check_limit_queue_prefix(|| TerminalSteinerTree::new(&g, &w), k)?;
        let sets = vec![w, terminal_subset(n, mask.rotate_left(3), 3)];
        check_limit_queue_prefix(|| SteinerForest::new(&g, &sets), k)?;
        let root = VertexId(0);
        let mut dw = terminal_subset(d.num_vertices(), mask, 3);
        dw.retain(|&v| v != root);
        prop_assume!(!dw.is_empty());
        check_limit_queue_prefix(|| DirectedSteinerTree::new(&d, root, &dw), k)?;
    }

    #[test]
    fn path_enumeration_matches_naive(d in digraph()) {
        let n = d.num_vertices();
        let s = VertexId(0);
        let t = VertexId::new(n - 1);
        let fast: BTreeSet<Vec<_>> =
            minimal_steiner::paths::visit::collect_arc_paths(|sink| {
                minimal_steiner::paths::enumerate_directed_st_paths(&d, s, t, None, sink);
            }).into_iter().collect();
        let slow: BTreeSet<Vec<_>> =
            minimal_steiner::paths::visit::collect_arc_paths(|sink| {
                minimal_steiner::paths::naive::enumerate_directed_st_paths_naive(
                    &d, s, t, None, sink);
            }).into_iter().collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn induced_on_line_graphs_matches_brute(g in connected_graph(), mask in 1u8..128) {
        // Work on the line graph (claw-free); terminals are edge-vertices.
        prop_assume!(g.num_edges() >= 2 && g.num_edges() <= 9);
        let lg = minimal_steiner::graph::line_graph::line_graph(&g);
        let n = lg.num_vertices();
        let w = terminal_subset(n, mask, 3);
        prop_assume!(!w.is_empty());
        let mut got = BTreeSet::new();
        let res = minimal_steiner::induced::supergraph::
            enumerate_minimal_induced_steiner_subgraphs(&lg, &w, &mut |s| {
                got.insert(s.to_vec());
                ControlFlow::Continue(())
            });
        prop_assert!(res.is_ok());
        prop_assert_eq!(
            got,
            minimal_steiner::induced::brute::minimal_induced_steiner_subgraphs(&lg, &w)
        );
    }

    #[test]
    fn transversals_match_brute(
        n in 2usize..6,
        edges in proptest::collection::vec(proptest::collection::vec(0usize..6, 1..4), 1..5),
    ) {
        let edges: Vec<Vec<usize>> = edges
            .into_iter()
            .map(|e| e.into_iter().map(|v| v % n).collect())
            .collect();
        let h = minimal_steiner::hardness::hypergraph::Hypergraph::new(n, edges);
        let mut got = BTreeSet::new();
        let mut all_valid = true;
        let mut duplicate = false;
        minimal_steiner::hardness::transversal::enumerate_minimal_transversals(&h, &mut |t| {
            all_valid &= h.is_minimal_transversal(t);
            duplicate |= !got.insert(t.to_vec());
            ControlFlow::Continue(())
        });
        prop_assert!(all_valid, "invalid transversal emitted");
        prop_assert!(!duplicate, "duplicate transversal emitted");
        prop_assert_eq!(
            got,
            minimal_steiner::hardness::transversal::minimal_transversals_brute(&h)
        );
    }
}
