//! Incremental-classification equivalence suite.
//!
//! The contract under test: the trail-backed incremental classifier
//! (`DynamicSpanning` reach/contract state threaded through the engines'
//! descend/undo frames) delivers a solution stream **byte-identical** to
//! the full per-node recomputation (`with_incremental(false)`, the
//! pre-incremental engine kept as the conformance reference) — for all
//! four problems, under every front-end (direct / queued / limit /
//! iterator / `with_threads(k)` for k ∈ {1, 2, 4} / cached replay).
//!
//! Because both modes run through the same engine, a single diverging
//! per-node verdict (Complete / Unique / Branch target) would change the
//! stream; exact stream equality therefore pins the incremental layer's
//! verdicts and component labels to the fresh spanning-growth pass at
//! every search-tree node. (In debug builds the classifiers additionally
//! cross-check each incremental fast-path verdict against a fresh pass
//! inline, so these tests also execute that assertion at every node.)

use minimal_steiner::graph::{generators, DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::ResultCache;
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, SteinerForest, SteinerTree,
    TerminalSteinerTree,
};
use proptest::prelude::*;

/// Collects the full ordered stream of an enumeration.
fn ordered<P>(e: Enumeration<P>) -> Vec<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    e.collect_vec().expect("valid instance")
}

/// Asserts byte-identical streams between incremental-on (the default)
/// and incremental-off (fresh recomputation per node), across the
/// direct, queued, limited, and sharded front-ends.
fn assert_incremental_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + std::fmt::Debug + PartialEq,
    F: Fn() -> P,
{
    let reference = ordered(Enumeration::new(make()).with_incremental(false));
    let on = ordered(Enumeration::new(make()));
    assert_eq!(on, reference, "direct stream");
    let queued = ordered(Enumeration::new(make()).with_default_queue());
    assert_eq!(queued, reference, "queued stream");
    for k in [1usize, 2, 4] {
        let sharded = ordered(Enumeration::new(make()).with_threads(k));
        assert_eq!(sharded, reference, "threads({k}) stream");
    }
    // Limit cuts exercise mid-run termination (undo under early break).
    let total = reference.len() as u64;
    for limit in [1, 2, total / 2, total] {
        let capped = ordered(Enumeration::new(make()).with_limit(limit));
        let want = &reference[..(limit.min(total)) as usize];
        assert_eq!(capped, want, "limit({limit}) prefix");
    }
}

/// Cached replay: a cold incremental run records the stream, the replay
/// must equal the incremental-off reference byte for byte.
fn assert_cached_replay_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send + 'static,
    P::Item: Send + std::fmt::Debug + PartialEq + 'static,
    F: Fn() -> P,
{
    let reference = ordered(Enumeration::new(make()).with_incremental(false));
    let cache: ResultCache<P::Item> = ResultCache::new();
    let cold = ordered(Enumeration::new(make()).cached(&cache));
    let replay = ordered(Enumeration::new(make()).cached(&cache));
    assert_eq!(cold, reference, "cold cached stream");
    assert_eq!(replay, reference, "cached replay stream");
    assert_eq!(cache.stats().hits, 1, "the second run was a replay");
}

fn grid_tree(g: &UndirectedGraph, w: Vec<VertexId>) -> SteinerTree<'_> {
    SteinerTree::new(g, &w)
}

#[test]
fn steiner_tree_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let w = vec![VertexId(0), VertexId(11), VertexId(5)];
    assert_incremental_matches(|| grid_tree(&g, w.clone()));
    assert_cached_replay_matches(|| SteinerTree::from_graph(g.clone(), &w));
}

#[test]
fn steiner_forest_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let sets = vec![
        vec![VertexId(0), VertexId(11)],
        vec![VertexId(3), VertexId(8)],
    ];
    assert_incremental_matches(|| SteinerForest::new(&g, &sets));
    assert_cached_replay_matches(|| SteinerForest::from_graph(g.clone(), &sets));
}

#[test]
fn terminal_steiner_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let w = vec![VertexId(0), VertexId(3), VertexId(8)];
    assert_incremental_matches(|| TerminalSteinerTree::new(&g, &w));
    assert_cached_replay_matches(|| TerminalSteinerTree::from_graph(g.clone(), &w));
}

#[test]
fn directed_steiner_layered_all_front_ends() {
    let (d, root) = generators::layered_digraph(3, 3);
    let w = vec![VertexId(7), VertexId(8), VertexId(9)];
    assert_incremental_matches(|| DirectedSteinerTree::new(&d, root, &w));
    assert_cached_replay_matches(|| DirectedSteinerTree::from_graph(d.clone(), root, &w));
}

#[test]
fn iterator_front_end_matches_reference() {
    let g = generators::theta_chain(3, 3);
    let w = [VertexId(0), VertexId(3)];
    let reference = ordered(Enumeration::new(SteinerTree::new(&g, &w)).with_incremental(false));
    let iterated: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g, &w))
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(iterated, reference, "pull iterator stream");
}

/// Deep-backtrack ladder: theta chains drive the recursion `blocks`
/// levels deep with `width`-way branching at every level, so every
/// attach/contract delta is applied and undone `width^depth` times. Any
/// missed or over-eager undo in the connectivity layer shows up as a
/// diverging stream (and as a debug assertion in the per-node
/// cross-check).
#[test]
fn deep_backtrack_ladder_tree_and_forest() {
    let g = generators::theta_chain(6, 3);
    let w = [VertexId(0), VertexId(6)];
    assert_incremental_matches(|| SteinerTree::new(&g, &w));
    let sets = vec![vec![VertexId(0), VertexId(6)]];
    assert_incremental_matches(|| SteinerForest::new(&g, &sets));
    // A pendant bridge path hanging off the chain keeps the skeleton
    // non-trivial at every depth (forced-path collection under deep
    // undo).
    let mut gp = g;
    let n = gp.num_vertices();
    gp.add_vertex();
    gp.add_vertex();
    gp.add_edge_indices(3, n).unwrap();
    gp.add_edge_indices(n, n + 1).unwrap();
    let wp = [VertexId(0), VertexId(6), VertexId::new(n + 1)];
    assert_incremental_matches(|| SteinerTree::new(&gp, &wp));
}

#[test]
fn incremental_counters_report_the_skipped_passes() {
    // Forest classification is *fully* incremental: zero rebuilds.
    let g = generators::grid(3, 4);
    let sets = vec![
        vec![VertexId(0), VertexId(11)],
        vec![VertexId(3), VertexId(8)],
    ];
    let (run, stats) = Enumeration::new(SteinerForest::new(&g, &sets)).with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert!(stats.solutions > 0);
    assert_eq!(
        stats.classify_rebuilds, 0,
        "forest classifies never rebuild"
    );
    assert!(stats.classify_incremental > 0);

    // Tree classification serves Unique leaves incrementally and only
    // rebuilds at branch nodes. A grid has no bridges (nothing is ever
    // forced — every leaf is Complete, which is O(1) in both modes), so
    // use a theta-plus-pendants instance where, whichever pendant
    // terminal the engine branches on first, every path runs through the
    // hub and leaves the other pendant terminal forced: the leaf
    // classifies incrementally.
    let (gp, wp) = hub_pendant_instance();
    let (run, stats) = Enumeration::new(SteinerTree::new(&gp, &wp)).with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert!(
        stats.classify_incremental > 0,
        "unique leaves served incrementally"
    );
    assert!(stats.max_repair_span >= 1, "attach deltas are accounted");

    // With incremental classification off, the counters flip: nothing is
    // incremental, every non-trivial classify is a rebuild.
    let (run, stats) = Enumeration::new(SteinerTree::new(&gp, &wp))
        .with_incremental(false)
        .with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert_eq!(stats.classify_incremental, 0);
    assert!(stats.classify_rebuilds > 0);
}

#[test]
fn sharded_merge_folds_incremental_counters() {
    let (gp, wp) = hub_pendant_instance();
    let (run, stats) = Enumeration::new(SteinerTree::new(&gp, &wp))
        .with_threads(4)
        .with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert!(
        stats.classify_incremental > 0,
        "worker counters survive the merge"
    );
}

/// Source 0 joined to a hub by three parallel 2-paths (a theta block),
/// plus two pendant terminals hanging off the hub. Whichever pendant
/// terminal is branched on first, every valid path passes the hub, so
/// the remaining one is bridge-forced and the leaf is a Unique node.
fn hub_pendant_instance() -> (UndirectedGraph, Vec<VertexId>) {
    let mut g = UndirectedGraph::new(2); // 0 = source, 1 = hub
    for _ in 0..3 {
        let mid = g.add_vertex();
        g.add_edge(VertexId(0), mid).unwrap();
        g.add_edge(mid, VertexId(1)).unwrap();
    }
    let t1 = g.add_vertex();
    g.add_edge(VertexId(1), t1).unwrap();
    let t2 = g.add_vertex();
    g.add_edge(VertexId(1), t2).unwrap();
    (g, vec![VertexId(0), t1, t2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random connected multigraphs: the incremental Steiner-tree stream
    /// equals the fresh-recomputation stream exactly.
    #[test]
    fn tree_incremental_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.is_empty() {
            return Ok(());
        }
        let on = Enumeration::new(SteinerTree::new(&g, &w)).collect_vec();
        let off = Enumeration::new(SteinerTree::new(&g, &w))
            .with_incremental(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random instances for the forest enumerator (pairs overlap and
    /// interact, exercising the contract-delta labels).
    #[test]
    fn forest_incremental_equals_reference(g in connected_graph(), m1 in 1u8..128, m2 in 1u8..128) {
        let n = g.num_vertices();
        let sets = vec![
            terminal_subset(n, m1, 3),
            terminal_subset(n, m2, 3),
        ];
        let on = Enumeration::new(SteinerForest::new(&g, &sets)).collect_vec();
        let off = Enumeration::new(SteinerForest::new(&g, &sets))
            .with_incremental(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random instances for the terminal variant (barrier vertices in
    /// the skeleton, per-component floods).
    #[test]
    fn terminal_incremental_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.len() < 2 {
            return Ok(());
        }
        let on = Enumeration::new(TerminalSteinerTree::new(&g, &w)).collect_vec();
        let off = Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .with_incremental(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random digraphs (cycles included) for the directed variant's
    /// unique-in-arc skeleton.
    #[test]
    fn directed_incremental_equals_reference(d in digraph(), mask in 1u8..64) {
        let w = terminal_subset(d.num_vertices(), mask, 3);
        let root = VertexId(0);
        let w: Vec<VertexId> = w.into_iter().filter(|&v| v != root).collect();
        if w.is_empty() {
            return Ok(());
        }
        let on = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).collect_vec();
        let off = Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .with_incremental(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Sharded + incremental on random instances: the merged stream
    /// equals the sequential reference for k ∈ {2, 4}.
    #[test]
    fn sharded_incremental_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.is_empty() {
            return Ok(());
        }
        let reference = Enumeration::new(SteinerTree::new(&g, &w))
            .with_incremental(false)
            .collect_vec();
        for k in [2usize, 4] {
            let sharded = Enumeration::new(SteinerTree::new(&g, &w))
                .with_threads(k)
                .collect_vec();
            prop_assert_eq!(&sharded, &reference, "threads({})", k);
        }
    }
}

/// Strategy: a connected graph on `n ∈ [2, 7]` vertices — a path backbone
/// plus up to 8 random extra edges (parallel edges allowed, exercising
/// the multigraph code paths).
fn connected_graph() -> impl Strategy<Value = UndirectedGraph> {
    (2usize..=7).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n), 0..8);
        extra.prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for i in 1..n {
                g.add_edge_indices(i - 1, i).unwrap();
            }
            for (u, v) in pairs {
                if u != v {
                    g.add_edge_indices(u, v).unwrap();
                }
            }
            g
        })
    })
}

/// Strategy: a digraph on `n ∈ [2, 6]` vertices with random arcs.
fn digraph() -> impl Strategy<Value = DiGraph> {
    (2usize..=6).prop_flat_map(|n| {
        let arcs = proptest::collection::vec((0..n, 0..n), 0..12);
        arcs.prop_map(move |pairs| {
            let mut d = DiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    d.add_arc_indices(u, v).unwrap();
                }
            }
            d
        })
    })
}

fn terminal_subset(n: usize, mask: u8, max: usize) -> Vec<VertexId> {
    let mask = mask as u64;
    let mut w: Vec<VertexId> = (0..n.min(63))
        .filter(|i| mask & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect();
    w.truncate(max);
    w
}
