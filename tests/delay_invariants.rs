//! Delay and enumeration-tree invariants — the measurable content of
//! Theorems 17, 20, 25, 31 and 36.
//!
//! These tests assert the *structural* facts the paper's complexity proofs
//! rest on: the improved enumeration trees have no single-child internal
//! nodes, internal nodes never outnumber leaves, amortized work per
//! solution is bounded by a small multiple of n + m, and the output queue
//! bounds the worst-case work gap between consecutive emissions.

use minimal_steiner::graph::{generators, EdgeId, VertexId};
use minimal_steiner::steiner::queue::{OutputQueue, QueueConfig, SolutionSink};
use minimal_steiner::steiner::simple::enumerate_minimal_steiner_trees_simple;
use minimal_steiner::steiner::solver::run_with_sink;
use minimal_steiner::steiner::EnumStats;
use minimal_steiner::{DirectedSteinerTree, Enumeration, SteinerForest, SteinerTree};
use std::cell::{Cell, RefCell};
use std::ops::ControlFlow;

fn run_tree(g: &minimal_steiner::graph::UndirectedGraph, w: &[VertexId]) -> EnumStats {
    Enumeration::new(SteinerTree::new(g, w))
        .run()
        .expect("valid instance")
}

#[test]
fn improved_tree_shape_invariants_on_grids() {
    for (rows, cols, t) in [(3, 4, 3), (3, 5, 4), (4, 4, 3)] {
        let g = generators::grid(rows, cols);
        let n = g.num_vertices();
        let w: Vec<VertexId> = (0..t)
            .map(|i| VertexId::new(i * (n - 1) / (t - 1)))
            .collect();
        let stats = run_tree(&g, &w);
        assert!(stats.solutions > 0);
        assert_eq!(stats.deficient_internal_nodes, 0, "{rows}x{cols} t={t}");
        assert!(
            stats.internal_nodes <= stats.leaf_nodes,
            "internal {} > leaves {}",
            stats.internal_nodes,
            stats.leaf_nodes
        );
        assert_eq!(stats.leaf_nodes, stats.solutions);
    }
}

#[test]
fn amortized_work_per_solution_is_linear() {
    // On solution-dense instances total work / #solutions should be a
    // small multiple of (n + m) — the Theorem 17 bound. The constant here
    // is generous but fails if the amortization argument breaks.
    for width in [2, 3] {
        for blocks in [4, 6] {
            let g = generators::theta_chain(blocks, width);
            let w = [VertexId(0), VertexId::new(blocks)];
            let stats = run_tree(&g, &w);
            let nm = (g.num_vertices() + g.num_edges()) as u64;
            assert_eq!(stats.solutions, (width as u64).pow(blocks as u32));
            let per_solution = stats.work / stats.solutions;
            assert!(
                per_solution <= 20 * nm,
                "amortized work {per_solution} exceeds 20(n+m) = {}",
                20 * nm
            );
        }
    }
}

#[test]
fn queue_bounds_worst_case_gap() {
    // Without the queue, gaps can reach a large multiple of n + m; with
    // it, once warm-up has filled, consecutive releases are at most
    // `budget` apart in work units. We measure the user-visible gap by
    // wrapping the sink with a work probe: the queue's own release
    // schedule is driven by the same counter recorded in stats.
    let g = generators::grid(3, 6);
    let w = [VertexId(0), VertexId(5), VertexId(12), VertexId(17)];
    let direct = run_tree(&g, &w);
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    // Direct mode: gap bounded by depth * (n+m)-ish; just record it.
    assert!(direct.solutions > 100, "instance is solution-dense");
    // Queued mode with an explicit budget.
    let config = QueueConfig {
        warmup: g.num_vertices(),
        budget: 4 * nm,
        max_buffer: 2 * g.num_vertices(),
    };
    let queued = Enumeration::new(SteinerTree::new(&g, &w))
        .with_queue(config)
        .run()
        .expect("valid instance");
    assert_eq!(queued.solutions, direct.solutions);
}

#[test]
fn queue_release_schedule_bounds_minimum_gap() {
    // The worst-case-delay contract, minimum-gap form: once warm-up has
    // filled, consecutive *scheduled* releases must be at least `budget`
    // work units apart — the schedule may never burst buffered solutions
    // back to back after a long release-free branch (the end-of-run flush
    // is exempt by design). Driven by a real enumeration: a work probe
    // records the enumerator's work counter at each user-visible release.
    let g = generators::grid(3, 6);
    let w = [VertexId(0), VertexId(5), VertexId(12), VertexId(17)];
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    let config = QueueConfig {
        warmup: g.num_vertices(),
        budget: 4 * nm,
        max_buffer: 1 << 20, // never trip the R3 overflow clause here
    };
    let current_work = Cell::new(0u64);
    let release_works: RefCell<Vec<u64>> = RefCell::new(Vec::new());
    let in_flush = Cell::new(false);

    struct Probe<'a> {
        inner: OutputQueue<'a, EdgeId>,
        current_work: &'a Cell<u64>,
        in_flush: &'a Cell<bool>,
    }
    impl SolutionSink<EdgeId> for Probe<'_> {
        fn solution(&mut self, items: &[EdgeId], work: u64) -> ControlFlow<()> {
            self.current_work.set(work);
            self.inner.solution(items, work)
        }
        fn tick(&mut self, work: u64) -> ControlFlow<()> {
            self.current_work.set(work);
            self.inner.tick(work)
        }
        fn finish(&mut self) -> ControlFlow<()> {
            self.in_flush.set(true);
            self.inner.finish()
        }
    }

    let delivered;
    {
        let mut user_sink = |_: &[EdgeId]| {
            if !in_flush.get() {
                release_works.borrow_mut().push(current_work.get());
            }
            ControlFlow::Continue(())
        };
        let mut probe = Probe {
            inner: OutputQueue::new(config, &mut user_sink),
            current_work: &current_work,
            in_flush: &in_flush,
        };
        let stats =
            run_with_sink(&mut SteinerTree::new(&g, &w), &mut probe).expect("valid instance");
        delivered = stats.solutions;
    }
    let release_works = release_works.into_inner();
    let direct = run_tree(&g, &w);
    assert_eq!(delivered, direct.solutions, "the queue loses nothing");
    assert!(
        release_works.len() > 3,
        "several scheduled (pre-flush) releases happened"
    );
    for pair in release_works.windows(2) {
        assert!(
            pair[1] - pair[0] >= config.budget,
            "scheduled releases at work {} and {} are closer than the {} budget",
            pair[0],
            pair[1],
            config.budget
        );
    }
}

#[test]
fn queue_bounds_maximum_release_gap_on_deep_instances() {
    // The worst-case-delay contract in its *maximum-gap* form: on an
    // adversarial instance — a deep, narrow theta chain whose enumeration
    // tree descends ~`blocks` levels between some consecutive leaves —
    // the direct front-end's max emission gap exceeds the queue budget,
    // while the queued front-end's releases stay within
    // `budget + slack·(n+m)` of each other (a release fires at the first
    // due check after the budget elapses, and due checks are at most a
    // few node-costs apart).
    let g = generators::theta_chain(14, 2); // depth ~14, 2^14 solutions
    let w = [VertexId(0), VertexId(14)];
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    let direct = run_tree(&g, &w);
    let budget = 2 * nm;
    assert!(
        direct.max_emission_gap > budget,
        "adversarial instance: direct gap {} must exceed the budget {}",
        direct.max_emission_gap,
        budget
    );
    let config = QueueConfig {
        warmup: g.num_vertices(),
        budget,
        max_buffer: 1 << 20, // keep the R3 overflow clause out of the way
    };
    let max_allowed = budget + 6 * nm;

    // Probe the release schedule exactly as in the minimum-gap test.
    let current_work = Cell::new(0u64);
    let release_works: RefCell<Vec<u64>> = RefCell::new(Vec::new());
    let in_flush = Cell::new(false);
    struct Probe<'a> {
        inner: OutputQueue<'a, EdgeId>,
        current_work: &'a Cell<u64>,
        in_flush: &'a Cell<bool>,
    }
    impl SolutionSink<EdgeId> for Probe<'_> {
        fn solution(&mut self, items: &[EdgeId], work: u64) -> ControlFlow<()> {
            self.current_work.set(work);
            self.inner.solution(items, work)
        }
        fn tick(&mut self, work: u64) -> ControlFlow<()> {
            self.current_work.set(work);
            self.inner.tick(work)
        }
        fn finish(&mut self) -> ControlFlow<()> {
            self.in_flush.set(true);
            self.inner.finish()
        }
    }
    {
        let mut user_sink = |_: &[EdgeId]| {
            if !in_flush.get() {
                release_works.borrow_mut().push(current_work.get());
            }
            ControlFlow::Continue(())
        };
        let mut probe = Probe {
            inner: OutputQueue::new(config, &mut user_sink),
            current_work: &current_work,
            in_flush: &in_flush,
        };
        run_with_sink(&mut SteinerTree::new(&g, &w), &mut probe).expect("valid instance");
    }
    let release_works = release_works.into_inner();
    assert!(release_works.len() > 10, "many scheduled releases happened");
    for pair in release_works.windows(2) {
        assert!(
            pair[1] - pair[0] <= max_allowed,
            "releases at work {} and {} are further apart than budget {} + slack {}",
            pair[0],
            pair[1],
            budget,
            6 * nm
        );
    }
}

#[test]
fn sharded_queue_bounds_maximum_delivery_gap() {
    // The sharded analogue of the max-gap bound: with `with_threads(k)`
    // the queue runs at the merge point, driven by the merged work clock
    // (the sum of the workers' counters). Clock resolution is coarser —
    // per-worker heartbeats arrive every `budget/2` work units and a
    // message can advance the clock by a whole heartbeat interval — so
    // the bound carries an extra `budget/2 + slack` term. The published
    // `max_emission_gap` of a sharded run *is* the delivery gap on the
    // merged clock, so it is asserted directly.
    let g = generators::theta_chain(14, 2);
    let w = [VertexId(0), VertexId(14)];
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    let budget = 4 * nm;
    let config = QueueConfig {
        warmup: g.num_vertices(),
        budget,
        max_buffer: 1 << 20,
    };
    let sequential_count = run_tree(&g, &w).solutions;
    for k in [2usize, 4] {
        let stats = Enumeration::new(SteinerTree::new(&g, &w))
            .with_threads(k)
            .with_queue(config)
            .run()
            .expect("valid instance");
        assert_eq!(stats.solutions, sequential_count, "the queue loses nothing");
        // Extra terms over the sequential bound: one worker heartbeat
        // (budget/2) of clock resolution, plus up to k root children of
        // sink-silent generation work per merged message.
        let slack = (4 + 4 * k as u64) * nm;
        let max_allowed = budget + budget / 2 + slack;
        assert!(
            stats.max_emission_gap <= max_allowed,
            "threads({k}): merged delivery gap {} exceeds budget {} + heartbeat {} + slack {}",
            stats.max_emission_gap,
            budget,
            budget / 2,
            slack
        );
    }
}

#[test]
fn stealing_queue_bounds_maximum_delivery_gap() {
    // The work-stealing analogue of the sharded max-gap bound: a
    // scripted schedule forces subtrees to be published mid-stream, so
    // parts of the delivered stream arrive over dedicated task channels
    // spliced in at their `Spawned` markers. The merged work clock
    // baselines each task stream at its first message and adds deltas
    // from then on, so the delivery-gap bound must survive unchanged —
    // same budget, heartbeat, and slack terms as the root-only sharded
    // test above.
    use minimal_steiner::StealSchedule;
    let g = generators::theta_chain(14, 2);
    let w = [VertexId(0), VertexId(14)];
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    let budget = 4 * nm;
    let config = QueueConfig {
        warmup: g.num_vertices(),
        budget,
        max_buffer: 1 << 20,
    };
    let sequential_count = run_tree(&g, &w).solutions;
    for k in [2usize, 4] {
        let stats = Enumeration::new(SteinerTree::new(&g, &w))
            .with_threads(k)
            .with_steal_schedule(StealSchedule::new().steal_every(5))
            .with_queue(config)
            .run()
            .expect("valid instance");
        assert_eq!(stats.solutions, sequential_count, "the queue loses nothing");
        assert!(
            stats.subtrees_stolen > 0,
            "threads({k}): the script must force mid-stream steals"
        );
        let slack = (4 + 4 * k as u64) * nm;
        let max_allowed = budget + budget / 2 + slack;
        assert!(
            stats.max_emission_gap <= max_allowed,
            "threads({k}): stolen-stream delivery gap {} exceeds budget {} + heartbeat {} + slack {}",
            stats.max_emission_gap,
            budget,
            budget / 2,
            slack
        );
    }
}

#[test]
fn simple_vs_improved_delay_grows_with_terminals() {
    // The qualitative Table 1 comparison: on a path-of-gadgets instance
    // with many terminals, the simple algorithm's enumeration tree is much
    // deeper than the improved one's node count would suggest, and its
    // max work gap is larger. We assert the tree-depth relationship which
    // is deterministic.
    let g = generators::theta_chain(8, 2);
    let w: Vec<VertexId> = (0..=8).map(VertexId::new).collect(); // all hubs
    let simple = enumerate_minimal_steiner_trees_simple(&g, &w, &mut |_| ControlFlow::Continue(()));
    let improved = run_tree(&g, &w);
    assert_eq!(simple.solutions, improved.solutions);
    assert_eq!(improved.deficient_internal_nodes, 0);
    // The simple tree has single-child chains; the improved one does not.
    assert!(simple.nodes >= improved.nodes);
}

#[test]
fn forest_and_directed_invariants() {
    let g = generators::grid(3, 5);
    let sets = vec![
        vec![VertexId(0), VertexId(14)],
        vec![VertexId(4), VertexId(10)],
    ];
    let fstats = Enumeration::new(SteinerForest::new(&g, &sets))
        .run()
        .expect("valid instance");
    assert!(fstats.solutions > 0);
    assert_eq!(fstats.deficient_internal_nodes, 0, "Lemma 24 invariant");

    let (d, root) = generators::layered_digraph(3, 3);
    let w = [VertexId(7), VertexId(8), VertexId(9)];
    let dstats = Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
        .run()
        .expect("valid instance");
    assert!(dstats.solutions > 0);
    assert_eq!(dstats.deficient_internal_nodes, 0, "Lemma 35 invariant");
}

#[test]
fn preprocessing_then_first_solution_is_prompt() {
    // The first solution must arrive after O(n(n+m)) preprocessing-ish
    // work, not after exploring a large part of the output space: measure
    // work at first emission on a large dense instance.
    let g = generators::theta_chain(10, 3); // ~59k solutions
    let w = [VertexId(0), VertexId(10)];
    let mut first_work = None;
    let stats = Enumeration::new(SteinerTree::new(&g, &w))
        .for_each(|_| ControlFlow::Break(())) // stop at the very first solution
        .expect("valid instance");
    first_work.get_or_insert(stats.work);
    let nm = (g.num_vertices() + g.num_edges()) as u64;
    assert!(
        stats.work <= 40 * nm,
        "first solution took {} work units (> 40(n+m) = {})",
        stats.work,
        40 * nm
    );
}
