//! Packed path-generation equivalence suite.
//!
//! The contract under test: the word-packed path generator (bitset
//! `F-STP` frontiers, signature-keyed cross-branch BFS-cache reuse, flat
//! child-run emission — `with_packed_frontiers(true)`, the default)
//! delivers a solution stream **byte-identical** to the per-vertex
//! reference enumerator (`with_packed_frontiers(false)`) — for all four
//! problems, under every front-end (direct / queued / limit / iterator /
//! `with_threads(k)` for k ∈ {1, 2, 4} / stealing / cached replay).
//!
//! Packing changes only how each branch node's child paths are computed:
//! the same `E-STP` recursion tree is walked in the same order, so a
//! single diverging child path (or child order) would change the stream.
//! Exact stream equality therefore pins the packed engine's BFS trees,
//! admissibility masks, and batch reconstruction to the reference at
//! every branch node.

use minimal_steiner::graph::{generators, DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::ResultCache;
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, SteinerForest, SteinerTree,
    TerminalSteinerTree,
};
use proptest::prelude::*;

/// Collects the full ordered stream of an enumeration.
fn ordered<P>(e: Enumeration<P>) -> Vec<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    e.collect_vec().expect("valid instance")
}

/// Asserts byte-identical streams between packed-on (the default) and
/// packed-off (the per-vertex reference enumerator), across the direct,
/// queued, limited, sharded, and stealing front-ends.
fn assert_packed_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + std::fmt::Debug + PartialEq,
    F: Fn() -> P,
{
    let reference = ordered(Enumeration::new(make()).with_packed_frontiers(false));
    let on = ordered(Enumeration::new(make()));
    assert_eq!(on, reference, "direct stream");
    let queued = ordered(Enumeration::new(make()).with_default_queue());
    assert_eq!(queued, reference, "queued stream");
    for k in [1usize, 2, 4] {
        let sharded = ordered(Enumeration::new(make()).with_threads(k));
        assert_eq!(sharded, reference, "threads({k}) stream");
        let stealing = ordered(Enumeration::new(make()).with_threads(k).with_stealing(true));
        assert_eq!(stealing, reference, "threads({k}) stealing stream");
    }
    // Limit cuts exercise mid-run termination (Break propagation through
    // the packed frame queue).
    let total = reference.len() as u64;
    for limit in [1, 2, total / 2, total] {
        let capped = ordered(Enumeration::new(make()).with_limit(limit));
        let want = &reference[..(limit.min(total)) as usize];
        assert_eq!(capped, want, "limit({limit}) prefix");
    }
}

/// Cached replay: a cold packed run records the stream, the replay must
/// equal the packed-off reference byte for byte.
fn assert_cached_replay_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send + 'static,
    P::Item: Send + std::fmt::Debug + PartialEq + 'static,
    F: Fn() -> P,
{
    let reference = ordered(Enumeration::new(make()).with_packed_frontiers(false));
    let cache: ResultCache<P::Item> = ResultCache::new();
    let cold = ordered(Enumeration::new(make()).cached(&cache));
    let replay = ordered(Enumeration::new(make()).cached(&cache));
    assert_eq!(cold, reference, "cold cached stream");
    assert_eq!(replay, reference, "cached replay stream");
    assert_eq!(cache.stats().hits, 1, "the second run was a replay");
}

#[test]
fn steiner_tree_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let w = vec![VertexId(0), VertexId(11), VertexId(5)];
    assert_packed_matches(|| SteinerTree::new(&g, &w));
    assert_cached_replay_matches(|| SteinerTree::from_graph(g.clone(), &w));
}

#[test]
fn steiner_forest_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let sets = vec![
        vec![VertexId(0), VertexId(11)],
        vec![VertexId(3), VertexId(8)],
    ];
    assert_packed_matches(|| SteinerForest::new(&g, &sets));
    assert_cached_replay_matches(|| SteinerForest::from_graph(g.clone(), &sets));
}

#[test]
fn terminal_steiner_grid_all_front_ends() {
    let g = generators::grid(3, 4);
    let w = vec![VertexId(0), VertexId(3), VertexId(8)];
    assert_packed_matches(|| TerminalSteinerTree::new(&g, &w));
    assert_cached_replay_matches(|| TerminalSteinerTree::from_graph(g.clone(), &w));
}

#[test]
fn directed_steiner_layered_all_front_ends() {
    let (d, root) = generators::layered_digraph(3, 3);
    let w = vec![VertexId(7), VertexId(8), VertexId(9)];
    assert_packed_matches(|| DirectedSteinerTree::new(&d, root, &w));
    assert_cached_replay_matches(|| DirectedSteinerTree::from_graph(d.clone(), root, &w));
}

#[test]
fn iterator_front_end_matches_reference() {
    let g = generators::theta_chain(3, 3);
    let w = [VertexId(0), VertexId(3)];
    let reference =
        ordered(Enumeration::new(SteinerTree::new(&g, &w)).with_packed_frontiers(false));
    let iterated: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g, &w))
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(iterated, reference, "pull iterator stream");
}

/// Deep-backtrack ladder: theta chains drive the `E-STP` recursion
/// `blocks` levels deep with `width`-way branching at every level, so
/// every packed level cache is overwritten and revalidated many times
/// under a deep prefix trail. Any stale BFS tree served past a mask
/// change shows up as a diverging stream.
#[test]
fn deep_backtrack_ladder_tree_and_forest() {
    let g = generators::theta_chain(6, 3);
    let w = [VertexId(0), VertexId(6)];
    assert_packed_matches(|| SteinerTree::new(&g, &w));
    let sets = vec![vec![VertexId(0), VertexId(6)]];
    assert_packed_matches(|| SteinerForest::new(&g, &sets));
}

/// A sibling-heavy theta multigraph drives repeated branch calls whose
/// removed-mask signature repeats: the two parallel `0`–`1` edges give
/// two root children spanning the *same* vertex set `{0, 1}`, so both
/// descend into a `branch(w = 3)` call with an identical mask, target,
/// and depth — the second must replay the first's cached reverse BFS.
/// None when packing is off.
#[test]
fn theta_instance_reports_cache_hits() {
    // 0 ═ 1 (parallel pair), then a width-2 theta block 1–{2,4}–3.
    let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 1), (1, 2), (2, 3), (1, 4), (4, 3)])
        .expect("valid edge list");
    let w = [VertexId(0), VertexId(1), VertexId(3)];
    let (run, stats) = Enumeration::new(SteinerTree::new(&g, &w)).with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert!(stats.solutions > 0);
    assert!(
        stats.fstp_cache_hits >= 1,
        "sibling-heavy instance replays cached BFS trees (hits {}, misses {})",
        stats.fstp_cache_hits,
        stats.fstp_cache_misses
    );
    assert!(stats.fstp_cache_misses >= 1, "cold levels still compute");
    assert!(stats.path_gen_work > 0, "path work is attributed");

    let (run, stats) = Enumeration::new(SteinerTree::new(&g, &w))
        .with_packed_frontiers(false)
        .with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert_eq!(stats.fstp_cache_hits, 0, "reference mode never hits");
    assert_eq!(stats.fstp_cache_misses, 0, "reference mode never counts");
    assert!(stats.path_gen_work > 0, "reference work is attributed too");
}

/// The no-allocator-traffic claim holds with packing on: after
/// `prepare()`'s preallocation, a run on a conformance-sized instance
/// performs zero scratch-growth events (bitset words, frame arenas, and
/// flat `qv`/`qa` runs included).
#[test]
fn packed_run_reports_zero_scratch_allocs() {
    let g = generators::grid(4, 5);
    let w = vec![VertexId(0), VertexId(19), VertexId(7)];
    let (run, stats) = Enumeration::new(SteinerTree::new(&g, &w)).with_stats();
    run.run().expect("valid instance");
    let stats = stats.get();
    assert!(stats.solutions > 0);
    assert_eq!(
        stats.scratch_allocs, 0,
        "packed scratch is fully preallocated by prepare()"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random connected multigraphs: the packed Steiner-tree stream
    /// equals the reference stream exactly.
    #[test]
    fn tree_packed_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.is_empty() {
            return Ok(());
        }
        let on = Enumeration::new(SteinerTree::new(&g, &w)).collect_vec();
        let off = Enumeration::new(SteinerTree::new(&g, &w))
            .with_packed_frontiers(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random instances for the forest enumerator (per-branch contracted
    /// doubled graphs, so the packed caches are rebuilt per branch).
    #[test]
    fn forest_packed_equals_reference(g in connected_graph(), m1 in 1u8..128, m2 in 1u8..128) {
        let n = g.num_vertices();
        let sets = vec![
            terminal_subset(n, m1, 3),
            terminal_subset(n, m2, 3),
        ];
        let on = Enumeration::new(SteinerForest::new(&g, &sets)).collect_vec();
        let off = Enumeration::new(SteinerForest::new(&g, &sets))
            .with_packed_frontiers(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random instances for the terminal variant (component masks layer
    /// extra removals on top of the source set).
    #[test]
    fn terminal_packed_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.len() < 2 {
            return Ok(());
        }
        let on = Enumeration::new(TerminalSteinerTree::new(&g, &w)).collect_vec();
        let off = Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .with_packed_frontiers(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Random digraphs (cycles included) for the directed variant.
    #[test]
    fn directed_packed_equals_reference(d in digraph(), mask in 1u8..64) {
        let w = terminal_subset(d.num_vertices(), mask, 3);
        let root = VertexId(0);
        let w: Vec<VertexId> = w.into_iter().filter(|&v| v != root).collect();
        if w.is_empty() {
            return Ok(());
        }
        let on = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).collect_vec();
        let off = Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .with_packed_frontiers(false)
            .collect_vec();
        prop_assert_eq!(on, off);
    }

    /// Sharded + stealing with packing on: the merged stream equals the
    /// sequential packed-off reference for k ∈ {2, 4}.
    #[test]
    fn sharded_packed_equals_reference(g in connected_graph(), mask in 1u8..128) {
        let w = terminal_subset(g.num_vertices(), mask, 4);
        if w.is_empty() {
            return Ok(());
        }
        let reference = Enumeration::new(SteinerTree::new(&g, &w))
            .with_packed_frontiers(false)
            .collect_vec();
        for k in [2usize, 4] {
            let sharded = Enumeration::new(SteinerTree::new(&g, &w))
                .with_threads(k)
                .with_stealing(true)
                .collect_vec();
            prop_assert_eq!(&sharded, &reference, "threads({})", k);
        }
    }
}

/// Strategy: a connected graph on `n ∈ [2, 7]` vertices — a path backbone
/// plus up to 8 random extra edges (parallel edges allowed, exercising
/// the multigraph code paths).
fn connected_graph() -> impl Strategy<Value = UndirectedGraph> {
    (2usize..=7).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n), 0..8);
        extra.prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for i in 1..n {
                g.add_edge_indices(i - 1, i).unwrap();
            }
            for (u, v) in pairs {
                if u != v {
                    g.add_edge_indices(u, v).unwrap();
                }
            }
            g
        })
    })
}

/// Strategy: a digraph on `n ∈ [2, 6]` vertices with random arcs.
fn digraph() -> impl Strategy<Value = DiGraph> {
    (2usize..=6).prop_flat_map(|n| {
        let arcs = proptest::collection::vec((0..n, 0..n), 0..12);
        arcs.prop_map(move |pairs| {
            let mut d = DiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    d.add_arc_indices(u, v).unwrap();
                }
            }
            d
        })
    })
}

fn terminal_subset(n: usize, mask: u8, max: usize) -> Vec<VertexId> {
    let mask = mask as u64;
    let mut w: Vec<VertexId> = (0..n.min(63))
        .filter(|i| mask & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect();
    w.truncate(max);
    w
}
