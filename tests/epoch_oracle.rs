//! Proptest oracle suite for the mutable-graph epoch engine: random
//! mutation/query interleavings over a two-component serving graph,
//! across all four paper problems, asserting that
//!
//! - every query the engine answers — cache hit or cold — is
//!   byte-identical to a fresh one-shot [`Enumeration`] run against the
//!   graph at the current epoch, and
//! - invalidation is exact in both directions: a mutation confined to
//!   one component leaves the other component's cache entries live
//!   ([`MutationOutcome::entries_retained`] nonzero, replay is a hit
//!   with the same bytes), while entries keyed to touched regions are
//!   re-enumerated rather than served stale.
//!
//! Mutations are restricted so they provably stay inside the component
//! they target: edge inserts between two vertices of the component, and
//! removals only of the *last* edge id (no renumbering) when that edge
//! lies in the component. Under that discipline, every region id a
//! batch touches must fall in the component's vertex range — asserted
//! on every [`MutationOutcome`].

use minimal_steiner::graph::{DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::service::{
    ArcMutation, EngineConfig, EnumerationEngine, GraphMutation, Query, QueryOptions, QueryOutcome,
    SolutionItems,
};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use proptest::prelude::*;

/// One step of a randomized interleaving. `comp` selects component A
/// (`false`) or B (`true`); the remaining fields are raw entropy the
/// executor maps onto valid vertices of that component.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Run one of the three undirected problems (or the directed one in
    /// the digraph suite) with terminals drawn from `mask`.
    Query { comp: bool, kind: u8, mask: u8 },
    /// Apply a single-edit mutation batch confined to `comp`.
    Mutate {
        comp: bool,
        remove: bool,
        a: u8,
        b: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        (any::<u8>(), any::<bool>(), any::<u8>()),
        (any::<u8>(), any::<u8>()),
    )
        .prop_map(|((sel, comp, x), (y, z))| {
            if sel % 2 == 0 {
                Op::Query {
                    comp,
                    kind: x % 3,
                    mask: y,
                }
            } else {
                Op::Mutate {
                    comp,
                    remove: x % 2 == 0,
                    a: y,
                    b: z,
                }
            }
        })
}

/// The vertex range `[base, base + len)` of one component.
#[derive(Clone, Copy, Debug)]
struct Comp {
    base: u32,
    len: u32,
}

impl Comp {
    fn contains(self, v: u32) -> bool {
        v >= self.base && v < self.base + self.len
    }

    /// Maps raw entropy onto a vertex of this component.
    fn vertex(self, raw: u8) -> VertexId {
        VertexId(self.base + raw as u32 % self.len)
    }

    /// At least two distinct terminals of this component, drawn from the
    /// low bits of `mask`.
    fn terminals(self, mask: u8) -> Vec<VertexId> {
        let mut w: Vec<VertexId> = (0..self.len)
            .filter(|i| mask & (1 << (i % 8)) != 0)
            .map(|i| VertexId(self.base + i))
            .collect();
        if w.len() < 2 {
            w = vec![VertexId(self.base), VertexId(self.base + self.len - 1)];
        }
        w
    }
}

/// Builds the undirected query for `kind` over `terminals`.
fn undirected_query(kind: u8, terminals: Vec<VertexId>) -> Query {
    match kind {
        0 => Query::SteinerTree { terminals },
        1 => Query::SteinerForest {
            sets: vec![terminals],
        },
        _ => Query::TerminalSteinerTree { terminals },
    }
}

/// A fresh, uncached one-shot run of `q` against `g` — the oracle every
/// engine answer is compared to.
fn cold_undirected(
    g: &UndirectedGraph,
    q: &Query,
) -> Result<Vec<Vec<minimal_steiner::graph::EdgeId>>, minimal_steiner::SteinerError> {
    match q {
        Query::SteinerTree { terminals } => {
            Enumeration::new(SteinerTree::new(g, terminals)).collect_vec()
        }
        Query::SteinerForest { sets } => {
            Enumeration::new(SteinerForest::new(g, sets)).collect_vec()
        }
        Query::TerminalSteinerTree { terminals } => {
            Enumeration::new(TerminalSteinerTree::new(g, terminals)).collect_vec()
        }
        Query::DirectedSteinerTree { .. } => unreachable!("undirected suite"),
    }
}

/// Asserts the engine's answer matches the cold oracle byte for byte
/// (or that both reject the instance).
fn assert_matches_cold_undirected(
    engine: &EnumerationEngine,
    outcome: &QueryOutcome,
    q: &Query,
) -> Result<(), TestCaseError> {
    let g = {
        let guard = engine.graph();
        (*guard).clone()
    };
    match cold_undirected(&g, q) {
        Ok(expected) => {
            prop_assert!(
                outcome.status.is_ok(),
                "engine rejected an instance the oracle accepts: {:?}",
                outcome.status
            );
            prop_assert_eq!(
                outcome.solutions.edges().expect("undirected query"),
                &expected[..],
                "served stream differs from a cold run at the current epoch"
            );
        }
        Err(_) => prop_assert!(
            outcome.status.is_err(),
            "engine accepted an instance the oracle rejects"
        ),
    }
    Ok(())
}

/// Executes one randomized interleaving against an engine serving a
/// two-component undirected graph.
fn run_undirected_interleaving(na: u32, nb: u32, ops: &[Op]) -> Result<(), TestCaseError> {
    let comps = [Comp { base: 0, len: na }, Comp { base: na, len: nb }];
    // Two disjoint paths: component A on 0..na, component B on na..na+nb.
    let n = (na + nb) as usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in comps {
        for i in c.base..c.base + c.len - 1 {
            edges.push((i as usize, i as usize + 1));
        }
    }
    let g = UndirectedGraph::from_edges(n, &edges).expect("valid seed graph");
    let engine = EnumerationEngine::with_config(
        g,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let session = engine.session("oracle");

    // Seed one live cache entry per component so every mutation has a
    // cross-component survivor to check.
    let mut live: [Option<(Query, SolutionItems)>; 2] = [None, None];
    for (i, c) in comps.iter().enumerate() {
        let q = undirected_query(0, c.terminals(0));
        let out = session.run(q.clone(), QueryOptions::default()).unwrap();
        assert_matches_cold_undirected(&engine, &out, &q)?;
        prop_assert!(out.status.is_ok(), "seed paths are connected");
        live[i] = Some((q, out.solutions));
    }

    for &op in ops {
        match op {
            Op::Query { comp, kind, mask } => {
                let i = comp as usize;
                let q = undirected_query(kind, comps[i].terminals(mask));
                let out = session.run(q.clone(), QueryOptions::default()).unwrap();
                // (a) Hit or miss, the answer equals a fresh cold run at
                // the current epoch.
                assert_matches_cold_undirected(&engine, &out, &q)?;
                if out.status.is_ok() {
                    live[i] = Some((q, out.solutions));
                }
            }
            Op::Mutate { comp, remove, a, b } => {
                let i = comp as usize;
                let c = comps[i];
                // Removals only of the last edge id (no renumbering) and
                // only when that edge lies in the target component;
                // otherwise fall back to an in-component insert.
                let edit = {
                    let guard = engine.graph();
                    let last = minimal_steiner::graph::EdgeId(guard.num_edges() as u32 - 1);
                    let (u, v) = guard.endpoints(last);
                    if remove && c.contains(u.0) && c.contains(v.0) {
                        GraphMutation::RemoveEdge(last)
                    } else {
                        let u = c.vertex(a);
                        let mut v = c.vertex(b);
                        if u == v {
                            v = VertexId(c.base + (v.0 - c.base + 1) % c.len);
                        }
                        GraphMutation::InsertEdge { u, v }
                    }
                };
                let before = engine.epoch();
                let out = engine.apply_mutations(&[edit]).expect("edit is valid");
                prop_assert_eq!(out.epoch, before + 1, "each batch advances the epoch");
                for &r in &out.touched_regions {
                    prop_assert!(
                        c.contains(r),
                        "mutation confined to component {:?} touched region {}",
                        c,
                        r
                    );
                }
                // (b1) The untouched component's entry survives: the
                // retained counter sees it and a replay is a pure hit
                // with the same bytes.
                if let Some((q, sol)) = &live[1 - i] {
                    prop_assert!(
                        out.entries_retained >= 1,
                        "cross-component entry should be retained, outcome {:?}",
                        out
                    );
                    let replay = session.run(q.clone(), QueryOptions::default()).unwrap();
                    prop_assert_eq!(
                        replay.stats.cache_hits,
                        1,
                        "untouched entry replays as a hit"
                    );
                    prop_assert_eq!(&replay.solutions, sol, "retained entry is byte-identical");
                }
                // (b2) The touched component is never served stale: its
                // entry misses and the re-enumeration matches a cold run
                // on the mutated graph.
                if let Some((q, _)) = live[i].take() {
                    let rerun = session.run(q.clone(), QueryOptions::default()).unwrap();
                    prop_assert_eq!(
                        rerun.stats.cache_hits,
                        0,
                        "touched-region entry must not hit after the mutation"
                    );
                    assert_matches_cold_undirected(&engine, &rerun, &q)?;
                    if rerun.status.is_ok() {
                        live[i] = Some((q, rerun.solutions));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Directed mirror of the undirected interleaving: two weakly-connected
/// components (directed paths), arc mutations, and the rooted directed
/// Steiner tree problem.
fn run_directed_interleaving(na: u32, nb: u32, ops: &[Op]) -> Result<(), TestCaseError> {
    let comps = [Comp { base: 0, len: na }, Comp { base: na, len: nb }];
    let n = (na + nb) as usize;
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for c in comps {
        for i in c.base..c.base + c.len - 1 {
            arcs.push((i as usize, i as usize + 1));
        }
    }
    let d = DiGraph::from_arcs(n, &arcs).expect("valid seed digraph");
    // The undirected serving graph is unused by this suite; a minimal
    // placeholder keeps the engine well-formed.
    let g = UndirectedGraph::from_edges(2, &[(0, 1)]).expect("placeholder");
    let engine = EnumerationEngine::with_graphs(
        g,
        Some(d),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let session = engine.session("oracle");

    let query_for = |c: Comp, mask: u8| Query::DirectedSteinerTree {
        root: VertexId(c.base),
        terminals: c
            .terminals(mask)
            .into_iter()
            .filter(|v| v.0 != c.base)
            .collect(),
    };
    let check_cold = |out: &QueryOutcome, q: &Query| -> Result<(), TestCaseError> {
        let d = {
            let guard = engine.digraph().expect("engine has a directed view");
            (*guard).clone()
        };
        let (root, terminals) = match q {
            Query::DirectedSteinerTree { root, terminals } => (*root, terminals.clone()),
            _ => unreachable!("directed suite"),
        };
        match Enumeration::new(DirectedSteinerTree::new(&d, root, &terminals)).collect_vec() {
            Ok(expected) => {
                prop_assert!(out.status.is_ok(), "oracle accepts, engine rejected");
                prop_assert_eq!(
                    out.solutions.arcs().expect("directed query"),
                    &expected[..],
                    "served arc stream differs from a cold run"
                );
            }
            Err(_) => prop_assert!(out.status.is_err(), "oracle rejects, engine accepted"),
        }
        Ok(())
    };

    let mut live: [Option<(Query, SolutionItems)>; 2] = [None, None];
    for (i, c) in comps.iter().enumerate() {
        let q = query_for(*c, 0);
        let out = session.run(q.clone(), QueryOptions::default()).unwrap();
        check_cold(&out, &q)?;
        prop_assert!(out.status.is_ok(), "seed paths reach every terminal");
        live[i] = Some((q, out.solutions));
    }

    for &op in ops {
        match op {
            Op::Query {
                comp,
                kind: _,
                mask,
            } => {
                let i = comp as usize;
                let q = query_for(comps[i], mask);
                let out = session.run(q.clone(), QueryOptions::default()).unwrap();
                check_cold(&out, &q)?;
                if out.status.is_ok() {
                    live[i] = Some((q, out.solutions));
                }
            }
            Op::Mutate { comp, remove, a, b } => {
                let i = comp as usize;
                let c = comps[i];
                let edit = {
                    let guard = engine.digraph().expect("engine has a directed view");
                    let last = minimal_steiner::graph::ArcId(guard.num_arcs() as u32 - 1);
                    let (tail, head) = guard.arc(last);
                    if remove && c.contains(tail.0) && c.contains(head.0) {
                        ArcMutation::RemoveArc(last)
                    } else {
                        let tail = c.vertex(a);
                        let mut head = c.vertex(b);
                        if tail == head {
                            head = VertexId(c.base + (head.0 - c.base + 1) % c.len);
                        }
                        ArcMutation::InsertArc { tail, head }
                    }
                };
                let before = engine.epoch();
                let out = engine.apply_arc_mutations(&[edit]).expect("edit is valid");
                prop_assert_eq!(out.epoch, before + 1, "each arc batch advances the epoch");
                for &r in &out.touched_regions {
                    prop_assert!(c.contains(r), "arc mutation escaped its component");
                }
                if let Some((q, sol)) = &live[1 - i] {
                    prop_assert!(
                        out.entries_retained >= 1,
                        "cross-component arc entry should be retained, outcome {:?}",
                        out
                    );
                    let replay = session.run(q.clone(), QueryOptions::default()).unwrap();
                    prop_assert_eq!(replay.stats.cache_hits, 1, "untouched arc entry hits");
                    prop_assert_eq!(&replay.solutions, sol, "retained arc entry byte-identical");
                }
                if let Some((q, _)) = live[i].take() {
                    let rerun = session.run(q.clone(), QueryOptions::default()).unwrap();
                    prop_assert_eq!(rerun.stats.cache_hits, 0, "touched arc entry must miss");
                    check_cold(&rerun, &q)?;
                    if rerun.status.is_ok() {
                        live[i] = Some((q, rerun.solutions));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random mutation/query interleavings across the three undirected
    /// problems: every answer equals a cold run at the current epoch,
    /// untouched-component entries survive every mutation, touched ones
    /// never serve stale bytes.
    #[test]
    fn undirected_interleavings_match_the_cold_oracle(
        na in 3u32..6,
        nb in 3u32..6,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_undirected_interleaving(na, nb, &ops)?;
    }

    /// The same discipline for the rooted directed problem over a
    /// two-weak-component digraph under arc mutations.
    #[test]
    fn directed_interleavings_match_the_cold_oracle(
        na in 3u32..6,
        nb in 3u32..6,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_directed_interleaving(na, nb, &ops)?;
    }
}
