//! Determinism and conformance for the sharded front-end
//! (`Enumeration::with_threads`).
//!
//! The contract under test: for every problem type, every thread count,
//! and every front-end combination (direct, queued, limited, early
//! break, pull iterator), the sharded run delivers a solution stream
//! **identical to the sequential run** — same solutions, same order.
//! The shard workers split the root's children round-robin and the
//! merge re-interleaves them deterministically, so this is an exact
//! (not just set-wise) equality.

use minimal_steiner::graph::{generators, VertexId};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, SteinerError, SteinerForest,
    SteinerTree, TerminalSteinerTree,
};
use rand::{Rng, SeedableRng};
use std::ops::ControlFlow;

/// Collects the full ordered stream of an enumeration.
fn ordered<P>(e: Enumeration<P>) -> Vec<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    e.collect_vec().expect("valid instance")
}

/// Asserts that `with_threads(k)` for k ∈ {1, 2, 4} reproduces the
/// sequential stream exactly, for both the direct and the queued sink
/// chain, and that `with_limit` delivers exactly the sequential prefix.
fn assert_sharded_matches<P, F>(make: F)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + std::fmt::Debug + PartialEq,
    F: Fn() -> P,
{
    let sequential = ordered(Enumeration::new(make()));
    for k in [1usize, 2, 4] {
        let sharded = ordered(Enumeration::new(make()).with_threads(k));
        assert_eq!(sharded, sequential, "threads({k}) direct stream");
        let queued = ordered(
            Enumeration::new(make())
                .with_threads(k)
                .with_default_queue(),
        );
        assert_eq!(queued, sequential, "threads({k}) queued stream");
    }
    // Limits deliver the exact sequential prefix, at every cut point of
    // a small stream and at a few cut points of a large one.
    let total = sequential.len() as u64;
    let cuts: Vec<u64> = if total <= 6 {
        (0..=total + 1).collect()
    } else {
        vec![0, 1, 2, total / 2, total - 1, total, total + 1]
    };
    for k in [2usize, 4] {
        for &limit in &cuts {
            let capped = ordered(Enumeration::new(make()).with_threads(k).with_limit(limit));
            let want = &sequential[..(limit.min(total)) as usize];
            assert_eq!(capped, want, "threads({k}) with_limit({limit})");
        }
    }
}

#[test]
fn steiner_tree_sharded_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5a4d_0001);
    for case in 0..12 {
        let n = 4 + case % 5;
        let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        assert_sharded_matches(|| SteinerTree::new(&g, &w));
    }
    // A solution-dense instance with many root children.
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    assert_sharded_matches(|| SteinerTree::new(&g, &w));
}

#[test]
fn steiner_forest_sharded_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5a4d_0002);
    for case in 0..10 {
        let n = 4 + case % 4;
        let m = (n + rng.gen_range(0..4)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let num_sets = 1 + rng.gen_range(0..3usize);
        let sets: Vec<Vec<VertexId>> = (0..num_sets)
            .map(|_| {
                let k = 2 + rng.gen_range(0..2usize).min(n - 2);
                generators::random_terminals(n, k, &mut rng)
            })
            .collect();
        assert_sharded_matches(|| SteinerForest::new(&g, &sets));
    }
}

#[test]
fn terminal_steiner_tree_sharded_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5a4d_0003);
    for case in 0..10 {
        let n = 5 + case % 4;
        let m = (n + 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
        let g = generators::random_connected_graph(n, m, &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        assert_sharded_matches(|| TerminalSteinerTree::new(&g, &w));
    }
}

#[test]
fn directed_steiner_tree_sharded_streams_are_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5a4d_0004);
    let mut cases = 0;
    while cases < 10 {
        let n = 4 + cases % 4;
        let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
        let (d, root) = generators::random_rooted_dag(n, m, &mut rng);
        let t = 1 + rng.gen_range(0..3usize).min(n - 1);
        let mut w = generators::random_terminals(n, t, &mut rng);
        w.retain(|&v| v != root);
        if w.is_empty() {
            continue;
        }
        cases += 1;
        assert_sharded_matches(|| DirectedSteinerTree::new(&d, root, &w));
    }
}

#[test]
fn sharded_early_break_sees_the_sequential_prefix() {
    let g = generators::theta_chain(6, 3); // 3^6 = 729 solutions
    let w = [VertexId(0), VertexId(6)];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    for k in [2usize, 4] {
        for stop_at in [1usize, 7, 100] {
            let mut got = Vec::new();
            Enumeration::new(SteinerTree::new(&g, &w))
                .with_threads(k)
                .for_each(|tree| {
                    got.push(tree.to_vec());
                    if got.len() == stop_at {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                })
                .expect("valid instance");
            assert_eq!(got.len(), stop_at);
            assert_eq!(
                got,
                sequential[..stop_at],
                "threads({k}) break after {stop_at}"
            );
        }
    }
}

#[test]
fn sharded_iterator_front_end_matches_and_stops_on_drop() {
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    let pulled: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g, &w))
        .with_threads(4)
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(pulled, sequential, "pull front-end, threads(4)");

    // Dropping the iterator early must hang up the whole pool promptly.
    let big = generators::theta_chain(8, 3); // 3^8 solutions
    let mut iter = Enumeration::new(SteinerTree::from_graph(big, &[VertexId(0), VertexId(8)]))
        .with_threads(4)
        .into_iter()
        .expect("valid instance");
    assert_eq!(iter.next().as_deref(), Some(&sequential_first(8)[..]));
    assert!(iter.next().is_some());
    drop(iter); // must not hang
}

/// First solution of the theta_chain(blocks, 3) instance, computed
/// sequentially (used to double-check the sharded iterator's head).
fn sequential_first(blocks: usize) -> Vec<minimal_steiner::graph::EdgeId> {
    let g = generators::theta_chain(blocks, 3);
    let mut first = None;
    Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId::new(blocks)]))
        .for_each(|t| {
            first = Some(t.to_vec());
            ControlFlow::Break(())
        })
        .unwrap();
    first.unwrap()
}

#[test]
fn sharded_stats_reflect_the_delivered_stream() {
    let g = generators::theta_chain(5, 3); // 243 solutions
    let w = [VertexId(0), VertexId(5)];
    let (run, handle) = Enumeration::new(SteinerTree::new(&g, &w))
        .with_threads(4)
        .with_stats();
    let stats = run.run().expect("valid instance");
    assert_eq!(stats.solutions, 243, "solutions = delivered count");
    assert_eq!(handle.get().solutions, 243, "handle agrees");
    // Each worker expands the root once and pays its own preprocessing.
    assert!(stats.nodes >= 243, "workers' node counts are merged");
    assert!(stats.work > 0 && stats.preprocessing_work > 0);
    // The ≥2-children invariant holds on every worker's slice.
    assert_eq!(stats.deficient_internal_nodes, 0);

    // Under a limit the published count matches what the sink saw.
    let (run, handle) = Enumeration::new(SteinerTree::new(&g, &w))
        .with_threads(2)
        .with_limit(10)
        .with_stats();
    let stats = run.run().expect("valid instance");
    assert_eq!(stats.solutions, 10);
    assert_eq!(handle.get().solutions, 10);
}

#[test]
fn sharded_single_solution_and_empty_instances() {
    // Unique completion at the root: only shard 0 owns the root leaf.
    let g = generators::path(30);
    let w = [VertexId(0), VertexId(29)];
    for k in [2usize, 4] {
        let got = ordered(Enumeration::new(SteinerTree::new(&g, &w)).with_threads(k));
        assert_eq!(got.len(), 1, "threads({k}): exactly one solution");
        assert_eq!(got[0].len(), 29);
    }
    // Prepared::Single (one terminal: the empty tree).
    let got = ordered(Enumeration::new(SteinerTree::new(&g, &[VertexId(3)])).with_threads(4));
    assert_eq!(got, vec![Vec::new()]);
    // Prepared::Empty (terminal Steiner tree with a single terminal).
    let got =
        ordered(Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(3)])).with_threads(4));
    assert!(got.is_empty());
}

#[test]
fn sharded_errors_match_sequential_errors() {
    let g = minimal_steiner::graph::UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let w = [VertexId(0), VertexId(2)];
    let sequential = Enumeration::new(SteinerTree::new(&g, &w))
        .run()
        .unwrap_err();
    assert_eq!(sequential, SteinerError::DisconnectedTerminals { set: 0 });
    for k in [2usize, 4] {
        let sharded = Enumeration::new(SteinerTree::new(&g, &w))
            .with_threads(k)
            .run()
            .unwrap_err();
        assert_eq!(sharded, sequential, "threads({k}) reports the same error");
    }
    // Structural errors too (caught in the workers' validate).
    let dup = Enumeration::new(SteinerTree::new(&g, &[VertexId(1), VertexId(1)]))
        .with_threads(2)
        .run()
        .unwrap_err();
    assert_eq!(dup, SteinerError::DuplicateTerminal(VertexId(1)));
}

#[test]
fn sharded_level_cache_cap_is_deterministic_too() {
    // The memory knob changes preallocation, never results — also under
    // sharding, where every worker applies the same cap.
    let g = generators::ladder(12);
    let far = VertexId::new(g.num_vertices() - 1);
    let w = [VertexId(0), far];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    let capped = ordered(Enumeration::new(SteinerTree::new(&g, &w)).with_level_cache_cap(2));
    assert_eq!(capped, sequential, "capped sequential stream");
    let capped_sharded = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_level_cache_cap(2)
            .with_threads(4),
    );
    assert_eq!(capped_sharded, sequential, "capped sharded stream");
}

#[test]
fn sharded_limit_zero_delivers_nothing() {
    let g = generators::theta_chain(4, 3);
    let w = [VertexId(0), VertexId(4)];
    let stats = Enumeration::new(SteinerTree::new(&g, &w))
        .with_threads(4)
        .with_limit(0)
        .for_each(|_| panic!("nothing may be delivered"))
        .expect("valid instance");
    assert_eq!(stats.solutions, 0);
}
