//! Cross-crate integration tests: the equivalences the paper states
//! between its problems, checked end to end.

use minimal_steiner::graph::line_graph::Theorem39Instance;
use minimal_steiner::graph::{generators, DiGraph, EdgeId, UndirectedGraph, VertexId};
use minimal_steiner::induced::reduction::minimal_steiner_trees_via_induced;
use minimal_steiner::induced::supergraph::enumerate_minimal_induced_steiner_subgraphs;
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

fn steiner_trees(g: &UndirectedGraph, w: &[VertexId]) -> BTreeSet<Vec<EdgeId>> {
    let mut out = BTreeSet::new();
    Enumeration::new(SteinerTree::new(g, w))
        .for_each(|e| {
            assert!(out.insert(e.to_vec()), "duplicate");
            ControlFlow::Continue(())
        })
        .expect("valid instance");
    out
}

/// A Steiner forest instance with a single terminal set is exactly a
/// Steiner tree instance (§5: "when |W| = 1, Steiner Forest Enumeration is
/// equivalent to Steiner Tree Enumeration").
#[test]
fn forest_with_one_set_equals_tree_enumeration() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    for _ in 0..25 {
        let n = 4 + rng.gen_range(0..5usize);
        let g = generators::random_connected_graph(n, n + rng.gen_range(0..4), &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        let trees = steiner_trees(&g, &w);
        let mut forests = BTreeSet::new();
        Enumeration::new(SteinerForest::new(&g, std::slice::from_ref(&w)))
            .for_each(|e| {
                assert!(forests.insert(e.to_vec()));
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        assert_eq!(trees, forests, "graph {g:?} terminals {w:?}");
    }
}

/// Steiner tree enumeration with |W| = 2 is s-t path enumeration
/// (§3: "s-t paths ... is indeed a special case").
#[test]
fn two_terminals_equals_path_enumeration() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    for _ in 0..25 {
        let n = 4 + rng.gen_range(0..6usize);
        let g = generators::random_connected_graph(n, n + rng.gen_range(0..5), &mut rng);
        let s = VertexId(0);
        let t = VertexId::new(n - 1);
        let trees = steiner_trees(&g, &[s, t]);
        let mut paths: BTreeSet<Vec<EdgeId>> = BTreeSet::new();
        minimal_steiner::paths::undirected::enumerate_st_paths(&g, s, t, None, &mut |p| {
            let mut edges = p.edges.to_vec();
            edges.sort_unstable();
            assert!(paths.insert(edges));
            ControlFlow::Continue(())
        });
        assert_eq!(trees, paths, "graph {g:?}");
    }
}

/// Theorem 39 round trip on random instances: minimal Steiner trees of
/// (G, W) equal the mapped-back minimal induced Steiner subgraphs of
/// (H, W_H).
#[test]
fn theorem39_round_trip_random() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    for _ in 0..20 {
        let n = 4 + rng.gen_range(0..3usize);
        let g = generators::random_connected_graph(n, n + rng.gen_range(0..3), &mut rng);
        if g.num_edges() > 11 {
            continue;
        }
        let t = 2 + rng.gen_range(0..2usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        let direct = steiner_trees(&g, &w);
        let via = minimal_steiner_trees_via_induced(&g, &w).expect("claw-free construction");
        assert_eq!(direct, via, "graph {g:?} terminals {w:?}");
    }
}

/// Theorem 39 instances are always claw-free, so the §7 enumerator accepts
/// them even when the base graph has large stars.
#[test]
fn theorem39_instance_on_star_base() {
    let g = generators::star(6); // very claw-ful base graph
    let w = [VertexId(1), VertexId(4), VertexId(6)];
    let inst = Theorem39Instance::new(&g, &w);
    let mut count = 0;
    enumerate_minimal_induced_steiner_subgraphs(&inst.h, &inst.h_terminals, &mut |set| {
        let edges = inst.solution_to_edges(set);
        count += 1;
        // The unique minimal Steiner tree of a star: the terminal edges.
        assert_eq!(edges, vec![EdgeId(0), EdgeId(3), EdgeId(5)]);
        ControlFlow::Continue(())
    })
    .expect("claw-free instance");
    assert_eq!(count, 1);
}

/// The directed enumerator on a symmetrized digraph (every undirected edge
/// becomes an arc pair) with root at a terminal's side finds trees whose
/// undirected projections are Steiner trees containing the root.
#[test]
fn directed_on_symmetrized_graph_projects_to_undirected_trees() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(104);
    for _ in 0..15 {
        let n = 4 + rng.gen_range(0..4usize);
        let g = generators::random_connected_graph(n, n + rng.gen_range(0..3), &mut rng);
        let mut d = DiGraph::new(n);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            d.add_arc(u, v).unwrap();
            d.add_arc(v, u).unwrap();
        }
        let root = VertexId(0);
        let t = 1 + rng.gen_range(0..2usize).min(n - 1);
        let mut w = generators::random_terminals(n, t, &mut rng);
        w.retain(|&v| v != root);
        if w.is_empty() {
            continue;
        }
        // Undirected minimal Steiner trees over {root} ∪ W.
        let mut undirected_terms = w.clone();
        undirected_terms.push(root);
        let trees = steiner_trees(&g, &undirected_terms);
        // Directed trees, projected to undirected edge sets.
        let mut projected = BTreeSet::new();
        Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .for_each(|arcs| {
                let mut edges: Vec<EdgeId> =
                    arcs.iter().map(|a| EdgeId::new(a.index() / 2)).collect();
                edges.sort_unstable();
                edges.dedup();
                projected.insert(edges);
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        // Every undirected minimal Steiner tree containing the root arises
        // as exactly one directed tree (orient away from root), and every
        // directed tree projects to such an undirected tree.
        assert_eq!(projected, trees, "graph {g:?} root {root} terminals {w:?}");
    }
}

/// Terminal Steiner trees are Steiner trees; when no terminal is ever
/// internal in any minimal Steiner tree, the two solution sets coincide.
#[test]
fn terminal_trees_are_a_subset_of_steiner_trees() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(105);
    for _ in 0..25 {
        let n = 4 + rng.gen_range(0..5usize);
        let g = generators::random_connected_graph(n, n + rng.gen_range(0..4), &mut rng);
        let t = 2 + rng.gen_range(0..3usize).min(n - 2);
        let w = generators::random_terminals(n, t, &mut rng);
        let trees = steiner_trees(&g, &w);
        let mut terminal_trees = BTreeSet::new();
        Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .for_each(|e| {
                terminal_trees.insert(e.to_vec());
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        for t in &terminal_trees {
            assert!(
                trees.contains(t),
                "terminal Steiner tree {t:?} must be a minimal Steiner tree; graph {g:?} w {w:?}"
            );
        }
    }
}

/// K-fragments agree with the core enumerator run on the extracted
/// terminal set.
#[test]
fn kfragments_match_core_enumeration() {
    use minimal_steiner::kfragment::data_graph::DataGraph;
    use minimal_steiner::kfragment::fragments::k_fragments;
    let mut dg = DataGraph::new();
    let nodes: Vec<VertexId> = (0..8)
        .map(|i| {
            if i % 3 == 0 {
                dg.add_node(&["k"])
            } else {
                dg.add_node(&[])
            }
        })
        .collect();
    for i in 0..nodes.len() {
        dg.add_edge(nodes[i], nodes[(i + 1) % nodes.len()]).unwrap();
    }
    dg.add_edge(nodes[0], nodes[4]).unwrap();
    let terminals = dg.terminals_for(&["k"]).unwrap();
    let direct = steiner_trees(&dg.graph, &terminals);
    let mut via = BTreeSet::new();
    k_fragments(&dg, &["k"], &mut |e| {
        via.insert(e.to_vec());
        ControlFlow::Continue(())
    })
    .unwrap();
    assert_eq!(direct, via);
}
