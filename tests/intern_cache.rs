//! The hash-consed solution interner and the query result cache, end to
//! end: interning never perturbs a delivered stream (sequential or
//! sharded), re-expanding interned streams reproduces the original bytes
//! for all four problems, and a cache hit is indistinguishable from a
//! cold run under every front-end and limit.

use minimal_steiner::graph::{generators, UndirectedGraph, VertexId};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, MinimalSteinerProblem, ResultCache, SolutionId, SolutionSet,
    SteinerForest, SteinerTree, TerminalSteinerTree,
};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Collects the full ordered stream of an enumeration.
fn ordered<P>(e: Enumeration<P>) -> Vec<Vec<P::Item>>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    e.collect_vec().expect("valid instance")
}

/// Interns one enumeration's stream into `set` while collecting the ids
/// in delivery order (re-interning at the sink is a pure dedup hit, so
/// this observes exactly what `with_interning` stored).
fn intern_stream<P>(e: Enumeration<P>, set: &SolutionSet<P::Item>) -> Vec<SolutionId>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    let mut ids = Vec::new();
    e.with_interning(set)
        .for_each(|items| {
            ids.push(set.intern(items));
            ControlFlow::Continue(())
        })
        .expect("valid instance");
    ids
}

/// The core tentpole property, checked for one problem: interning N
/// streams (the same instance enumerated N times, so the arena dedups
/// across them) and re-expanding every stream from its ids yields the
/// exact original byte streams.
fn check_intern_roundtrip<P, F>(make: F, n_streams: usize)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + PartialEq + std::fmt::Debug,
    F: Fn() -> P,
{
    let original = ordered(Enumeration::new(make()));
    let set: SolutionSet<P::Item> = SolutionSet::new();
    let streams: Vec<Vec<SolutionId>> = (0..n_streams)
        .map(|_| intern_stream(Enumeration::new(make()), &set))
        .collect();
    assert_eq!(
        set.len(),
        original.len(),
        "N identical streams share one arena copy per solution"
    );
    for ids in &streams {
        let expanded: Vec<Vec<P::Item>> = ids.iter().map(|&id| set.resolve_owned(id)).collect();
        assert_eq!(expanded, original, "re-expansion reproduces the stream");
    }
}

/// The cache property, checked for one problem and one limit: a warm
/// `cached()` run delivers exactly what a cold run with the same
/// configuration delivers, which is exactly what an uncached run
/// delivers.
fn check_cache_roundtrip<P, F>(make: F, limit: Option<u64>)
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + PartialEq + std::fmt::Debug,
    F: Fn() -> P,
{
    let cache: ResultCache<P::Item> = ResultCache::new();
    let plain = {
        let e = Enumeration::new(make());
        let e = match limit {
            Some(k) => e.with_limit(k),
            None => e,
        };
        ordered(e)
    };
    for round in 0..3 {
        let e = Enumeration::new(make()).cached(&cache);
        let e = match limit {
            Some(k) => e.with_limit(k),
            None => e,
        };
        let (e, handle) = e.with_stats();
        let got = ordered(e);
        assert_eq!(got, plain, "round {round} delivers the uncached stream");
        let stats = handle.get();
        if round == 0 {
            assert_eq!(
                (stats.cache_hits, stats.cache_misses),
                (0, 1),
                "cold run is a miss"
            );
        } else {
            assert_eq!(
                (stats.cache_hits, stats.cache_misses),
                (1, 0),
                "warm run is a hit"
            );
            assert_eq!(stats.work, 0, "a hit runs no search");
        }
        if !plain.is_empty() && !plain.iter().all(|s| s.is_empty()) {
            assert!(stats.interned_bytes > 0, "the store is accounted");
        }
    }
}

/// A connected test graph per case index, shared by the deterministic
/// tests below.
fn test_graph(case: usize) -> UndirectedGraph {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0xca4e + case as u64);
    let n = 5 + case % 4;
    let m = (n + 2 + case % 4).min(n * (n - 1) / 2);
    generators::random_connected_graph(n, m, &mut rng)
}

#[test]
fn interned_sharded_streams_are_byte_identical_to_sequential() {
    // The acceptance bar: `with_interning` composes with `with_threads`
    // (interning happens at the merge point) without perturbing a single
    // byte of the stream, for k ∈ {1, 2, 4}, on all four problems.
    let g = generators::theta_chain(5, 3);
    let w = [VertexId(0), VertexId(5)];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    for k in [1usize, 2, 4] {
        let set = SolutionSet::new();
        let sharded = ordered(
            Enumeration::new(SteinerTree::new(&g, &w))
                .with_interning(&set)
                .with_threads(k),
        );
        assert_eq!(sharded, sequential, "steiner tree, threads({k})");
        assert_eq!(set.len(), sequential.len(), "every solution interned");
    }

    let g2 = test_graph(1);
    let sets = vec![
        vec![VertexId(0), VertexId(2)],
        vec![VertexId(1), VertexId(3)],
    ];
    let seq_forest = ordered(Enumeration::new(SteinerForest::new(&g2, &sets)));
    let w2 = [VertexId(0), VertexId(2), VertexId(4)];
    let seq_terminal = ordered(Enumeration::new(TerminalSteinerTree::new(&g2, &w2)));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0xd1a);
    let (d, root) = generators::random_rooted_dag(7, 14, &mut rng);
    let mut dw = vec![VertexId(5), VertexId(6)];
    dw.retain(|&v| v != root);
    let seq_directed = ordered(Enumeration::new(DirectedSteinerTree::new(&d, root, &dw)));
    for k in [1usize, 2, 4] {
        let set = SolutionSet::new();
        let got = ordered(
            Enumeration::new(SteinerForest::new(&g2, &sets))
                .with_interning(&set)
                .with_threads(k),
        );
        assert_eq!(got, seq_forest, "forest, threads({k})");
        let set = SolutionSet::new();
        let got = ordered(
            Enumeration::new(TerminalSteinerTree::new(&g2, &w2))
                .with_interning(&set)
                .with_threads(k),
        );
        assert_eq!(got, seq_terminal, "terminal, threads({k})");
        let set = SolutionSet::new();
        let got = ordered(
            Enumeration::new(DirectedSteinerTree::new(&d, root, &dw))
                .with_interning(&set)
                .with_threads(k),
        );
        assert_eq!(got, seq_directed, "directed, threads({k})");
    }
}

#[test]
fn cached_composes_with_threads_and_queue() {
    let g = generators::theta_chain(5, 3); // 243 solutions
    let w = [VertexId(0), VertexId(5)];
    let sequential = ordered(Enumeration::new(SteinerTree::new(&g, &w)));
    // Record through a sharded, queued cold run; replay must still be the
    // sequential stream, and later front-end configurations with the same
    // (key, limit) are hits regardless of how the cold run executed.
    let cache = ResultCache::new();
    let cold = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .cached(&cache)
            .with_threads(4)
            .with_default_queue(),
    );
    assert_eq!(cold, sequential);
    assert_eq!(cache.stats().misses, 1);
    let warm_direct = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(warm_direct, sequential);
    let warm_sharded = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .cached(&cache)
            .with_threads(2),
    );
    assert_eq!(warm_sharded, sequential);
    assert_eq!(cache.stats().hits, 2);
    assert_eq!(cache.stats().entries, 1);
}

#[test]
fn cached_iterator_front_end_hits_and_misses() {
    let g = generators::theta_chain(4, 3); // 81 solutions
    let w = [VertexId(0), VertexId(4)];
    let cache = ResultCache::new();
    let cold: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
        .cached(&cache)
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().entries, 1, "the worker stored the stream");
    let warm: Vec<Vec<_>> = Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
        .cached(&cache)
        .into_iter()
        .expect("valid instance")
        .collect();
    assert_eq!(warm, cold);
    assert_eq!(cache.stats().hits, 1);
    // Dropping a replaying iterator early releases its checkout cleanly.
    let mut iter = Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
        .cached(&cache)
        .into_iter()
        .expect("valid instance");
    assert_eq!(iter.next(), Some(cold[0].clone()));
    drop(iter);
    // The push front-end still replays the full stream afterwards.
    let again = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(again, cold);
}

#[test]
fn aborted_runs_are_not_cached_but_limit_runs_are() {
    let g = generators::theta_chain(4, 3);
    let w = [VertexId(0), VertexId(4)];
    let cache = ResultCache::new();
    // A sink that bails after 5 of 81 solutions: an incomplete stream.
    let mut seen = 0u64;
    Enumeration::new(SteinerTree::new(&g, &w))
        .cached(&cache)
        .for_each(|_| {
            seen += 1;
            if seen == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .expect("valid instance");
    assert_eq!(cache.stats().entries, 0, "aborted stream is discarded");
    assert_eq!(cache.bytes(), 0, "and its recording was rolled back");
    // The same truncation via `with_limit` is a complete stream *for that
    // key* and is stored — including when the sink also breaks on the
    // final delivery.
    let limited = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .cached(&cache)
            .with_limit(5),
    );
    assert_eq!(limited.len(), 5);
    assert_eq!(cache.stats().entries, 1);
    let replayed = ordered(
        Enumeration::new(SteinerTree::new(&g, &w))
            .cached(&cache)
            .with_limit(5),
    );
    assert_eq!(replayed, limited);
    assert_eq!(cache.stats().hits, 1);
    // A different limit is a different query: miss, then stored.
    let full = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(full.len(), 81);
    assert_eq!(cache.stats().entries, 2);
}

#[test]
fn cache_distinguishes_problem_kinds_and_queries() {
    let g = test_graph(2);
    let w = [VertexId(0), VertexId(3)];
    let cache = ResultCache::new();
    let trees = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    // Same graph, same terminals, different problem: must not collide.
    let terminal = ordered(Enumeration::new(TerminalSteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(cache.stats().misses, 2, "distinct kinds are distinct keys");
    // Same problem, different terminals: distinct too.
    let other =
        ordered(Enumeration::new(SteinerTree::new(&g, &[VertexId(1), VertexId(2)])).cached(&cache));
    assert_eq!(cache.stats().misses, 3);
    assert_eq!(cache.stats().entries, 3);
    // And all three replay independently.
    assert_eq!(
        ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache)),
        trees
    );
    assert_eq!(
        ordered(Enumeration::new(TerminalSteinerTree::new(&g, &w)).cached(&cache)),
        terminal
    );
    assert_eq!(
        ordered(Enumeration::new(SteinerTree::new(&g, &[VertexId(1), VertexId(2)])).cached(&cache)),
        other
    );
}

#[test]
fn permuted_queries_share_one_cache_entry() {
    // prepare() canonicalizes the query (sorted terminals; reduced pair
    // list for forests), so permuted repeats of the same logical query
    // must hit, not duplicate.
    let g = test_graph(3);
    let cache = ResultCache::new();
    let a =
        ordered(Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(3)])).cached(&cache));
    let b =
        ordered(Enumeration::new(SteinerTree::new(&g, &[VertexId(3), VertexId(0)])).cached(&cache));
    assert_eq!(a, b, "same logical query, same stream");
    assert_eq!(cache.stats().hits, 1, "the permutation is a hit");
    assert_eq!(cache.stats().entries, 1, "no duplicate entry");

    // Forests: regrouping sets with the same reduced pairs also hits.
    let cache = ResultCache::new();
    let grouped = vec![vec![VertexId(0), VertexId(1), VertexId(2)]];
    let split = vec![
        vec![VertexId(0), VertexId(2)],
        vec![VertexId(1), VertexId(0)],
    ];
    let a = ordered(Enumeration::new(SteinerForest::new(&g, &grouped)).cached(&cache));
    let b = ordered(Enumeration::new(SteinerForest::new(&g, &split)).cached(&cache));
    assert_eq!(a, b, "identical pair reductions, identical stream");
    assert_eq!(cache.stats().hits, 1);

    // But a *malformed* variant with the same canonical pairs must still
    // error exactly like a cold run — never be served from the cache.
    let dup = vec![vec![VertexId(0), VertexId(1), VertexId(1), VertexId(2)]];
    let err = Enumeration::new(SteinerForest::new(&g, &dup))
        .cached(&cache)
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        minimal_steiner::SteinerError::DuplicateTerminal(VertexId(1))
    );
}

#[test]
fn graph_mutation_changes_the_fingerprint() {
    let mut g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let w = [VertexId(0), VertexId(2)];
    let cache = ResultCache::new();
    let before = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(before.len(), 2);
    // Adding a chord changes the answer set; the stale entry must not be
    // served for the mutated graph.
    g.add_edge(VertexId(0), VertexId(2)).unwrap();
    let after = ordered(Enumeration::new(SteinerTree::new(&g, &w)).cached(&cache));
    assert_eq!(after.len(), 3, "the new direct edge is a third solution");
    assert_eq!(cache.stats().misses, 2, "mutated graph is a fresh key");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interned_streams_reexpand_exactly(case in 0usize..32, n_streams in 1usize..4) {
        let g = test_graph(case);
        let n = g.num_vertices();
        let w = [VertexId(0), VertexId::new(n - 1)];
        check_intern_roundtrip(|| SteinerTree::new(&g, &w), n_streams);
        check_intern_roundtrip(|| TerminalSteinerTree::new(&g, &w), n_streams);
        let sets = vec![
            vec![VertexId(0), VertexId::new(n - 1)],
            vec![VertexId(1), VertexId(2)],
        ];
        check_intern_roundtrip(|| SteinerForest::new(&g, &sets), n_streams);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(case as u64);
        let (d, root) = generators::random_rooted_dag(6, 12, &mut rng);
        let mut dw = vec![VertexId(4), VertexId(5)];
        dw.retain(|&v| v != root);
        if !dw.is_empty()
            && Enumeration::new(DirectedSteinerTree::new(&d, root, &dw)).run().is_ok()
        {
            check_intern_roundtrip(|| DirectedSteinerTree::new(&d, root, &dw), n_streams);
        }
    }

    #[test]
    fn cache_hit_equals_cold_run_under_limit(case in 0usize..32, k in 0u64..20) {
        let g = test_graph(case);
        let n = g.num_vertices();
        let w = [VertexId(0), VertexId::new(n - 1)];
        check_cache_roundtrip(|| SteinerTree::new(&g, &w), Some(k));
        check_cache_roundtrip(|| SteinerTree::new(&g, &w), None);
        check_cache_roundtrip(|| TerminalSteinerTree::new(&g, &w), Some(k));
        let sets = vec![
            vec![VertexId(0), VertexId::new(n - 1)],
            vec![VertexId(1), VertexId(2)],
        ];
        check_cache_roundtrip(|| SteinerForest::new(&g, &sets), Some(k));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(case as u64);
        let (d, root) = generators::random_rooted_dag(6, 12, &mut rng);
        let mut dw = vec![VertexId(4), VertexId(5)];
        dw.retain(|&v| v != root);
        if !dw.is_empty()
            && Enumeration::new(DirectedSteinerTree::new(&d, root, &dw)).run().is_ok()
        {
            check_cache_roundtrip(|| DirectedSteinerTree::new(&d, root, &dw), Some(k));
        }
    }
}
