//! Error-path tests for the typed [`SteinerError`] reporting of the
//! unified solver API: every variant is produced by the appropriate
//! invalid instance, for every problem type and front-end.

use minimal_steiner::graph::{DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, SteinerError, SteinerForest, SteinerTree, TerminalSteinerTree,
};

fn path3() -> UndirectedGraph {
    UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
}

#[test]
fn empty_instance_is_reported() {
    let g = path3();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
}

#[test]
fn duplicate_terminals_are_reported() {
    let g = path3();
    let dup = [VertexId(0), VertexId(2), VertexId(0)];
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &dup))
            .run()
            .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &dup))
            .run()
            .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(
            &g,
            &[vec![VertexId(0), VertexId(0), VertexId(2)]]
        ))
        .run()
        .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(
            &d,
            VertexId(0),
            &[VertexId(2), VertexId(2)]
        ))
        .run()
        .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(2))
    );
}

#[test]
fn out_of_range_terminals_are_reported() {
    let g = path3();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &[vec![VertexId(0), VertexId(9)]]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(0), VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
}

#[test]
fn out_of_range_root_is_reported() {
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(7), &[VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::RootOutOfRange {
            root: VertexId(7),
            num_vertices: 3
        }
    );
}

#[test]
fn disconnected_terminals_are_reported_with_the_set_index() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 0 }
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 0 }
    );
    // Forests name the offending set: set 0 is fine, set 1 is not.
    let sets = vec![
        vec![VertexId(0), VertexId(1)],
        vec![VertexId(1), VertexId(3)],
    ];
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &sets))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 1 }
    );
}

#[test]
fn unreachable_directed_terminal_is_reported() {
    // 2 -> 1 only: vertex 2 cannot be reached from 0.
    let d = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::UnreachableTerminal(VertexId(2))
    );
}

#[test]
fn iterator_front_end_reports_errors_synchronously() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let err = Enumeration::new(SteinerTree::from_graph(g, &[VertexId(0), VertexId(2)]))
        .into_iter()
        .err()
        .expect("disconnected instance must not spawn a worker");
    assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
}

#[test]
fn errors_display_and_propagate_as_std_error() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let err = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
        .run()
        .unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("connected components"));
}

/// The deprecated shims keep the historical lenient contract for the
/// conditions that used to be silent (and still panic on what used to
/// panic, e.g. out-of-range ids).
#[test]
#[allow(deprecated)]
fn shims_keep_lenient_semantics() {
    use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
    use std::ops::ControlFlow;

    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let mut count = 0u64;
    // Disconnected: silently no solutions.
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(2)], &mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 0);
    // Empty terminal list: silently no solutions.
    enumerate_minimal_steiner_trees(&g, &[], &mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 0);
    // Duplicates: silently deduplicated (one terminal -> one empty tree).
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(0)], &mut |e| {
        assert!(e.is_empty());
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 1);
    // Forest sets with duplicate members: silently deduplicated.
    use minimal_steiner::steiner::forest::enumerate_minimal_steiner_forests;
    let mut forests = 0u64;
    enumerate_minimal_steiner_forests(
        &g,
        &[vec![VertexId(0), VertexId(0), VertexId(1)]],
        &mut |e| {
            assert_eq!(e.len(), 1);
            forests += 1;
            ControlFlow::Continue(())
        },
    );
    assert_eq!(forests, 1);
}

#[test]
#[should_panic(expected = "out of range")]
#[allow(deprecated)]
fn shims_still_panic_on_out_of_range_ids() {
    use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
    use std::ops::ControlFlow;
    let g = path3();
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(9)], &mut |_| {
        ControlFlow::Continue(())
    });
}
