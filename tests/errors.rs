//! Error-path tests for the typed [`SteinerError`] reporting of the
//! unified solver API: every variant is produced by the appropriate
//! invalid instance, for every problem type and front-end.

use minimal_steiner::graph::{DiGraph, UndirectedGraph, VertexId};
use minimal_steiner::{
    DirectedSteinerTree, Enumeration, SteinerError, SteinerForest, SteinerTree, TerminalSteinerTree,
};

fn path3() -> UndirectedGraph {
    UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
}

#[test]
fn empty_instance_is_reported() {
    let g = path3();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
    let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[]))
            .run()
            .unwrap_err(),
        SteinerError::EmptyInstance
    );
}

#[test]
fn duplicate_terminals_are_reported() {
    let g = path3();
    let dup = [VertexId(0), VertexId(2), VertexId(0)];
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &dup))
            .run()
            .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &dup))
            .run()
            .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(
            &g,
            &[vec![VertexId(0), VertexId(0), VertexId(2)]]
        ))
        .run()
        .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(0))
    );
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(
            &d,
            VertexId(0),
            &[VertexId(2), VertexId(2)]
        ))
        .run()
        .unwrap_err(),
        SteinerError::DuplicateTerminal(VertexId(2))
    );
}

#[test]
fn out_of_range_terminals_are_reported() {
    let g = path3();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &[vec![VertexId(0), VertexId(9)]]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(0), VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(9)]))
            .run()
            .unwrap_err(),
        SteinerError::TerminalOutOfRange {
            terminal: VertexId(9),
            num_vertices: 3
        }
    );
}

#[test]
fn out_of_range_root_is_reported() {
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(7), &[VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::RootOutOfRange {
            root: VertexId(7),
            num_vertices: 3
        }
    );
}

#[test]
fn disconnected_terminals_are_reported_with_the_set_index() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    assert_eq!(
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 0 }
    );
    assert_eq!(
        Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 0 }
    );
    // Forests name the offending set: set 0 is fine, set 1 is not.
    let sets = vec![
        vec![VertexId(0), VertexId(1)],
        vec![VertexId(1), VertexId(3)],
    ];
    assert_eq!(
        Enumeration::new(SteinerForest::new(&g, &sets))
            .run()
            .unwrap_err(),
        SteinerError::DisconnectedTerminals { set: 1 }
    );
}

#[test]
fn unreachable_directed_terminal_is_reported() {
    // 2 -> 1 only: vertex 2 cannot be reached from 0.
    let d = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
    assert_eq!(
        Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(2)]))
            .run()
            .unwrap_err(),
        SteinerError::UnreachableTerminal(VertexId(2))
    );
}

#[test]
fn iterator_front_end_reports_errors_synchronously() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let err = Enumeration::new(SteinerTree::from_graph(g, &[VertexId(0), VertexId(2)]))
        .into_iter()
        .err()
        .expect("disconnected instance must not spawn a worker");
    assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
}

#[test]
fn errors_display_and_propagate_as_std_error() {
    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let err = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
        .run()
        .unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("connected components"));
}

/// The deprecated shims keep the historical lenient contract for the
/// conditions that used to be silent (and still panic on what used to
/// panic, e.g. out-of-range ids).
#[test]
#[allow(deprecated)]
fn shims_keep_lenient_semantics() {
    use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
    use std::ops::ControlFlow;

    let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    let mut count = 0u64;
    // Disconnected: silently no solutions.
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(2)], &mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 0);
    // Empty terminal list: silently no solutions.
    enumerate_minimal_steiner_trees(&g, &[], &mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 0);
    // Duplicates: silently deduplicated (one terminal -> one empty tree).
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(0)], &mut |e| {
        assert!(e.is_empty());
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 1);
    // Forest sets with duplicate members: silently deduplicated.
    use minimal_steiner::steiner::forest::enumerate_minimal_steiner_forests;
    let mut forests = 0u64;
    enumerate_minimal_steiner_forests(
        &g,
        &[vec![VertexId(0), VertexId(0), VertexId(1)]],
        &mut |e| {
            assert_eq!(e.len(), 1);
            forests += 1;
            ControlFlow::Continue(())
        },
    );
    assert_eq!(forests, 1);
}

#[test]
#[should_panic(expected = "out of range")]
#[allow(deprecated)]
fn shims_still_panic_on_out_of_range_ids() {
    use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
    use std::ops::ControlFlow;
    let g = path3();
    enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(9)], &mut |_| {
        ControlFlow::Continue(())
    });
}

// ---------------------------------------------------------------------
// Runtime conditions: deadlines and admission control. Unlike the
// instance-validation errors above, these do not mean "no solutions" —
// the instance may be fine; the *run* was bounded.

/// Every front-end must surface an expired deadline as
/// [`SteinerError::DeadlineExceeded`], and anything delivered before the
/// abort must be a valid prefix of the full deterministic stream.
fn check_deadline_surface<P>(make: impl Fn() -> P)
where
    P: minimal_steiner::MinimalSteinerProblem + Send + 'static,
    P::Item: Send + PartialEq + std::fmt::Debug + 'static,
{
    use std::ops::ControlFlow;
    let full = Enumeration::new(make()).collect_vec().unwrap();
    let past = std::time::Instant::now();

    // Push front-end: sequential and sharded, direct and queued.
    for threads in [1, 2] {
        for queued in [false, true] {
            let mut e = Enumeration::new(make())
                .with_deadline(past)
                .with_threads(threads);
            if queued {
                e = e.with_default_queue();
            }
            let mut prefix = Vec::new();
            let err = e
                .for_each(|s| {
                    prefix.push(s.to_vec());
                    ControlFlow::Continue(())
                })
                .unwrap_err();
            assert_eq!(err, SteinerError::DeadlineExceeded);
            assert!(!err.means_no_solutions());
            assert_eq!(
                &prefix[..],
                &full[..prefix.len()],
                "the delivered prefix stays valid"
            );
        }
    }

    // Sink-less runner.
    assert_eq!(
        Enumeration::new(make())
            .with_deadline(past)
            .run()
            .unwrap_err(),
        SteinerError::DeadlineExceeded
    );

    // Pull front-end: the stream ends early and the error is readable
    // after exhaustion.
    let mut it = Enumeration::new(make())
        .with_deadline(past)
        .into_iter()
        .unwrap();
    let prefix: Vec<_> = it.by_ref().collect();
    assert_eq!(it.error(), Some(SteinerError::DeadlineExceeded));
    assert_eq!(&prefix[..], &full[..prefix.len()]);
}

#[test]
fn expired_deadline_is_reported_by_every_problem_and_front_end() {
    let g = path3();
    let w = [VertexId(0), VertexId(2)];
    check_deadline_surface({
        let g = g.clone();
        move || SteinerTree::from_graph(g.clone(), &w)
    });
    check_deadline_surface({
        let g = g.clone();
        move || SteinerForest::from_graph(g.clone(), &[w.to_vec()])
    });
    check_deadline_surface(move || TerminalSteinerTree::from_graph(g.clone(), &w));
    let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
    check_deadline_surface(move || {
        DirectedSteinerTree::from_graph(d.clone(), VertexId(0), &[VertexId(2)])
    });
}

#[test]
fn admission_rejection_is_typed_and_never_means_no_solutions() {
    use minimal_steiner::service::{EngineConfig, EnumerationEngine, Query, QueryOptions};
    let engine = EnumerationEngine::with_config(
        path3(),
        EngineConfig {
            workers: 1,
            max_in_flight: 8,
            tenant_queue_depth: 1,
            cache_capacity_bytes: None,
        },
    );
    engine.pause(); // keep the first submission queued deterministically
    let session = engine.session("tenant");
    let q = Query::SteinerTree {
        terminals: vec![VertexId(0), VertexId(2)],
    };
    let admitted = session.submit(q.clone(), QueryOptions::default()).unwrap();
    let err = session.submit(q, QueryOptions::default()).unwrap_err();
    assert_eq!(
        err,
        SteinerError::AdmissionRejected {
            in_flight: 1,
            capacity: 1
        }
    );
    assert!(!err.means_no_solutions());
    assert!(err.to_string().contains('1'), "display names the capacity");
    engine.resume();
    // The admitted query was unaffected by its sibling's rejection.
    let outcome = admitted.wait();
    assert!(outcome.is_complete());
    assert_eq!(outcome.solutions.len(), 1);
}
