//! **minimal-steiner** — a complete implementation of *Linear-Delay
//! Enumeration for Minimal Steiner Problems* (Kobayashi, Kurita, Wasa —
//! PODS 2022).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — graph substrate (multigraphs, digraphs, bridges,
//!   contraction, LCA, generators, I/O);
//! * [`paths`] — linear-delay *s*-*t* path enumeration (paper §3,
//!   Algorithm 1);
//! * [`steiner`] — minimal Steiner tree / forest / terminal / directed
//!   enumeration with amortized-linear time and linear delay via the
//!   output queue (paper §4–§5);
//! * [`induced`] — minimal induced Steiner subgraphs on claw-free graphs
//!   via the supergraph technique (paper §7);
//! * [`hardness`] — the §6 hardness constructions, executable (minimal
//!   transversals, group Steiner trees, internal Steiner trees);
//! * [`kfragment`] — the keyword-search application layer (K-fragments).
//!
//! # Quickstart
//!
//! ```
//! use minimal_steiner::graph::{UndirectedGraph, VertexId};
//! use minimal_steiner::steiner::improved::enumerate_minimal_steiner_trees;
//! use std::ops::ControlFlow;
//!
//! // A square: two ways to connect opposite corners.
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let terminals = [VertexId(0), VertexId(2)];
//! let mut count = 0;
//! enumerate_minimal_steiner_trees(&g, &terminals, &mut |tree| {
//!     count += 1;
//!     assert_eq!(tree.len(), 2); // each solution is one side of the square
//!     ControlFlow::Continue(())
//! });
//! assert_eq!(count, 2);
//! ```
//!
//! Every enumerator is push-based (a sink receives each solution the
//! moment it is emitted; return `ControlFlow::Break` to stop early), and
//! [`paths::streaming::Enumeration`] converts any of them into a plain
//! `Iterator` running on a worker thread.

pub use steiner_core as steiner;
pub use steiner_graph as graph;
pub use steiner_hardness as hardness;
pub use steiner_induced as induced;
pub use steiner_kfragment as kfragment;
pub use steiner_paths as paths;
