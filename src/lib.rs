//! **minimal-steiner** — a complete implementation of *Linear-Delay
//! Enumeration for Minimal Steiner Problems* (Kobayashi, Kurita, Wasa —
//! PODS 2022).
//!
//! # The unified solver API
//!
//! All four of the paper's enumeration problems are problem types
//! implementing one trait — [`MinimalSteinerProblem`], the Algorithm-3
//! contract (validity check, minimal completion, branching-vertex
//! selection) — and run through one generic engine behind the
//! [`Enumeration`] builder:
//!
//! ```
//! use minimal_steiner::graph::{UndirectedGraph, VertexId};
//! use minimal_steiner::{Enumeration, SteinerTree};
//!
//! // A square: two ways to connect opposite corners.
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let terminals = [VertexId(0), VertexId(2)];
//! let trees = Enumeration::new(SteinerTree::new(&g, &terminals))
//!     .collect_vec()
//!     .unwrap();
//! assert_eq!(trees.len(), 2);
//! assert!(trees.iter().all(|t| t.len() == 2)); // each solution is one side
//! ```
//!
//! The builder offers three interchangeable front-ends:
//!
//! * **push** — [`Enumeration::for_each`] hands each solution (a sorted
//!   edge-id slice) to a sink the moment it is emitted; return
//!   [`ControlFlow::Break`](std::ops::ControlFlow) to stop early;
//! * **pull** — [`Enumeration::into_iter`] runs the enumeration on a
//!   dedicated large-stack worker thread (via [`paths::streaming`]) and
//!   yields owned solutions through a plain [`Iterator`];
//! * **bounded** — [`Enumeration::with_limit`] caps the number of
//!   delivered solutions; [`Enumeration::with_queue`] routes emissions
//!   through the paper's Theorem-20 output queue for a worst-case (rather
//!   than amortized) delay bound;
//! * **sharded** — [`Enumeration::with_threads`] splits the root's
//!   children across a worker pool and merges deterministically, so the
//!   delivered stream is identical to the sequential one (composable
//!   with all of the above); [`Enumeration::with_stealing`] adds
//!   second-level subtree work stealing for skew-rooted instances
//!   without changing a byte of the stream.
//!
//! ```
//! use minimal_steiner::graph::{generators, VertexId};
//! use minimal_steiner::{Enumeration, SteinerTree};
//!
//! // Pull-based: the problem owns its graph so it can move to the worker.
//! let g = generators::theta_chain(3, 3);
//! let problem = SteinerTree::from_graph(g, &[VertexId(0), VertexId(3)]);
//! let first_five: Vec<Vec<_>> = Enumeration::new(problem)
//!     .with_limit(5)
//!     .into_iter()
//!     .unwrap()
//!     .collect();
//! assert_eq!(first_five.len(), 5);
//! ```
//!
//! Invalid instances (no terminals, duplicate or out-of-range terminals,
//! disconnected terminal sets, unreachable directed terminals) are
//! reported as typed [`SteinerError`]s instead of panics:
//!
//! ```
//! use minimal_steiner::graph::{UndirectedGraph, VertexId};
//! use minimal_steiner::{Enumeration, SteinerError, SteinerTree};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
//! let err = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
//!     .run()
//!     .unwrap_err();
//! assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
//! ```
//!
//! # Workspace layout
//!
//! * [`graph`] — graph substrate (multigraphs, digraphs, bridges,
//!   contraction, LCA, generators, I/O);
//! * [`paths`] — linear-delay *s*-*t* path enumeration (paper §3,
//!   Algorithm 1);
//! * [`steiner`] — the problem types, the generic engine, verification
//!   oracles, and the Algorithm 2 baseline (paper §4–§5);
//! * [`induced`] — minimal induced Steiner subgraphs on claw-free graphs
//!   via the supergraph technique (paper §7);
//! * [`hardness`] — the §6 hardness constructions, executable (minimal
//!   transversals, group Steiner trees, internal Steiner trees);
//! * [`kfragment`] — the keyword-search application layer (K-fragments);
//! * [`service`] — a long-lived multi-tenant serving layer over the
//!   engine: admission control, per-query deadlines, weighted
//!   round-robin scheduling, and warm-restart cache persistence
//!   ([`service::EnumerationEngine`]).
//!
//! # Migrating from the 0.1 free functions
//!
//! The twelve pre-0.2 entry points remain available as deprecated shims;
//! see the table below (and the README) for their replacements.
//!
//! | Deprecated free function | Replacement |
//! |---|---|
//! | `steiner::improved::enumerate_minimal_steiner_trees(g, w, sink)` | `Enumeration::new(SteinerTree::new(g, w)).for_each(sink)` |
//! | `steiner::improved::enumerate_minimal_steiner_trees_queued(g, w, cfg, sink)` | `…with_queue(cfg)` / `…with_default_queue()` before `for_each` |
//! | `steiner::improved::enumerate_minimal_steiner_trees_with(g, w, sink)` | `steiner::solver::run_with_sink(&mut problem, sink)` |
//! | `steiner::forest::enumerate_minimal_steiner_forests*(g, sets, …)` | `Enumeration::new(SteinerForest::new(g, sets))…` |
//! | `steiner::terminal::enumerate_minimal_terminal_steiner_trees*(g, w, …)` | `Enumeration::new(TerminalSteinerTree::new(g, w))…` |
//! | `steiner::directed::enumerate_minimal_directed_steiner_trees*(d, r, w, …)` | `Enumeration::new(DirectedSteinerTree::new(d, r, w))…` |
//!
//! The shims keep the historical lenient semantics (empty, disconnected,
//! or unreachable instances silently produce no solutions); the builder
//! returns a [`SteinerError`] for those, so migrated code can distinguish
//! "no solutions" from "invalid instance".

#![deny(unsafe_code)]

pub use steiner_core as steiner;
pub use steiner_graph as graph;
pub use steiner_hardness as hardness;
pub use steiner_induced as induced;
pub use steiner_kfragment as kfragment;
pub use steiner_paths as paths;
pub use steiner_service as service;

pub use steiner_core::{
    CacheKey, CacheStats, DirectedSteinerTree, EnumStats, Enumeration, MinimalSteinerProblem,
    QueueConfig, ResultCache, SolutionId, SolutionInterner, SolutionSet, SolutionSink, Solutions,
    StatsHandle, StealObserver, StealRule, StealSchedule, SteinerError, SteinerForest, SteinerTree,
    TerminalSteinerTree,
};
