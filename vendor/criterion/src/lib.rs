//! Offline stand-in for `criterion`, implementing the subset this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This runner performs a short warm-up, then reports the
//! median and spread of per-iteration wall-clock times to stdout — enough
//! to compare algorithm variants, without criterion's statistics engine.
//! `cargo test` compiles these benches but (as with real criterion with
//! `harness = false`) their measurement loop only runs under `cargo bench`.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// computation whose result flows into it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark manager handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Registers and measures a standalone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_one("", &id.to_string(), sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` with `input` under the given id.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Measures `f` under the given id.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group (formatting separator only in this stub).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: aim for ~10ms per sample, at least 1 iter.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.per_sample_iters = iters;
        let sample_count = self.samples.capacity().max(1);
        for _ in 0..sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters: 1,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label:<56} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{label:<56} median {median:>12?}   [{lo:?} .. {hi:?}]   ({} samples x {} iters)",
        b.samples.len(),
        b.per_sample_iters
    );
}

/// Declares a benchmark group: `criterion_group!(benches, f, g);` defines
/// a function `benches()` running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Mirror real criterion: under `cargo test` (which passes
            // --test to harness=false targets), compile-check only.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let input = 1000u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
