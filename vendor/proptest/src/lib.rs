//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, integer
//! range and tuple strategies, [`arbitrary::any`], [`collection::vec`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. Differences from real proptest: **no shrinking** (failures
//! report the original inputs) and no persisted failure seeds — each test
//! derives a deterministic seed from its own name, so failures reproduce
//! across runs.

pub mod test_runner {
    //! Case execution plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How a single generated case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip the case, it does not count.
        Reject(String),
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (filtered case).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// A genuine failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
        /// Give up after this many consecutive rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Per-test driver: owns the RNG that strategies draw from.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Seeds the runner deterministically from the test name.
        pub fn new(test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The RNG strategies sample from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates from a strategy derived from the generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.base.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, runner: &mut TestRunner) -> T::Value {
            let inner = (self.f)(self.base.generate(runner));
            inner.generate(runner)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::RangeInclusive<usize> {
        type Value = usize;

        fn generate(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! `any::<T>()` — full-range strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.rng().gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T` (full range for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                runner.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut runner);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed: {msg}\n    inputs: {inputs}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn flat_map_threads_values(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..4).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < n), "element out of range");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn any_produces_varied_values() {
        let mut runner = crate::test_runner::TestRunner::new("varied");
        let strat = any::<u16>();
        let a = Strategy::generate(&strat, &mut runner);
        let mut saw_different = false;
        for _ in 0..100 {
            if Strategy::generate(&strat, &mut runner) != a {
                saw_different = true;
            }
        }
        assert!(saw_different);
    }
}
