//! Offline stand-in for `crossbeam-channel`, implementing the bounded
//! MPSC subset this workspace uses on top of [`std::sync::mpsc`].
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. Semantics relevant to the streaming adapters are preserved:
//! [`bounded`] blocks the sender once `cap` items are queued, [`Sender::send`]
//! errors after every receiver is dropped, and [`Receiver::recv`] errors
//! after every sender is dropped and the queue is drained.

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, SendError};

/// Sending half of a bounded channel.
pub struct Sender<T> {
    inner: mpsc::SyncSender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

// The real crate's opaque `Debug` (channels appear in message enums that
// themselves derive `Debug`).
impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is queued; errors when the channel is
    /// disconnected (all receivers dropped).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg)
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; errors when the channel is
    /// disconnected (all senders dropped) and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        self.inner.try_recv()
    }

    /// Draining iterator (blocks between items, ends on disconnect).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Borrowing iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Creates a bounded channel of capacity `cap` (`0` = rendezvous).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_fails_after_sender_drop() {
        let (tx, rx) = bounded::<i32>(1);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_capacity_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
