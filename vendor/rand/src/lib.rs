//! Offline stand-in for the `rand` crate, implementing exactly the 0.8 API
//! subset this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched; this vendored shim keeps the workspace
//! self-contained. The generator is SplitMix64 — deterministic per seed,
//! statistically fine for test-case generation, **not** cryptographic.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`; panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; the tiny modulo
                // bias is irrelevant for test-instance generation.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        if high == usize::MAX {
            let r = rng.next_u64() as u128;
            return low + ((r * ((high - low) as u128 + 1)) >> 64) as usize;
        }
        usize::sample_half_open(low, high + 1, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`0..n` or `0..=n`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        // 53 random mantissa bits -> uniform f64 in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the seed-expansion generator of Vigna's xoshiro
    /// family. Deterministic, fast, and adequate for test-case generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{RngCore, SampleRange};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..i + 1, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
