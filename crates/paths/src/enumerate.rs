//! Algorithm 1: linear-delay directed *s*-*t* path enumeration.
//!
//! Structure of the implementation, mirroring the paper (§3):
//!
//! * `f_stp` — the subroutine `F-STP(D′, s′, t, e, f)`: one reverse BFS
//!   from `t` (avoiding the masked vertices, the banned arc `e`, and `s′`
//!   itself), then the smallest out-arc of `s′` beyond position `f` whose
//!   head reaches `t`. Deterministic, O(n + m).
//! * `extendible_indices` — Lemma 11: given the freshly found continuation
//!   `Q = (v₁ … v_k)`, decide for every `i ∈ [2, k−1]` whether the prefix
//!   `Q_i` is *extendible with P* (i.e. `D[V ∖ (V(P∘Q_i) ∖ {v_i})] −
//!   (v_i, v_{i+1})` still has a `v_i`-`t` path). The sweep walks `i`
//!   downward while the admissible graph only grows, maintaining the
//!   reach-`t` flags `r(·)` monotonically — O(n + m) for the whole sweep.
//! * `e_stp` — the recursion `E-STP(P, e, d, t)` with the alternating
//!   output rule (pre-order at even depth, post-order at odd depth).
//!
//! The current path `P` lives in global state (`cur_vertices`/`cur_arcs`)
//! and is masked except for its tip, exactly as in the paper's space
//! analysis; each recursion frame's continuation `Q` lives in a LIFO
//! arena inside [`PathScratch`], so a warm scratch never touches the
//! allocator — the property the Steiner enumerators' zero-allocation hot
//! path builds on. The engine is generic over [`PathView`], so it runs
//! unchanged over a [`DiGraph`], a flat [`CsrDigraph`], or a CSR digraph
//! extended with a *virtual super-source* ([`VirtualSourceView`]) whose
//! out-arcs are a caller-supplied boundary list — the trick that lets the
//! Steiner `branch()` implementations reuse one doubled CSR built in
//! `prepare()` instead of materializing a fresh super-source digraph per
//! node.

use crate::visit::PathEvent;
use std::ops::ControlFlow;
use steiner_graph::csr::{
    bit_assign, bit_clear, bit_set, bit_take, bit_test, bit_words, bits_not, bits_not_or, mix64,
    push_tracked,
};
use steiner_graph::{ArcId, CsrDigraph, DiGraph, VertexId};

/// Counters reported by a finished (or stopped) enumeration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PathEnumStats {
    /// Number of paths handed to the sink.
    pub emitted: u64,
    /// Algorithmic work units (≈ arcs/vertices touched); the empirical
    /// stand-in for the paper's O(n + m)-per-solution accounting.
    pub work: u64,
    /// Packed mode only: `F-STP` activations whose level cache already
    /// held the reverse BFS for the current `(mask signature, banned
    /// arc, s′)` key — sibling reuse within an activation plus genuine
    /// cross-activation and cross-run reuse.
    pub fstp_cache_hits: u64,
    /// Packed mode only: `F-STP` activations that had to (re)run the
    /// reverse BFS.
    pub fstp_cache_misses: u64,
}

/// Tuning knobs for [`enumerate_directed_st_paths_with`]: the Lemma 11
/// ablation switch and the word-packed engine switch.
#[derive(Copy, Clone, Debug)]
pub struct EnumerateOptions {
    /// Use the Lemma 11 *incremental* reachability sweep (O(n + m) for all
    /// prefixes of a continuation together). When `false`, extendibility
    /// is recomputed from scratch per prefix — O(k(n + m)) per
    /// continuation of length k — which is the design choice the paper's
    /// §3 revision of Read–Tarjan eliminates. Exposed for the ablation
    /// bench (`cargo bench -p steiner-bench --bench ablation`).
    pub incremental_extendibility: bool,
    /// Run the word-packed `E-STP`/`F-STP` engine (the default): `u64`
    /// bitset BFS frontiers, a Zobrist-signature-keyed cross-branch
    /// reverse-BFS cache, and flat per-activation child-run emission.
    /// When `false`, the original per-vertex stamp engine runs instead —
    /// the A/B reference. Both produce byte-identical streams; only the
    /// `work`/cache counters differ (cache hits skip counted BFS work).
    pub packed_frontiers: bool,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            incremental_extendibility: true,
            packed_frontiers: true,
        }
    }
}

/// Per-vertex Zobrist hash for the removal-mask signature. Seeded so that
/// vertex 0 gets a nonzero hash (the raw splitmix64 finalizer maps 0 to
/// 0, which would make vertex 0 invisible to the signature).
#[inline]
fn vsig(v: usize) -> u64 {
    mix64(v as u64 ^ 0x9e37_79b9_7f4a_7c15)
}

/// The adjacency interface the Algorithm-1 engine runs on. Implemented by
/// [`DiGraph`], [`CsrDigraph`], and [`VirtualSourceView`].
pub trait PathView {
    /// Number of vertices (including any virtual source).
    fn num_vertices(&self) -> usize;
    /// Arcs leaving `v` as a packed `(head, arc)` slice. The slice order
    /// is the total order `≺_v` of the paper's `F-STP`.
    fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)];
    /// Arcs entering `v` as a packed `(tail, arc)` slice.
    fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)];
    /// `(tail, head)` of arc `a`.
    fn arc(&self, a: ArcId) -> (VertexId, VertexId);
    /// Head of arc `a`.
    #[inline]
    fn head(&self, a: ArcId) -> VertexId {
        self.arc(a).1
    }
    /// Tail of arc `a`.
    #[inline]
    fn tail(&self, a: ArcId) -> VertexId {
        self.arc(a).0
    }
}

impl PathView for DiGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        DiGraph::num_vertices(self)
    }
    #[inline]
    fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        DiGraph::out_adjacency(self, v)
    }
    #[inline]
    fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        DiGraph::in_adjacency(self, v)
    }
    #[inline]
    fn arc(&self, a: ArcId) -> (VertexId, VertexId) {
        DiGraph::arc(self, a)
    }
}

impl PathView for CsrDigraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrDigraph::num_vertices(self)
    }
    #[inline]
    fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        CsrDigraph::out_adjacency(self, v)
    }
    #[inline]
    fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        CsrDigraph::in_adjacency(self, v)
    }
    #[inline]
    fn arc(&self, a: ArcId) -> (VertexId, VertexId) {
        CsrDigraph::arc(self, a)
    }
}

/// A CSR digraph extended with one virtual vertex (`source`, id `n`) whose
/// out-adjacency is the caller-supplied `boundary` slice of **real** arcs.
/// All arc ids are base-graph arc ids, so no translation tables are
/// needed; the virtual source has no in-arcs.
pub struct VirtualSourceView<'a> {
    /// The host CSR digraph.
    pub base: &'a CsrDigraph,
    /// Out-arcs of the virtual source: `(head, arc)` with the arc's real
    /// tail inside the caller's source set.
    pub boundary: &'a [(VertexId, ArcId)],
    /// The virtual source id (`base.num_vertices()`).
    pub source: VertexId,
}

impl PathView for VirtualSourceView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices() + 1
    }
    #[inline]
    fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        if v == self.source {
            self.boundary
        } else {
            self.base.out_adjacency(v)
        }
    }
    #[inline]
    fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        if v == self.source {
            &[]
        } else {
            self.base.in_adjacency(v)
        }
    }
    #[inline]
    fn arc(&self, a: ArcId) -> (VertexId, VertexId) {
        self.base.arc(a)
    }
}

/// Reusable state for one (possibly nested) enumeration: masks, the
/// epoch-stamped reach-`t` flags, the current path, and the LIFO arena
/// holding each recursion frame's continuation `Q`. Size it once with
/// [`PathScratch::preallocate`]; afterwards enumerations record any buffer
/// growth in [`PathScratch::alloc_events`] (a warm scratch reports zero).
///
/// One scratch serves one enumeration at a time; nested enumerations (a
/// sink that starts another enumeration, as the Steiner `branch()`
/// recursion does) need one scratch per nesting level.
#[derive(Clone, Debug, Default)]
pub struct PathScratch {
    removed: Vec<bool>,
    /// Packed mode: `u64`-word mirror of `removed`, rebuilt at run start
    /// and maintained by every engine mask write thereafter.
    removed_bits: Vec<u64>,
    /// Packed mode: Zobrist XOR-fold of [`vsig`] over the removed
    /// vertices — the incrementally maintained removal-mask signature
    /// that keys the cross-branch `F-STP` cache. XOR-folding makes it
    /// history-independent: a balanced mask/unmask pair restores it.
    sig: u64,
    /// Packed mode: per-vertex Zobrist hash table (`vsigs[v] = vsig(v)`),
    /// so the per-toggle signature update is a load+xor instead of a
    /// mix64 evaluation.
    vsigs: Vec<u64>,
    /// Packed mode: the transient candidate frontier `¬removed ∧
    /// ¬reached` shared by every BFS and extendibility sweep. Fusing the
    /// two exclusion tests into one bitset makes the per-arc probe a
    /// single [`bit_take`]; the buffer is dead between uses, so one
    /// instance serves every recursion level.
    cand: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: Vec<VertexId>,
    /// Per-recursion-level reverse-BFS caches: the `F-STP` BFS depends
    /// only on the masks and the banned arc — both fixed across one
    /// node's siblings — so each `E-STP` level computes it once and
    /// reuses it for every sibling continuation. Level-local arrays keep
    /// deeper recursion from clobbering the cache.
    levels: Vec<LevelScratch>,
    cur_vertices: Vec<VertexId>,
    cur_arcs: Vec<ArcId>,
    out_vertices: Vec<VertexId>,
    out_arcs: Vec<ArcId>,
    /// Continuation arena: frame `Q`s live at `[v_start..v_start + len]`.
    qv: Vec<VertexId>,
    qa: Vec<ArcId>,
    /// Extendible-index arena (same LIFO discipline).
    ext: Vec<u32>,
    /// Packed mode: per-activation sibling-run frames (LIFO per batch).
    frames: Vec<QFrame>,
    allocs: u64,
}

/// One recursion level's cached `F-STP` reverse BFS. The reference
/// engine uses the epoch-stamped `stamp` plus the per-activation `valid`
/// flag; the packed engine uses the `admissible` bitset plus the
/// `(key_sig, key_s1, key_t)` signature key — the banned arc is *not*
/// part of the key because its tail is always `s′` (it is the arc the
/// activation arrived on), which the BFS masks regardless, so the BFS
/// tree is independent of it. `next_arc` (the reverse-BFS tree) is
/// shared, so whichever engine recomputes the BFS invalidates the
/// other's cache view.
#[derive(Clone, Debug, Default)]
struct LevelScratch {
    stamp: Vec<u32>,
    next_arc: Vec<ArcId>,
    epoch: u32,
    valid: bool,
    /// Packed: `reached ∧ ¬removed` at BFS time — the legal heads for
    /// the smallest-admissible-first-arc scan (derived from the
    /// candidate frontier left over by the BFS, so no separate reached
    /// bitset is stored).
    admissible: Vec<u64>,
    /// Packed cache key: removal-mask signature at BFS time.
    key_sig: u64,
    /// Packed cache key: `s′` (masked during the BFS, hence part of the
    /// key rather than the signature).
    key_s1: u32,
    /// Packed cache key: the BFS target `t` — constant within one run,
    /// but the cache deliberately survives across runs sharing the
    /// scratch, and a later run may aim at a different target over the
    /// same mask.
    key_t: u32,
    /// Whether the packed cache (and its key) is populated.
    packed_valid: bool,
}

/// Default cap on the number of per-level reverse-BFS caches that
/// [`PathScratch::preallocate`] sizes up front. Deeper recursion levels
/// are grown on demand at every access site (each growth is counted in
/// [`PathScratch::alloc_events`]), so the cap bounds warm-up memory —
/// not the reachable recursion depth. Override it per enumeration with
/// [`PathScratch::preallocate_capped`].
pub const DEFAULT_LEVEL_CACHE_CAP: usize = 512;

impl PathScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        PathScratch::default()
    }

    /// Sizes every buffer for a graph with `n` vertices (including any
    /// virtual source) and `m` arcs, so subsequent enumerations do not
    /// allocate on instances whose recursion stays within
    /// [`DEFAULT_LEVEL_CACHE_CAP`] levels. The per-level BFS caches are
    /// **not** sized for the worst case of the recursion (which is one
    /// level per frame — O(n) levels of O(n) words each, the same O(n²)
    /// order as the paper's output-queue space bound): preallocation
    /// stops at the cap and deeper levels are grown on demand, counted
    /// in [`Self::alloc_events`].
    pub fn preallocate(&mut self, n: usize, m: usize) {
        self.preallocate_capped(n, m, DEFAULT_LEVEL_CACHE_CAP);
    }

    /// As [`Self::preallocate`] with an explicit cap on the number of
    /// preallocated per-level BFS caches — the memory knob for
    /// embeddings that run many enumerators side by side (each level
    /// owns two `n`-word arrays, so the warm-up footprint is
    /// `2n · min(n + 2, cap)` words). A small cap never changes results
    /// or reachable depth; deep runs just grow the cache on demand.
    pub fn preallocate_capped(&mut self, n: usize, m: usize, level_cache_cap: usize) {
        self.removed
            .reserve(n.saturating_sub(self.removed.capacity()));
        let nw = bit_words(n);
        self.removed_bits
            .reserve(nw.saturating_sub(self.removed_bits.capacity()));
        self.cand.reserve(nw.saturating_sub(self.cand.capacity()));
        self.vsigs.reserve(n.saturating_sub(self.vsigs.capacity()));
        self.stamp.reserve(n.saturating_sub(self.stamp.capacity()));
        self.queue.reserve(n.saturating_sub(self.queue.capacity()));
        let depth_cap = (n + 2).min(level_cache_cap.max(1));
        if self.levels.capacity() < depth_cap {
            self.levels.reserve(depth_cap - self.levels.capacity());
        }
        while self.levels.len() < depth_cap {
            self.levels.push(LevelScratch::default());
        }
        for lvl in &mut self.levels {
            if lvl.stamp.capacity() < n {
                lvl.stamp.reserve(n - lvl.stamp.capacity());
            }
            if lvl.next_arc.capacity() < n {
                lvl.next_arc.reserve(n - lvl.next_arc.capacity());
            }
            if lvl.admissible.capacity() < nw {
                lvl.admissible.reserve(nw - lvl.admissible.capacity());
            }
        }
        let cap1 = n + 2;
        self.cur_vertices
            .reserve(cap1.saturating_sub(self.cur_vertices.capacity()));
        self.cur_arcs
            .reserve(cap1.saturating_sub(self.cur_arcs.capacity()));
        self.out_vertices
            .reserve(cap1.saturating_sub(self.out_vertices.capacity()));
        self.out_arcs
            .reserve(cap1.saturating_sub(self.out_arcs.capacity()));
        // The reference engine holds one continuation per recursion level
        // (O(n²) arena entries at worst); packed mode materializes each
        // activation's whole sibling run up front, adding a degree-
        // weighted term bounded by the arcs incident to the (distinct)
        // path tips — hence the extra m-proportional slack on `qv`/`qa`.
        let arena = ((n + 2) * (n + 2)).min(1 << 18);
        let q_arena = ((n + 2) * (n + 2) + 32 * (m + 2)).min(1 << 18);
        self.qv.reserve(q_arena.saturating_sub(self.qv.capacity()));
        self.qa.reserve(q_arena.saturating_sub(self.qa.capacity()));
        self.ext.reserve(arena.saturating_sub(self.ext.capacity()));
        // One frame per admissible sibling; the tips along one recursion
        // chain are distinct vertices, so the chain total is ≤ m + n.
        let f_arena = (n + m + 8).min(1 << 16);
        self.frames
            .reserve(f_arena.saturating_sub(self.frames.capacity()));
    }

    /// Resets the removal mask to `n` unmasked vertices and returns it for
    /// the caller to mark sources / disallowed vertices before the run.
    ///
    /// Makes no assumption about the graph of the upcoming run, so the
    /// packed engine's cross-run reverse-BFS caches are dropped — a
    /// cached BFS tree from a *different* graph that happens to match
    /// the signature key would reconstruct garbage. Callers that pin one
    /// graph per scratch should use [`Self::begin_same_graph`].
    pub fn begin(&mut self, n: usize) -> &mut [bool] {
        for lvl in &mut self.levels {
            lvl.packed_valid = false;
        }
        self.begin_same_graph(n)
    }

    /// As [`Self::begin`], additionally promising that the arc structure
    /// (adjacency and arc ids) is unchanged since the previous run on
    /// this scratch. Under that promise the packed engine's
    /// signature-keyed reverse-BFS caches survive across runs — the
    /// cross-branch reuse the Steiner enumerators lean on: two branch
    /// nodes with the same vertex set and target (common when distinct
    /// partial trees span the same vertices) replay each other's BFS
    /// trees instead of recomputing them.
    pub fn begin_same_graph(&mut self, n: usize) -> &mut [bool] {
        steiner_graph::csr::grow(&mut self.removed, n, false, &mut self.allocs);
        &mut self.removed
    }

    /// The removal mask prepared by [`Self::begin`] (which must have been
    /// called with the same `n` since the last run).
    pub fn removed_mask(&mut self, n: usize) -> &mut [bool] {
        assert_eq!(self.removed.len(), n, "call begin(n) before the run");
        &mut self.removed
    }

    /// Buffer-growth events since construction (zero on a warm scratch).
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity (scratch-space accounting).
    pub fn capacity_bytes(&self) -> u64 {
        let levels: usize = self
            .levels
            .iter()
            .map(|l| {
                l.stamp.capacity() * std::mem::size_of::<u32>()
                    + l.next_arc.capacity() * std::mem::size_of::<ArcId>()
                    + l.admissible.capacity() * std::mem::size_of::<u64>()
            })
            .sum();
        (levels
            + self.removed.capacity() * std::mem::size_of::<bool>()
            + (self.removed_bits.capacity() + self.cand.capacity() + self.vsigs.capacity())
                * std::mem::size_of::<u64>()
            + self.frames.capacity() * std::mem::size_of::<QFrame>()
            + (self.stamp.capacity() + self.ext.capacity()) * std::mem::size_of::<u32>()
            + (self.cur_arcs.capacity() + self.out_arcs.capacity() + self.qa.capacity())
                * std::mem::size_of::<ArcId>()
            + (self.queue.capacity()
                + self.cur_vertices.capacity()
                + self.out_vertices.capacity()
                + self.qv.capacity())
                * std::mem::size_of::<VertexId>()) as u64
    }

    /// Grows the per-level cache vector through `depth` (recording the
    /// growth in [`Self::alloc_events`]) and hands the level back.
    ///
    /// Preallocation stops at the level-cache cap, so deep recursion can
    /// reach levels that do not exist yet. This is the **single**
    /// grow-at-access-site: every reader of `levels[depth]` goes through
    /// here, so no access site can reintroduce the pre-PR-3
    /// out-of-bounds hazard by indexing an ungrown level.
    #[inline]
    fn level_mut(&mut self, depth: usize) -> &mut LevelScratch {
        if self.levels.len() <= depth {
            if self.levels.capacity() <= depth {
                self.allocs += 1;
            }
            self.levels.resize_with(depth + 1, LevelScratch::default);
        }
        &mut self.levels[depth]
    }

    #[inline]
    fn push_qv(&mut self, v: VertexId) {
        if self.qv.len() == self.qv.capacity() {
            self.allocs += 1;
        }
        self.qv.push(v);
    }

    #[inline]
    fn push_qa(&mut self, a: ArcId) {
        if self.qa.len() == self.qa.capacity() {
            self.allocs += 1;
        }
        self.qa.push(a);
    }

    #[inline]
    fn push_ext(&mut self, i: u32) {
        if self.ext.len() == self.ext.capacity() {
            self.allocs += 1;
        }
        self.ext.push(i);
    }
}

/// A continuation `Q = (v₁ … v_k)` living in the scratch arena.
#[derive(Copy, Clone, Debug)]
struct QFrame {
    /// Start of the `k` vertices in `scratch.qv`.
    v_start: usize,
    /// Start of the `k − 1` arcs in `scratch.qa`.
    a_start: usize,
    /// `k`.
    len: usize,
    /// Position of `arcs[0]` within `out_adjacency(v₁)` — the order `≺_{s′}`.
    first_pos: usize,
}

struct Engine<'v, 'x, V: PathView> {
    d: &'v V,
    t: VertexId,
    s: &'x mut PathScratch,
    options: EnumerateOptions,
    /// Virtual-source mode: emitted paths name the real tail of their
    /// first arc instead of the virtual source.
    replace_root: bool,
    stats: PathEnumStats,
    sink: &'x mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
}

impl<V: PathView> Engine<'_, '_, V> {
    /// `F-STP`: the `s′`-`t` path minimizing its first arc in `≺_{s′}`,
    /// restricted to arcs strictly beyond `f_pos`, avoiding `e`, the masked
    /// vertices, and `s′` itself after the first step.
    ///
    /// The reverse BFS from `t` depends only on the masks and `e` — both
    /// fixed across one node's siblings — so it is computed **once per
    /// `E-STP` activation** into the level-`depth` cache and reused for
    /// every sibling (the former per-sibling BFS dominated the engine's
    /// constant factor on large graphs).
    fn f_stp(
        &mut self,
        s1: VertexId,
        e: Option<ArcId>,
        f_pos: Option<usize>,
        depth: usize,
    ) -> Option<QFrame> {
        debug_assert!(!self.s.removed[s1.index()]);
        let d = self.d;
        let t = self.t;
        self.s.level_mut(depth);
        let s = &mut *self.s;
        let n = s.removed.len();
        let lvl = &mut s.levels[depth];
        if lvl.stamp.len() != n {
            steiner_graph::csr::grow(&mut lvl.stamp, n, 0u32, &mut s.allocs);
            steiner_graph::csr::grow(&mut lvl.next_arc, n, ArcId(u32::MAX), &mut s.allocs);
            lvl.epoch = 0;
            lvl.valid = false;
            lvl.packed_valid = false;
        }
        if !lvl.valid {
            lvl.epoch += 1;
            let ep = lvl.epoch;
            // Reverse BFS from t with s′ masked: r(v) ⇔ v reaches t
            // avoiding P.
            s.removed[s1.index()] = true;
            lvl.stamp[t.index()] = ep;
            s.queue.clear();
            s.queue.push(t);
            let mut head = 0;
            while head < s.queue.len() {
                let u = s.queue[head];
                head += 1;
                for &(z, a) in d.in_adjacency(u) {
                    self.stats.work += 1;
                    if Some(a) == e || s.removed[z.index()] || lvl.stamp[z.index()] == ep {
                        continue;
                    }
                    lvl.stamp[z.index()] = ep;
                    lvl.next_arc[z.index()] = a;
                    s.queue.push(z);
                }
            }
            s.removed[s1.index()] = false;
            lvl.valid = true;
            // The BFS tree (`next_arc`) was rewritten: the packed cache,
            // which shares it, no longer matches its recorded key.
            lvl.packed_valid = false;
        }
        let ep = s.levels[depth].epoch;
        // Smallest admissible first arc.
        let start = f_pos.map_or(0, |p| p + 1);
        let out = d.out_adjacency(s1);
        for (pos, &(y, a)) in out.iter().enumerate().skip(start) {
            self.stats.work += 1;
            if Some(a) == e
                || self.s.removed[y.index()]
                || self.s.levels[depth].stamp[y.index()] != ep
            {
                continue;
            }
            // Reconstruct s′ → y → … → t along the reverse-BFS tree.
            let v_start = self.s.qv.len();
            let a_start = self.s.qa.len();
            self.s.push_qv(s1);
            self.s.push_qv(y);
            self.s.push_qa(a);
            let mut len = 2;
            let mut cur = y;
            while cur != t {
                let na = self.s.levels[depth].next_arc[cur.index()];
                self.s.push_qa(na);
                cur = d.head(na);
                self.s.push_qv(cur);
                len += 1;
            }
            return Some(QFrame {
                v_start,
                a_start,
                len,
                first_pos: pos,
            });
        }
        None
    }

    #[inline]
    fn qv(&self, q: QFrame, j: usize) -> VertexId {
        self.s.qv[q.v_start + j]
    }

    #[inline]
    fn qa(&self, q: QFrame, j: usize) -> ArcId {
        self.s.qa[q.a_start + j]
    }

    /// Writes `removed[v] = on`, keeping the packed mirror bitset and the
    /// Zobrist mask signature in sync in packed mode (the reference
    /// engine never reads either). Every engine mask write is a strict
    /// toggle — prefixes mask distinct, currently unmasked vertices and
    /// the sweeps restore them exactly once — so the XOR fold stays a
    /// faithful set hash.
    #[inline]
    fn mask_removed(&mut self, v: VertexId, on: bool) {
        let s = &mut *self.s;
        debug_assert_ne!(s.removed[v.index()], on, "mask writes are toggles");
        s.removed[v.index()] = on;
        if self.options.packed_frontiers {
            bit_assign(&mut s.removed_bits, v.index(), on);
            s.sig ^= s.vsigs[v.index()];
        }
    }

    /// Lemma 11 sweep: pushes onto the `ext` arena the descending list of
    /// indices `i ∈ [2, k−1]` whose prefix `Q_i` is extendible with `P`.
    fn extendible_indices(&mut self, q: QFrame) {
        let k = q.len;
        if k < 3 {
            return;
        }
        // Mask v₁ … v_{k−2} (0-indexed 0..=k−3); v_{k−1} is the first tip.
        for j in 0..=k - 3 {
            let v = self.qv(q, j);
            self.mask_removed(v, true);
        }
        self.s.epoch += 1;
        let ep = self.s.epoch;
        // Initial reverse BFS from t in D_{k−1}, skipping b_{k−1}.
        let mut banned = self.qa(q, k - 2);
        self.s.stamp[self.t.index()] = ep;
        self.s.queue.clear();
        self.s.queue.push(self.t);
        let mut head = 0;
        while head < self.s.queue.len() {
            let u = self.s.queue[head];
            head += 1;
            for &(z, a) in self.d.in_adjacency(u) {
                self.stats.work += 1;
                if a == banned || self.s.removed[z.index()] || self.s.stamp[z.index()] == ep {
                    continue;
                }
                self.s.stamp[z.index()] = ep;
                self.s.queue.push(z);
            }
        }
        let mut i = k - 1;
        loop {
            if self.s.stamp[self.qv(q, i - 1).index()] == ep {
                self.s.push_ext(i as u32);
            }
            if i == 2 {
                break;
            }
            // Transition D_i → D_{i−1}: unmask v_{i−1}, re-allow b_i, ban b_{i−1}.
            let old_banned = banned;
            banned = self.qa(q, i - 2);
            let v_prev = self.qv(q, i - 2);
            self.mask_removed(v_prev, false);
            // The worklist reuses the BFS queue's tail as its own stack:
            // the initial sweep's queue contents are no longer needed.
            self.s.queue.clear();
            // (a) the re-allowed arc b_i = (v_i, v_{i+1}) may connect its tail.
            let (bt, bh) = self.d.arc(old_banned);
            if self.s.stamp[bh.index()] == ep
                && self.s.stamp[bt.index()] != ep
                && !self.s.removed[bt.index()]
            {
                self.s.stamp[bt.index()] = ep;
                self.s.queue.push(bt);
            }
            // (b) the newly unmasked v_{i−1} may now reach t directly.
            if self.s.stamp[v_prev.index()] != ep {
                for &(y, a) in self.d.out_adjacency(v_prev) {
                    self.stats.work += 1;
                    if a == banned || self.s.removed[y.index()] {
                        continue;
                    }
                    if self.s.stamp[y.index()] == ep {
                        self.s.stamp[v_prev.index()] = ep;
                        self.s.queue.push(v_prev);
                        break;
                    }
                }
            }
            // Propagate the new r-flags backwards over in-arcs.
            while let Some(x) = self.s.queue.pop() {
                for &(z, a) in self.d.in_adjacency(x) {
                    self.stats.work += 1;
                    if a == banned || self.s.removed[z.index()] || self.s.stamp[z.index()] == ep {
                        continue;
                    }
                    self.s.stamp[z.index()] = ep;
                    self.s.queue.push(z);
                }
            }
            i -= 1;
        }
        // Only v₁ is still masked by this sweep (the loop unmasked the rest).
        let v0 = self.qv(q, 0);
        self.mask_removed(v0, false);
    }

    /// Ablation variant of [`Self::extendible_indices`]: recomputes the
    /// reach-`t` flags from scratch for every prefix — O(k(n + m)) per
    /// continuation instead of O(n + m). Identical results.
    fn extendible_indices_naive(&mut self, q: QFrame) {
        let k = q.len;
        if k < 3 {
            return;
        }
        for j in 0..=k - 3 {
            let v = self.qv(q, j);
            self.mask_removed(v, true);
        }
        let mut i = k - 1;
        loop {
            // Fresh reverse BFS from t in D_i, skipping b_i.
            let banned = self.qa(q, i - 1);
            self.s.epoch += 1;
            let ep = self.s.epoch;
            self.s.stamp[self.t.index()] = ep;
            self.s.queue.clear();
            self.s.queue.push(self.t);
            let mut head = 0;
            while head < self.s.queue.len() {
                let u = self.s.queue[head];
                head += 1;
                for &(z, a) in self.d.in_adjacency(u) {
                    self.stats.work += 1;
                    if a == banned || self.s.removed[z.index()] || self.s.stamp[z.index()] == ep {
                        continue;
                    }
                    self.s.stamp[z.index()] = ep;
                    self.s.queue.push(z);
                }
            }
            if self.s.stamp[self.qv(q, i - 1).index()] == ep {
                self.s.push_ext(i as u32);
            }
            if i == 2 {
                break;
            }
            let v = self.qv(q, i - 2);
            self.mask_removed(v, false);
            i -= 1;
        }
        let v0 = self.qv(q, 0);
        self.mask_removed(v0, false);
    }

    /// Settles the deferred vertex `w` — the banned arc's tail, held
    /// out of `cand` during a packed sweep flood so the flood needs no
    /// per-arc ban test. Because `w` was never a propagation source, no
    /// other vertex's reached flag can depend on `w`, so the flood's
    /// result is exactly "reaches `t` without going through `w`", and
    /// `w` itself reaches `t` iff some non-banned out-arc leads to a
    /// reached vertex (a simple `w`→`t` path visits `w` once, so the
    /// banned arc — which leaves `w` — could only ever be its first
    /// arc). Reached ⇒ leave `w` out of `cand` (reached ⇔ candidate
    /// and removed bits both clear) and propagate from it, again with
    /// no ban test; unreached ⇒ put `w` back into the candidate set.
    fn settle_deferred(&mut self, w: VertexId, banned: ArcId, work: &mut u64) {
        let mut reached = false;
        for &(y, a) in self.d.out_adjacency(w) {
            *work += 1;
            if a != banned
                && !bit_test(&self.s.cand, y.index())
                && !bit_test(&self.s.removed_bits, y.index())
            {
                reached = true;
                break;
            }
        }
        if !reached {
            bit_set(&mut self.s.cand, w.index());
            return;
        }
        self.s.queue.clear();
        self.s.queue.push(w);
        while let Some(x) = self.s.queue.pop() {
            for &(z, _) in self.d.in_adjacency(x) {
                *work += 1;
                if bit_take(&mut self.s.cand, z.index()) {
                    self.s.queue.push(z);
                }
            }
        }
    }

    /// Packed-mode Lemma 11 sweep — same transitions and results as
    /// [`Self::extendible_indices`], probing the shared candidate
    /// frontier `cand = ¬removed ∧ ¬reached` instead of a byte mask plus
    /// an epoch stamp. Stamping a vertex and excluding it from further
    /// probes are then one [`bit_take`]; a vertex is *reached* iff its
    /// candidate and removed bits are both clear, which is what the
    /// transition steps and the extendibility test check. The buffer is
    /// seeded per frame in O(n/64) words from `removed_bits` (maintained
    /// by [`Self::mask_removed`]) and is dead again on return, so the
    /// BFS in [`Self::fstp_prepare_packed`] can reuse it at any depth.
    fn extendible_indices_packed(&mut self, q: QFrame) {
        let k = q.len;
        if k < 3 {
            return;
        }
        // Transient sweep masks touch only `removed_bits`: the sweep is
        // the sole reader of the mask until it returns, every mask it
        // sets is cleared again before then, and no cache-signature
        // lookup happens in between — so the byte mirror and the Zobrist
        // fold can be left untouched instead of updated ~2(k−2) times.
        #[inline]
        fn sweep_mask(bits: &mut [u64], v: VertexId, on: bool) {
            debug_assert_ne!(bit_test(bits, v.index()), on, "sweep masks are toggles");
            bit_assign(bits, v.index(), on);
        }
        // Mask v₁ … v_{k−2} (0-indexed 0..=k−3); v_{k−1} is the first tip.
        for j in 0..=k - 3 {
            let v = self.qv(q, j);
            sweep_mask(&mut self.s.removed_bits, v, true);
        }
        let t = self.t;
        {
            let s = &mut *self.s;
            bits_not(&mut s.cand, &s.removed_bits);
            // t is reached from the start.
            bit_clear(&mut s.cand, t.index());
        }
        // Initial reverse BFS from t in D_{k−1}, skipping b_{k−1}. Every
        // flood in this sweep bans exactly one arc, and that arc's tail
        // is the vertex under test — so instead of comparing every arc
        // against the ban, the tail is held out of `cand` for the whole
        // flood (no probe can take it) and settled afterwards by
        // [`Self::settle_deferred`]. The flood bodies are then pure
        // `bit_take` probes.
        let mut banned = self.qa(q, k - 2);
        let w0 = self.qv(q, k - 2);
        bit_clear(&mut self.s.cand, w0.index());
        let mut work = 0u64;
        self.s.queue.clear();
        self.s.queue.push(t);
        let mut head = 0;
        while head < self.s.queue.len() {
            let u = self.s.queue[head];
            head += 1;
            for &(z, _) in self.d.in_adjacency(u) {
                work += 1;
                if bit_take(&mut self.s.cand, z.index()) {
                    self.s.queue.push(z);
                }
            }
        }
        self.settle_deferred(w0, banned, &mut work);
        let mut i = k - 1;
        loop {
            // r(v_i): reached ⇔ candidate and removed bits both clear.
            let vi = self.qv(q, i - 1).index();
            if !bit_test(&self.s.cand, vi) && !bit_test(&self.s.removed_bits, vi) {
                self.s.push_ext(i as u32);
            }
            if i == 2 {
                break;
            }
            // Transition D_i → D_{i−1}: unmask v_{i−1}, re-allow b_i, ban b_{i−1}.
            let old_banned = banned;
            banned = self.qa(q, i - 2);
            let v_prev = self.qv(q, i - 2);
            sweep_mask(&mut self.s.removed_bits, v_prev, false);
            // v_{i−1} — the new banned arc's tail — stays out of `cand`
            // until the flood settles (see the initial BFS above), so
            // the propagation below needs no per-arc ban test.
            // The worklist reuses the BFS queue's tail as its own stack:
            // the initial sweep's queue contents are no longer needed.
            self.s.queue.clear();
            // (a) the re-allowed arc b_i = (v_i, v_{i+1}) may connect its tail.
            let (bt, bh) = self.d.arc(old_banned);
            if !bit_test(&self.s.cand, bh.index())
                && !bit_test(&self.s.removed_bits, bh.index())
                && bit_take(&mut self.s.cand, bt.index())
            {
                self.s.queue.push(bt);
            }
            // Propagate the new r-flags backwards over in-arcs.
            while let Some(x) = self.s.queue.pop() {
                for &(z, _) in self.d.in_adjacency(x) {
                    work += 1;
                    if bit_take(&mut self.s.cand, z.index()) {
                        self.s.queue.push(z);
                    }
                }
            }
            // (b) folded into the settle: v_{i−1} reaches t iff a
            // non-banned out-arc leads to a settled reached vertex.
            self.settle_deferred(v_prev, banned, &mut work);
            i -= 1;
        }
        self.stats.work += work;
        // Only v₁ is still masked by this sweep (the loop unmasked the rest).
        let v0 = self.qv(q, 0);
        sweep_mask(&mut self.s.removed_bits, v0, false);
        debug_assert!(
            (0..self.s.removed.len())
                .all(|v| self.s.removed[v] == bit_test(&self.s.removed_bits, v)),
            "sweep restored the packed mask to the byte mirror"
        );
    }

    /// Extends the global path `P` by the prefix `Q_i` (vertices `v₂…v_i`),
    /// masking everything but the new tip `v_i`.
    fn push_prefix(&mut self, q: QFrame, i: usize) {
        let v0 = self.qv(q, 0);
        self.mask_removed(v0, true);
        for j in 1..i {
            let v = self.qv(q, j);
            let a = self.qa(q, j - 1);
            self.s.cur_vertices.push(v);
            self.s.cur_arcs.push(a);
            if j < i - 1 {
                self.mask_removed(v, true);
            }
        }
    }

    /// Undoes [`Self::push_prefix`].
    fn pop_prefix(&mut self, q: QFrame, i: usize) {
        for j in (1..i).rev() {
            let v = self.qv(q, j);
            self.s.cur_vertices.pop();
            self.s.cur_arcs.pop();
            if j < i - 1 {
                self.mask_removed(v, false);
            }
        }
        let v0 = self.qv(q, 0);
        self.mask_removed(v0, false);
    }

    /// Emits `P ∘ Q` to the sink.
    fn emit(&mut self, q: QFrame) -> ControlFlow<()> {
        let mut out_vertices = std::mem::take(&mut self.s.out_vertices);
        let mut out_arcs = std::mem::take(&mut self.s.out_arcs);
        out_vertices.clear();
        out_arcs.clear();
        let need_v = self.s.cur_vertices.len() + q.len - 1;
        if need_v > out_vertices.capacity() {
            self.s.allocs += 1;
        }
        out_vertices.extend_from_slice(&self.s.cur_vertices);
        out_vertices.extend_from_slice(&self.s.qv[q.v_start + 1..q.v_start + q.len]);
        if need_v - 1 > out_arcs.capacity() {
            self.s.allocs += 1;
        }
        out_arcs.extend_from_slice(&self.s.cur_arcs);
        out_arcs.extend_from_slice(&self.s.qa[q.a_start..q.a_start + q.len - 1]);
        if self.replace_root {
            debug_assert!(!out_arcs.is_empty(), "virtual-source paths have arcs");
            out_vertices[0] = self.d.tail(out_arcs[0]);
        }
        self.stats.emitted += 1;
        let flow = (self.sink)(PathEvent {
            vertices: &out_vertices,
            arcs: &out_arcs,
        });
        self.s.out_vertices = out_vertices;
        self.s.out_arcs = out_arcs;
        flow
    }

    /// `E-STP(P, e, d, t)` — the recursion of Algorithm 1.
    fn e_stp(&mut self, e: Option<ArcId>, depth: u32) -> ControlFlow<()> {
        let s1 = *self.s.cur_vertices.last().expect("P is nonempty");
        let lvl = depth as usize;
        // A new activation: the level's cached reverse BFS (if any) was
        // computed under a different path prefix.
        self.s.level_mut(lvl).valid = false;
        let mut f_pos: Option<usize> = None;
        loop {
            self.stats.work += 1;
            let Some(q) = self.f_stp(s1, e, f_pos, lvl) else {
                break;
            };
            let mut flow = ControlFlow::Continue(());
            if depth.is_multiple_of(2) {
                flow = self.emit(q);
            }
            if flow.is_continue() {
                let ext_start = self.s.ext.len();
                if self.options.incremental_extendibility {
                    self.extendible_indices(q);
                } else {
                    self.extendible_indices_naive(q);
                }
                let ext_end = self.s.ext.len();
                for idx in ext_start..ext_end {
                    let i = self.s.ext[idx] as usize;
                    let banned_child = self.qa(q, i - 1); // (v_i, v_{i+1})
                    self.push_prefix(q, i);
                    let f = self.e_stp(Some(banned_child), depth + 1);
                    self.pop_prefix(q, i);
                    if f.is_break() {
                        flow = ControlFlow::Break(());
                        break;
                    }
                }
                self.s.ext.truncate(ext_start);
                if flow.is_continue() && depth % 2 == 1 {
                    flow = self.emit(q);
                }
            }
            // Release this frame's continuation before leaving the
            // iteration (LIFO arena discipline).
            self.s.qv.truncate(q.v_start);
            self.s.qa.truncate(q.a_start);
            flow?;
            f_pos = Some(q.first_pos);
        }
        ControlFlow::Continue(())
    }

    /// Packed-mode `F-STP` preparation: makes the level-`depth` reverse-
    /// BFS cache valid for the key `(mask signature, banned arc e, s′,
    /// t)`.
    ///
    /// Unlike the reference path, the cache is **not** invalidated per
    /// `E-STP` activation: the key compares the Zobrist XOR-fold of the
    /// removal mask (maintained by [`Self::mask_removed`]) plus the
    /// banned arc and `s′`, so any activation — in this run or a later
    /// run sharing the scratch — whose admissible graph is identical
    /// reuses the BFS tree verbatim. `s′` sits in the key rather than
    /// the signature because the BFS masks it only temporarily. The BFS
    /// is deterministic in `(mask, e, t)`, so a key match reproduces
    /// `next_arc` (and hence every reconstruction) bit for bit — the
    /// byte-identical-stream argument.
    fn fstp_prepare_packed(&mut self, s1: VertexId, e: Option<ArcId>, depth: usize) {
        debug_assert!(!self.s.removed[s1.index()]);
        let d = self.d;
        let t = self.t;
        self.s.level_mut(depth);
        let s = &mut *self.s;
        let n = s.removed.len();
        let nw = bit_words(n);
        let lvl = &mut s.levels[depth];
        if lvl.next_arc.len() != n {
            steiner_graph::csr::grow(&mut lvl.next_arc, n, ArcId(u32::MAX), &mut s.allocs);
            lvl.valid = false;
            lvl.packed_valid = false;
        }
        if lvl.admissible.len() != nw {
            steiner_graph::csr::grow(&mut lvl.admissible, nw, 0u64, &mut s.allocs);
            lvl.packed_valid = false;
        }
        let key_s1 = s1.index() as u32;
        let key_t = t.index() as u32;
        if lvl.packed_valid && lvl.key_sig == s.sig && lvl.key_s1 == key_s1 && lvl.key_t == key_t {
            self.stats.fstp_cache_hits += 1;
            return;
        }
        self.stats.fstp_cache_misses += 1;
        // Reverse BFS from t over the candidate frontier `¬removed ∧
        // ¬reached`: clearing s′ and t up front folds the "masked s′",
        // "already reached", and "removed" exclusions into a single
        // bit-take per arc. The banned arc needs no per-arc test at all:
        // it is the arc the activation arrived on, so its tail is `s′`
        // and every reverse probe along it dies on the cleared `s′` bit.
        debug_assert!(
            e.is_none_or(|a| d.tail(a) == s1),
            "the activation's banned arc leaves s′"
        );
        bits_not(&mut s.cand, &s.removed_bits);
        bit_clear(&mut s.cand, s1.index());
        bit_clear(&mut s.cand, t.index());
        s.queue.clear();
        s.queue.push(t);
        let mut head = 0;
        let mut work = 0u64;
        while head < s.queue.len() {
            let u = s.queue[head];
            head += 1;
            for &(z, a) in d.in_adjacency(u) {
                work += 1;
                if !bit_take(&mut s.cand, z.index()) {
                    continue;
                }
                lvl.next_arc[z.index()] = a;
                s.queue.push(z);
            }
        }
        self.stats.work += work;
        // Admissible heads = reached ∧ ¬removed = ¬(cand ∨ removed) after
        // the BFS consumed the reached bits — except s′, whose candidate
        // bit was cleared as "masked", not "reached", so neither s′ nor a
        // self-loop back to it may qualify as a first-arc head.
        bits_not_or(&mut lvl.admissible, &s.cand, &s.removed_bits);
        bit_clear(&mut lvl.admissible, s1.index());
        lvl.key_sig = s.sig;
        lvl.key_s1 = key_s1;
        lvl.key_t = key_t;
        lvl.packed_valid = true;
        // `next_arc` was rewritten: the reference cache view is stale.
        lvl.valid = false;
    }

    /// Packed-mode `E-STP`: the same recursion and emission order as
    /// [`Self::e_stp`], with the whole sibling run materialized up
    /// front. After the (possibly cached) reverse BFS, **all**
    /// admissible continuations of this activation are reconstructed
    /// back-to-back into the flat `qv`/`qa` arena in a single pass over
    /// `out_adjacency(s′)` — the reference path's per-sibling resumed
    /// scans and interleaved validity checks collapse into one
    /// bitset-driven emission loop. This is sound because the sibling
    /// set is fixed at activation time: every `push_prefix` a child
    /// performs is undone by its `pop_prefix` before the next sibling,
    /// so the lazily resumed reference scan sees exactly the admissible
    /// set that existed when the activation began.
    fn e_stp_packed(&mut self, e: Option<ArcId>, depth: u32) -> ControlFlow<()> {
        let s1 = *self.s.cur_vertices.last().expect("P is nonempty");
        let lvl = depth as usize;
        self.stats.work += 1;
        self.fstp_prepare_packed(s1, e, lvl);
        // Flat child-run generation: one contiguous qv/qa run per
        // activation instead of one reconstruction per sibling visit.
        let frames_start = self.s.frames.len();
        let qv_mark = self.s.qv.len();
        let qa_mark = self.s.qa.len();
        {
            let d = self.d;
            let t = self.t;
            let s = &mut *self.s;
            let level = &s.levels[lvl];
            let banned = e.unwrap_or(ArcId(u32::MAX));
            for (pos, &(y, a)) in d.out_adjacency(s1).iter().enumerate() {
                self.stats.work += 1;
                if a == banned || !bit_test(&level.admissible, y.index()) {
                    continue;
                }
                // Reconstruct s′ → y → … → t along the reverse-BFS tree.
                let v_start = s.qv.len();
                let a_start = s.qa.len();
                push_tracked(&mut s.qv, s1, &mut s.allocs);
                push_tracked(&mut s.qv, y, &mut s.allocs);
                push_tracked(&mut s.qa, a, &mut s.allocs);
                let mut len = 2;
                let mut cur = y;
                while cur != t {
                    let na = level.next_arc[cur.index()];
                    push_tracked(&mut s.qa, na, &mut s.allocs);
                    cur = d.head(na);
                    push_tracked(&mut s.qv, cur, &mut s.allocs);
                    len += 1;
                }
                push_tracked(
                    &mut s.frames,
                    QFrame {
                        v_start,
                        a_start,
                        len,
                        first_pos: pos,
                    },
                    &mut s.allocs,
                );
            }
        }
        let frames_end = self.s.frames.len();
        let mut flow = ControlFlow::Continue(());
        for fi in frames_start..frames_end {
            let q = self.s.frames[fi];
            self.stats.work += 1;
            if depth.is_multiple_of(2) {
                flow = self.emit(q);
            }
            if flow.is_continue() {
                let ext_start = self.s.ext.len();
                if self.options.incremental_extendibility {
                    self.extendible_indices_packed(q);
                } else {
                    self.extendible_indices_naive(q);
                }
                let ext_end = self.s.ext.len();
                for idx in ext_start..ext_end {
                    let i = self.s.ext[idx] as usize;
                    let banned_child = self.qa(q, i - 1); // (v_i, v_{i+1})
                    self.push_prefix(q, i);
                    let f = self.e_stp_packed(Some(banned_child), depth + 1);
                    self.pop_prefix(q, i);
                    if f.is_break() {
                        flow = ControlFlow::Break(());
                        break;
                    }
                }
                self.s.ext.truncate(ext_start);
                if flow.is_continue() && depth % 2 == 1 {
                    flow = self.emit(q);
                }
            }
            if flow.is_break() {
                break;
            }
        }
        // Release the whole sibling run at once (the batch is the LIFO
        // arena frame in packed mode).
        self.s.frames.truncate(frames_start);
        self.s.qv.truncate(qv_mark);
        self.s.qa.truncate(qa_mark);
        flow?;
        ControlFlow::Continue(())
    }
}

/// Runs the Algorithm-1 engine over an arbitrary [`PathView`] with an
/// explicit, reusable [`PathScratch`].
///
/// The caller owns the removal mask: call [`PathScratch::begin`] with the
/// view's vertex count, mark any vertices to exclude, then call this. When
/// `replace_root_with_first_arc_tail` is set (virtual-source mode, see
/// [`VirtualSourceView`]), every emitted path reports the real tail of its
/// first arc as its first vertex.
pub fn enumerate_paths_view<V: PathView>(
    view: &V,
    s: VertexId,
    t: VertexId,
    options: EnumerateOptions,
    replace_root_with_first_arc_tail: bool,
    scratch: &mut PathScratch,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    let n = view.num_vertices();
    debug_assert_eq!(scratch.removed.len(), n, "call begin(n) before the run");
    let stats = PathEnumStats::default();
    if scratch.removed[s.index()] || scratch.removed[t.index()] {
        return stats;
    }
    if s == t {
        let mut stats = stats;
        stats.emitted = 1;
        let _ = sink(PathEvent {
            vertices: &[s],
            arcs: &[],
        });
        return stats;
    }
    let mut allocs = scratch.allocs;
    steiner_graph::csr::grow(&mut scratch.stamp, n, 0u32, &mut allocs);
    if options.packed_frontiers {
        // Rebuild the packed mirror and the Zobrist signature of the
        // caller-written mask; from here on both are maintained
        // incrementally by the engine's mask writes, so later cache
        // lookups cost one u64 compare instead of an O(n) scan.
        steiner_graph::csr::grow(&mut scratch.removed_bits, bit_words(n), 0u64, &mut allocs);
        steiner_graph::csr::grow(&mut scratch.cand, bit_words(n), 0u64, &mut allocs);
        if scratch.vsigs.len() < n {
            if scratch.vsigs.capacity() < n {
                allocs += 1;
            }
            let start = scratch.vsigs.len();
            scratch.vsigs.extend((start..n).map(vsig));
        }
        let mut sig = 0u64;
        for (v, &r) in scratch.removed.iter().enumerate() {
            if r {
                bit_set(&mut scratch.removed_bits, v);
                sig ^= scratch.vsigs[v];
            }
        }
        scratch.sig = sig;
    }
    scratch.allocs = allocs;
    scratch.epoch = 0;
    scratch.queue.clear();
    scratch.cur_vertices.clear();
    scratch.cur_vertices.push(s);
    scratch.cur_arcs.clear();
    debug_assert!(
        scratch.qv.is_empty()
            && scratch.qa.is_empty()
            && scratch.ext.is_empty()
            && scratch.frames.is_empty()
    );
    let mut engine = Engine {
        d: view,
        t,
        s: scratch,
        options,
        replace_root: replace_root_with_first_arc_tail,
        stats,
        sink,
    };
    let _ = if options.packed_frontiers {
        engine.e_stp_packed(None, 0)
    } else {
        engine.e_stp(None, 0)
    };
    let stats = engine.stats;
    scratch.qv.clear();
    scratch.qa.clear();
    scratch.ext.clear();
    scratch.frames.clear();
    stats
}

/// Enumerates every directed simple `s`-`t` path of `d` whose vertices all
/// satisfy `allowed` (if given), invoking `sink` once per path with
/// O(n + m) delay (Theorem 12). Returns emission/work counters.
///
/// If `s == t` the single trivial path is emitted. The sink may stop the
/// enumeration by returning [`ControlFlow::Break`].
///
/// ```
/// use steiner_paths::enumerate::enumerate_directed_st_paths;
/// use steiner_graph::{DiGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let stats = enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |p| {
///     assert_eq!(p.vertices.len(), 3);
///     ControlFlow::Continue(())
/// });
/// assert_eq!(stats.emitted, 2);
/// ```
pub fn enumerate_directed_st_paths(
    d: &DiGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    enumerate_directed_st_paths_with(d, s, t, allowed, EnumerateOptions::default(), sink)
}

/// As [`enumerate_directed_st_paths`], with explicit [`EnumerateOptions`]
/// (used by the Lemma 11 ablation bench).
pub fn enumerate_directed_st_paths_with(
    d: &DiGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    options: EnumerateOptions,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    let n = d.num_vertices();
    let mut scratch = PathScratch::new();
    let removed = scratch.begin(n);
    if let Some(mask) = allowed {
        debug_assert_eq!(mask.len(), n);
        for (r, &a) in removed.iter_mut().zip(mask) {
            *r = !a;
        }
    }
    // The historical contract: the target takes part even when masked out
    // by `allowed` only through the early return below, exactly as before.
    enumerate_paths_view(d, s, t, options, false, &mut scratch, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visit::{collect_arc_paths, count_paths, first_k_arc_paths};
    use std::collections::HashSet;

    fn paths_of(d: &DiGraph, s: VertexId, t: VertexId) -> Vec<Vec<ArcId>> {
        collect_arc_paths(|sink| {
            enumerate_directed_st_paths(d, s, t, None, sink);
        })
    }

    #[test]
    fn single_arc() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(1));
        assert_eq!(paths, vec![vec![ArcId(0)]]);
    }

    #[test]
    fn no_path() {
        let d = DiGraph::from_arcs(3, &[(0, 1)]).unwrap();
        assert!(paths_of(&d, VertexId(0), VertexId(2)).is_empty());
        // Arc in the wrong direction.
        let d2 = DiGraph::from_arcs(2, &[(1, 0)]).unwrap();
        assert!(paths_of(&d2, VertexId(0), VertexId(1)).is_empty());
    }

    #[test]
    fn trivial_path() {
        let d = DiGraph::new(1);
        let paths = paths_of(&d, VertexId(0), VertexId(0));
        assert_eq!(paths, vec![Vec::<ArcId>::new()]);
    }

    #[test]
    fn diamond_has_two_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let paths: HashSet<Vec<ArcId>> =
            paths_of(&d, VertexId(0), VertexId(3)).into_iter().collect();
        let expected: HashSet<Vec<ArcId>> = [vec![ArcId(0), ArcId(2)], vec![ArcId(1), ArcId(3)]]
            .into_iter()
            .collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn parallel_arcs_are_distinct_paths() {
        let d = DiGraph::from_arcs(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(1));
        assert_eq!(paths.len(), 3);
        let firsts: HashSet<ArcId> = paths.iter().map(|p| p[0]).collect();
        assert_eq!(firsts.len(), 3);
    }

    #[test]
    fn complete_dag_path_count() {
        // Complete DAG on n vertices: number of 0 -> (n-1) paths is 2^(n-2).
        for n in 2..8usize {
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    arcs.push((u, v));
                }
            }
            let d = DiGraph::from_arcs(n, &arcs).unwrap();
            let count = count_paths(|sink| {
                enumerate_directed_st_paths(&d, VertexId(0), VertexId::new(n - 1), None, sink);
            });
            assert_eq!(count, 1u64 << (n - 2), "n = {n}");
        }
    }

    #[test]
    fn no_duplicates_on_dense_digraph() {
        // Bidirected K_5: every permutation path is found exactly once.
        let mut arcs = Vec::new();
        for u in 0..5usize {
            for v in 0..5usize {
                if u != v {
                    arcs.push((u, v));
                }
            }
        }
        let d = DiGraph::from_arcs(5, &arcs).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(4));
        let unique: HashSet<&Vec<ArcId>> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len(), "no duplicates");
        // Count: sum over k of P(3, k) simple paths through k intermediates:
        // 1 + 3 + 6 + 6 = 16.
        assert_eq!(paths.len(), 16);
    }

    #[test]
    fn paths_are_simple_and_well_formed() {
        let mut arcs = Vec::new();
        for u in 0..6usize {
            for v in 0..6usize {
                if u != v {
                    arcs.push((u, v));
                }
            }
        }
        let d = DiGraph::from_arcs(6, &arcs).unwrap();
        enumerate_directed_st_paths(&d, VertexId(0), VertexId(5), None, &mut |p| {
            assert_eq!(p.vertices.len(), p.arcs.len() + 1);
            assert_eq!(p.vertices[0], VertexId(0));
            assert_eq!(*p.vertices.last().unwrap(), VertexId(5));
            let distinct: HashSet<VertexId> = p.vertices.iter().copied().collect();
            assert_eq!(distinct.len(), p.vertices.len(), "simple path");
            for (i, &a) in p.arcs.iter().enumerate() {
                assert_eq!(d.tail(a), p.vertices[i]);
                assert_eq!(d.head(a), p.vertices[i + 1]);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn allowed_mask_restricts_paths() {
        // Diamond with both midpoints; forbid vertex 1.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let allowed = vec![true, false, true, true];
        let paths = collect_arc_paths(|sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), Some(&allowed), sink);
        });
        assert_eq!(paths, vec![vec![ArcId(1), ArcId(3)]]);
    }

    #[test]
    fn early_termination_stops_quickly() {
        let mut arcs = Vec::new();
        for u in 0..7usize {
            for v in u + 1..7usize {
                arcs.push((u, v));
            }
        }
        let d = DiGraph::from_arcs(7, &arcs).unwrap();
        let got = first_k_arc_paths(3, |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(6), None, sink);
        });
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn csr_view_matches_digraph_view() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc5_12);
        let mut scratch = PathScratch::new();
        for _ in 0..30 {
            let n = 3 + rng.gen_range(0..5usize);
            let m = rng.gen_range(0..=(n * (n - 1)).min(14));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            let on_digraph = paths_of(&d, s, t);
            let csr = CsrDigraph::from_digraph(&d);
            let mut on_csr = Vec::new();
            scratch.begin(n);
            enumerate_paths_view(
                &csr,
                s,
                t,
                EnumerateOptions::default(),
                false,
                &mut scratch,
                &mut |p| {
                    on_csr.push(p.arcs.to_vec());
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(on_digraph, on_csr, "identical order; digraph {d:?}");
        }
    }

    #[test]
    fn warm_scratch_does_not_allocate() {
        let g = steiner_graph::generators::theta_chain(4, 3);
        let csr = CsrDigraph::doubled(&g);
        let (n, m) = (csr.num_vertices(), csr.num_arcs());
        let mut scratch = PathScratch::new();
        scratch.preallocate(n, m);
        for round in 0..2 {
            scratch.begin(n);
            enumerate_paths_view(
                &csr,
                VertexId(0),
                VertexId(4),
                EnumerateOptions::default(),
                false,
                &mut scratch,
                &mut |_| ControlFlow::Continue(()),
            );
            assert_eq!(
                scratch.alloc_events(),
                0,
                "round {round}: preallocated scratch must not grow"
            );
        }
    }

    #[test]
    fn virtual_source_matches_materialized_super_source() {
        // S = {0, 1} wired into a square 0-2-3-4-1; target 3. Compare the
        // virtual-source view against manually adding a super-source.
        let g = steiner_graph::UndirectedGraph::from_edges(
            5,
            &[(0, 2), (1, 4), (2, 3), (3, 4), (2, 4)],
        )
        .unwrap();
        let csr = CsrDigraph::doubled(&g);
        let n = csr.num_vertices();
        let vsrc = VertexId::new(n);
        // Boundary arcs: tails in S = {0, 1}, sorted by arc id.
        let mut boundary = Vec::new();
        for u in [VertexId(0), VertexId(1)] {
            for &(v, a) in csr.out_adjacency(u) {
                boundary.push((v, a));
            }
        }
        boundary.sort_unstable_by_key(|&(_, a)| a);
        let mut scratch = PathScratch::new();
        let removed = scratch.begin(n + 1);
        removed[0] = true;
        removed[1] = true;
        let view = VirtualSourceView {
            base: &csr,
            boundary: &boundary,
            source: vsrc,
        };
        let mut got = Vec::new();
        enumerate_paths_view(
            &view,
            vsrc,
            VertexId(3),
            EnumerateOptions::default(),
            true,
            &mut scratch,
            &mut |p| {
                assert!(p.vertices[0] == VertexId(0) || p.vertices[0] == VertexId(1));
                assert_eq!(*p.vertices.last().unwrap(), VertexId(3));
                got.push(p.arcs.to_vec());
                ControlFlow::Continue(())
            },
        );
        // Oracle: the established super-source construction.
        let inst =
            crate::stsets::SourceSetInstance::new(&g, &[true, true, false, false, false], None);
        let mut want = 0;
        inst.enumerate(VertexId(3), &mut |_| {
            want += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(got.len(), want);
        let unique: HashSet<Vec<ArcId>> = got.iter().cloned().collect();
        assert_eq!(unique.len(), got.len(), "no duplicate paths");
    }

    #[test]
    fn naive_extendibility_gives_identical_output() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x11_11);
        for _ in 0..40 {
            let n = 3 + rng.gen_range(0..5usize);
            let m = rng.gen_range(0..=(n * (n - 1)).min(16));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            let fast = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_with(
                    &d,
                    s,
                    t,
                    None,
                    EnumerateOptions {
                        incremental_extendibility: true,
                        ..EnumerateOptions::default()
                    },
                    sink,
                );
            });
            let slow = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_with(
                    &d,
                    s,
                    t,
                    None,
                    EnumerateOptions {
                        incremental_extendibility: false,
                        ..EnumerateOptions::default()
                    },
                    sink,
                );
            });
            assert_eq!(fast, slow, "identical order and content; digraph {d:?}");
        }
    }

    #[test]
    fn lemma11_sweep_does_less_work() {
        // On a long-path-rich instance the naive per-prefix recomputation
        // must cost measurably more work units.
        let g = steiner_graph::generators::grid(4, 5);
        let doubled = steiner_graph::digraph::DoubledDigraph::new(&g);
        let d = &doubled.digraph;
        let (s, t) = (VertexId(0), VertexId::new(g.num_vertices() - 1));
        let run = |incremental: bool| {
            let mut sink = |_: PathEvent<'_>| ControlFlow::Continue(());
            enumerate_directed_st_paths_with(
                d,
                s,
                t,
                None,
                EnumerateOptions {
                    incremental_extendibility: incremental,
                    ..EnumerateOptions::default()
                },
                &mut sink,
            )
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.emitted, slow.emitted);
        assert!(
            slow.work > fast.work,
            "naive {} should exceed incremental {}",
            slow.work,
            fast.work
        );
    }

    #[test]
    fn thousand_vertex_path_graph_does_not_panic() {
        // Regression: `preallocate` caps the level cache at
        // DEFAULT_LEVEL_CACHE_CAP (512) entries, but instances with
        // n > 510 can touch levels past the preallocation; every access
        // site must grow the cache on demand instead of indexing out of
        // bounds.
        let n = 1000;
        let g = steiner_graph::generators::path(n);
        let csr = CsrDigraph::doubled(&g);
        let mut scratch = PathScratch::new();
        scratch.preallocate(csr.num_vertices(), csr.num_arcs());
        scratch.begin(csr.num_vertices());
        let mut emitted = Vec::new();
        enumerate_paths_view(
            &csr,
            VertexId(0),
            VertexId::new(n - 1),
            EnumerateOptions::default(),
            false,
            &mut scratch,
            &mut |p| {
                emitted.push(p.arcs.len());
                ControlFlow::Continue(())
            },
        );
        assert_eq!(emitted, vec![n - 1], "the single spanning path");
    }

    #[test]
    fn recursion_past_the_level_cache_cap_grows_on_demand() {
        // A ladder nests path prefixes along the whole chain, so the
        // E-STP recursion runs deeper than a tiny preallocation cap.
        // The capped scratch must produce the identical stream and
        // report its growth through `alloc_events`.
        let g = steiner_graph::generators::ladder(10);
        let csr = CsrDigraph::doubled(&g);
        let (n, m) = (csr.num_vertices(), csr.num_arcs());
        let t = VertexId::new(n - 1);
        let run = |scratch: &mut PathScratch| {
            let mut paths = Vec::new();
            scratch.begin(n);
            enumerate_paths_view(
                &csr,
                VertexId(0),
                t,
                EnumerateOptions::default(),
                false,
                scratch,
                &mut |p| {
                    paths.push(p.arcs.to_vec());
                    ControlFlow::Continue(())
                },
            );
            paths
        };
        let mut full = PathScratch::new();
        full.preallocate(n, m);
        let reference = run(&mut full);
        assert!(reference.len() > 100, "the instance is path-rich");

        let mut capped = PathScratch::new();
        capped.preallocate_capped(n, m, 2);
        let got = run(&mut capped);
        assert_eq!(got, reference, "identical stream under a tiny cap");
        assert!(
            capped.alloc_events() > 0,
            "on-demand growth past the cap is visible in the accounting"
        );
        // A second run on the now-grown scratch is allocation-free again.
        let before = capped.alloc_events();
        let again = run(&mut capped);
        assert_eq!(again, reference);
        assert_eq!(capped.alloc_events(), before, "warm capped scratch");
    }

    #[test]
    fn packed_off_matches_packed_on() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xb17_5e7);
        for _ in 0..60 {
            let n = 3 + rng.gen_range(0..5usize);
            let m = rng.gen_range(0..=(n * (n - 1)).min(16));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            let run = |packed: bool| {
                collect_arc_paths(|sink| {
                    enumerate_directed_st_paths_with(
                        &d,
                        s,
                        t,
                        None,
                        EnumerateOptions {
                            packed_frontiers: packed,
                            ..EnumerateOptions::default()
                        },
                        sink,
                    );
                })
            };
            assert_eq!(run(true), run(false), "identical stream; digraph {d:?}");
        }
    }

    #[test]
    fn packed_cache_hits_across_runs_on_a_pinned_graph() {
        // Re-running the same query on a warm scratch via
        // `begin_same_graph` must replay at least the root-level reverse
        // BFS from cache (the cross-branch reuse the Steiner pools see).
        let g = steiner_graph::generators::theta_chain(4, 3);
        let csr = CsrDigraph::doubled(&g);
        let n = csr.num_vertices();
        let mut scratch = PathScratch::new();
        scratch.preallocate(n, csr.num_arcs());
        let run = |scratch: &mut PathScratch, fresh: bool| {
            if fresh {
                scratch.begin(n);
            } else {
                scratch.begin_same_graph(n);
            }
            enumerate_paths_view(
                &csr,
                VertexId(0),
                VertexId(4),
                EnumerateOptions::default(),
                false,
                scratch,
                &mut |_| ControlFlow::Continue(()),
            )
        };
        let cold = run(&mut scratch, true);
        assert!(cold.fstp_cache_misses > 0, "cold run computes BFS trees");
        let warm = run(&mut scratch, false);
        assert_eq!(cold.emitted, warm.emitted);
        assert!(
            warm.fstp_cache_hits >= 1,
            "warm same-graph replay reuses cached BFS trees (hits {}, misses {})",
            warm.fstp_cache_hits,
            warm.fstp_cache_misses
        );
        assert!(warm.fstp_cache_misses < cold.fstp_cache_misses);
    }

    #[test]
    fn begin_drops_cross_graph_packed_caches() {
        // One scratch, two different graphs with identical vertex count,
        // source, target, and (empty) mask: `begin` must not let the
        // second run hit the first run's cached BFS trees.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        let mut scratch = PathScratch::new();
        for _ in 0..40 {
            let n = 4 + rng.gen_range(0..3usize);
            let m = rng.gen_range(0..=(n * (n - 1)).min(14));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let csr = CsrDigraph::from_digraph(&d);
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            let shared = {
                let mut got = Vec::new();
                scratch.begin(n);
                enumerate_paths_view(
                    &csr,
                    s,
                    t,
                    EnumerateOptions::default(),
                    false,
                    &mut scratch,
                    &mut |p| {
                        got.push(p.arcs.to_vec());
                        ControlFlow::Continue(())
                    },
                );
                got
            };
            let mut fresh_scratch = PathScratch::new();
            let fresh = {
                let mut got = Vec::new();
                fresh_scratch.begin(n);
                enumerate_paths_view(
                    &csr,
                    s,
                    t,
                    EnumerateOptions::default(),
                    false,
                    &mut fresh_scratch,
                    &mut |p| {
                        got.push(p.arcs.to_vec());
                        ControlFlow::Continue(())
                    },
                );
                got
            };
            assert_eq!(
                shared, fresh,
                "shared scratch must not leak stale BFS trees"
            );
        }
    }

    #[test]
    fn warm_scratch_does_not_allocate_in_reference_mode() {
        let g = steiner_graph::generators::theta_chain(4, 3);
        let csr = CsrDigraph::doubled(&g);
        let (n, m) = (csr.num_vertices(), csr.num_arcs());
        let mut scratch = PathScratch::new();
        scratch.preallocate(n, m);
        for round in 0..2 {
            scratch.begin(n);
            enumerate_paths_view(
                &csr,
                VertexId(0),
                VertexId(4),
                EnumerateOptions {
                    packed_frontiers: false,
                    ..EnumerateOptions::default()
                },
                false,
                &mut scratch,
                &mut |_| ControlFlow::Continue(()),
            );
            assert_eq!(
                scratch.alloc_events(),
                0,
                "round {round}: preallocated scratch must not grow"
            );
        }
    }

    #[test]
    fn stats_count_emissions() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut seen = 0;
        let stats = enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |_| {
            seen += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(stats.emitted, 2);
        assert_eq!(seen, 2);
        assert!(stats.work > 0);
    }
}
