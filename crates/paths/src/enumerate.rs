//! Algorithm 1: linear-delay directed *s*-*t* path enumeration.
//!
//! Structure of the implementation, mirroring the paper (§3):
//!
//! * `f_stp` — the subroutine `F-STP(D′, s′, t, e, f)`: one reverse BFS
//!   from `t` (avoiding the masked vertices, the banned arc `e`, and `s′`
//!   itself), then the smallest out-arc of `s′` beyond position `f` whose
//!   head reaches `t`. Deterministic, O(n + m).
//! * `extendible_indices` — Lemma 11: given the freshly found continuation
//!   `Q = (v₁ … v_k)`, decide for every `i ∈ [2, k−1]` whether the prefix
//!   `Q_i` is *extendible with P* (i.e. `D[V ∖ (V(P∘Q_i) ∖ {v_i})] −
//!   (v_i, v_{i+1})` still has a `v_i`-`t` path). The sweep walks `i`
//!   downward while the admissible graph only grows, maintaining the
//!   reach-`t` flags `r(·)` monotonically — O(n + m) for the whole sweep.
//! * `e_stp` — the recursion `E-STP(P, e, d, t)` with the alternating
//!   output rule (pre-order at even depth, post-order at odd depth).
//!
//! The current path `P` lives in global state (`cur_vertices`/`cur_arcs`)
//! and is masked except for its tip, exactly as in the paper's space
//! analysis; each recursion frame stores only its own continuation `Q`.

use crate::visit::PathEvent;
use std::ops::ControlFlow;
use steiner_graph::{ArcId, DiGraph, VertexId};

/// Counters reported by a finished (or stopped) enumeration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PathEnumStats {
    /// Number of paths handed to the sink.
    pub emitted: u64,
    /// Algorithmic work units (≈ arcs/vertices touched); the empirical
    /// stand-in for the paper's O(n + m)-per-solution accounting.
    pub work: u64,
}

/// Tuning knobs for [`enumerate_directed_st_paths_with`]; primarily the
/// Lemma 11 ablation switch.
#[derive(Copy, Clone, Debug)]
pub struct EnumerateOptions {
    /// Use the Lemma 11 *incremental* reachability sweep (O(n + m) for all
    /// prefixes of a continuation together). When `false`, extendibility
    /// is recomputed from scratch per prefix — O(k(n + m)) per
    /// continuation of length k — which is the design choice the paper's
    /// §3 revision of Read–Tarjan eliminates. Exposed for the ablation
    /// bench (`cargo bench -p steiner-bench --bench ablation`).
    pub incremental_extendibility: bool,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            incremental_extendibility: true,
        }
    }
}

/// A continuation path `Q = (v₁ … v_k)` found by `F-STP`.
struct QPath {
    /// `v₁ … v_k` with `v₁ = s′` and `v_k = t`.
    vertices: Vec<VertexId>,
    /// The `k − 1` arcs of `Q`.
    arcs: Vec<ArcId>,
    /// Position of `arcs[0]` within `out_adjacency(v₁)` — the order `≺_{s′}`.
    first_pos: usize,
}

struct Enumerator<'g, 's> {
    d: &'g DiGraph,
    t: VertexId,
    /// Masked vertices: the current path `P` except its tip, plus any
    /// vertices excluded by the caller.
    removed: Vec<bool>,
    cur_vertices: Vec<VertexId>,
    cur_arcs: Vec<ArcId>,
    /// Epoch-stamped reach-`t` flags (`stamp[v] == epoch` ⇔ `r(v)` true).
    stamp: Vec<u32>,
    epoch: u32,
    /// For `F-STP` path reconstruction: the arc leading one step closer to
    /// `t` in the latest reverse BFS tree.
    next_arc: Vec<ArcId>,
    /// Scratch queues/buffers, reused across calls.
    queue: Vec<VertexId>,
    out_vertices: Vec<VertexId>,
    out_arcs: Vec<ArcId>,
    options: EnumerateOptions,
    stats: PathEnumStats,
    sink: &'s mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
}

impl<'g, 's> Enumerator<'g, 's> {
    /// `F-STP`: the `s′`-`t` path minimizing its first arc in `≺_{s′}`,
    /// restricted to arcs strictly beyond `f_pos`, avoiding `e`, the masked
    /// vertices, and `s′` itself after the first step.
    fn f_stp(&mut self, s1: VertexId, e: Option<ArcId>, f_pos: Option<usize>) -> Option<QPath> {
        debug_assert!(!self.removed[s1.index()]);
        self.epoch += 1;
        let ep = self.epoch;
        // Reverse BFS from t with s′ masked: r(v) ⇔ v reaches t avoiding P.
        self.removed[s1.index()] = true;
        self.stamp[self.t.index()] = ep;
        self.queue.clear();
        self.queue.push(self.t);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (z, a) in self.d.in_neighbors(u) {
                self.stats.work += 1;
                if Some(a) == e || self.removed[z.index()] || self.stamp[z.index()] == ep {
                    continue;
                }
                self.stamp[z.index()] = ep;
                self.next_arc[z.index()] = a;
                self.queue.push(z);
            }
        }
        self.removed[s1.index()] = false;
        // Smallest admissible first arc.
        let start = f_pos.map_or(0, |p| p + 1);
        for (pos, &(y, a)) in self.d.out_adjacency(s1).iter().enumerate().skip(start) {
            self.stats.work += 1;
            if Some(a) == e || self.removed[y.index()] || self.stamp[y.index()] != ep {
                continue;
            }
            // Reconstruct s′ → y → … → t along the reverse-BFS tree.
            let mut vertices = vec![s1, y];
            let mut arcs = vec![a];
            let mut cur = y;
            while cur != self.t {
                let na = self.next_arc[cur.index()];
                arcs.push(na);
                cur = self.d.head(na);
                vertices.push(cur);
            }
            return Some(QPath {
                vertices,
                arcs,
                first_pos: pos,
            });
        }
        None
    }

    /// Lemma 11 sweep: the descending list of indices `i ∈ [2, k−1]` whose
    /// prefix `Q_i` is extendible with the current path `P`.
    fn extendible_indices(&mut self, q: &QPath) -> Vec<usize> {
        let k = q.vertices.len();
        if k < 3 {
            return Vec::new();
        }
        // Mask v₁ … v_{k−2} (0-indexed 0..=k−3); v_{k−1} is the first tip.
        for j in 0..=k - 3 {
            self.removed[q.vertices[j].index()] = true;
        }
        self.epoch += 1;
        let ep = self.epoch;
        // Initial reverse BFS from t in D_{k−1}, skipping b_{k−1}.
        let mut banned = q.arcs[k - 2];
        self.stamp[self.t.index()] = ep;
        self.queue.clear();
        self.queue.push(self.t);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (z, a) in self.d.in_neighbors(u) {
                self.stats.work += 1;
                if a == banned || self.removed[z.index()] || self.stamp[z.index()] == ep {
                    continue;
                }
                self.stamp[z.index()] = ep;
                self.queue.push(z);
            }
        }
        let mut ext = Vec::new();
        let mut worklist: Vec<VertexId> = Vec::new();
        let mut i = k - 1;
        loop {
            if self.stamp[q.vertices[i - 1].index()] == ep {
                ext.push(i);
            }
            if i == 2 {
                break;
            }
            // Transition D_i → D_{i−1}: unmask v_{i−1}, re-allow b_i, ban b_{i−1}.
            let old_banned = banned;
            banned = q.arcs[i - 2];
            let v_prev = q.vertices[i - 2];
            self.removed[v_prev.index()] = false;
            worklist.clear();
            // (a) the re-allowed arc b_i = (v_i, v_{i+1}) may connect its tail.
            let (bt, bh) = self.d.arc(old_banned);
            if self.stamp[bh.index()] == ep
                && self.stamp[bt.index()] != ep
                && !self.removed[bt.index()]
            {
                self.stamp[bt.index()] = ep;
                worklist.push(bt);
            }
            // (b) the newly unmasked v_{i−1} may now reach t directly.
            if self.stamp[v_prev.index()] != ep {
                for (y, a) in self.d.out_neighbors(v_prev) {
                    self.stats.work += 1;
                    if a == banned || self.removed[y.index()] {
                        continue;
                    }
                    if self.stamp[y.index()] == ep {
                        self.stamp[v_prev.index()] = ep;
                        worklist.push(v_prev);
                        break;
                    }
                }
            }
            // Propagate the new r-flags backwards over in-arcs.
            while let Some(x) = worklist.pop() {
                for (z, a) in self.d.in_neighbors(x) {
                    self.stats.work += 1;
                    if a == banned || self.removed[z.index()] || self.stamp[z.index()] == ep {
                        continue;
                    }
                    self.stamp[z.index()] = ep;
                    worklist.push(z);
                }
            }
            i -= 1;
        }
        // Only v₁ is still masked by this sweep (the loop unmasked the rest).
        self.removed[q.vertices[0].index()] = false;
        ext
    }

    /// Ablation variant of [`Self::extendible_indices`]: recomputes the
    /// reach-`t` flags from scratch for every prefix — O(k(n + m)) per
    /// continuation instead of O(n + m). Identical results.
    fn extendible_indices_naive(&mut self, q: &QPath) -> Vec<usize> {
        let k = q.vertices.len();
        if k < 3 {
            return Vec::new();
        }
        for j in 0..=k - 3 {
            self.removed[q.vertices[j].index()] = true;
        }
        let mut ext = Vec::new();
        let mut i = k - 1;
        loop {
            // Fresh reverse BFS from t in D_i, skipping b_i.
            let banned = q.arcs[i - 1];
            self.epoch += 1;
            let ep = self.epoch;
            self.stamp[self.t.index()] = ep;
            self.queue.clear();
            self.queue.push(self.t);
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head];
                head += 1;
                for (z, a) in self.d.in_neighbors(u) {
                    self.stats.work += 1;
                    if a == banned || self.removed[z.index()] || self.stamp[z.index()] == ep {
                        continue;
                    }
                    self.stamp[z.index()] = ep;
                    self.queue.push(z);
                }
            }
            if self.stamp[q.vertices[i - 1].index()] == ep {
                ext.push(i);
            }
            if i == 2 {
                break;
            }
            self.removed[q.vertices[i - 2].index()] = false;
            i -= 1;
        }
        self.removed[q.vertices[0].index()] = false;
        ext
    }

    /// Extends the global path `P` by the prefix `Q_i` (vertices `v₂…v_i`),
    /// masking everything but the new tip `v_i`.
    fn push_prefix(&mut self, q: &QPath, i: usize) {
        self.removed[q.vertices[0].index()] = true;
        for j in 1..i {
            let v = q.vertices[j];
            self.cur_vertices.push(v);
            self.cur_arcs.push(q.arcs[j - 1]);
            if j < i - 1 {
                self.removed[v.index()] = true;
            }
        }
    }

    /// Undoes [`Self::push_prefix`].
    fn pop_prefix(&mut self, q: &QPath, i: usize) {
        for j in (1..i).rev() {
            let v = q.vertices[j];
            self.cur_vertices.pop();
            self.cur_arcs.pop();
            if j < i - 1 {
                self.removed[v.index()] = false;
            }
        }
        self.removed[q.vertices[0].index()] = false;
    }

    /// Emits `P ∘ Q` to the sink.
    fn emit(&mut self, q: &QPath) -> ControlFlow<()> {
        let mut out_vertices = std::mem::take(&mut self.out_vertices);
        let mut out_arcs = std::mem::take(&mut self.out_arcs);
        out_vertices.clear();
        out_arcs.clear();
        out_vertices.extend_from_slice(&self.cur_vertices);
        out_vertices.extend_from_slice(&q.vertices[1..]);
        out_arcs.extend_from_slice(&self.cur_arcs);
        out_arcs.extend_from_slice(&q.arcs);
        self.stats.emitted += 1;
        let flow = (self.sink)(PathEvent {
            vertices: &out_vertices,
            arcs: &out_arcs,
        });
        self.out_vertices = out_vertices;
        self.out_arcs = out_arcs;
        flow
    }

    /// `E-STP(P, e, d, t)` — the recursion of Algorithm 1.
    fn e_stp(&mut self, e: Option<ArcId>, depth: u32) -> ControlFlow<()> {
        let s1 = *self.cur_vertices.last().expect("P is nonempty");
        let mut f_pos: Option<usize> = None;
        loop {
            self.stats.work += 1;
            let Some(q) = self.f_stp(s1, e, f_pos) else {
                break;
            };
            if depth.is_multiple_of(2) {
                self.emit(&q)?;
            }
            let ext = if self.options.incremental_extendibility {
                self.extendible_indices(&q)
            } else {
                self.extendible_indices_naive(&q)
            };
            for &i in &ext {
                let banned_child = q.arcs[i - 1]; // (v_i, v_{i+1})
                self.push_prefix(&q, i);
                let flow = self.e_stp(Some(banned_child), depth + 1);
                self.pop_prefix(&q, i);
                flow?;
            }
            if depth % 2 == 1 {
                self.emit(&q)?;
            }
            f_pos = Some(q.first_pos);
        }
        ControlFlow::Continue(())
    }
}

/// Enumerates every directed simple `s`-`t` path of `d` whose vertices all
/// satisfy `allowed` (if given), invoking `sink` once per path with
/// O(n + m) delay (Theorem 12). Returns emission/work counters.
///
/// If `s == t` the single trivial path is emitted. The sink may stop the
/// enumeration by returning [`ControlFlow::Break`].
///
/// ```
/// use steiner_paths::enumerate::enumerate_directed_st_paths;
/// use steiner_graph::{DiGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let stats = enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |p| {
///     assert_eq!(p.vertices.len(), 3);
///     ControlFlow::Continue(())
/// });
/// assert_eq!(stats.emitted, 2);
/// ```
pub fn enumerate_directed_st_paths(
    d: &DiGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    enumerate_directed_st_paths_with(d, s, t, allowed, EnumerateOptions::default(), sink)
}

/// As [`enumerate_directed_st_paths`], with explicit [`EnumerateOptions`]
/// (used by the Lemma 11 ablation bench).
pub fn enumerate_directed_st_paths_with(
    d: &DiGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    options: EnumerateOptions,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    let n = d.num_vertices();
    let mut removed = match allowed {
        Some(mask) => {
            debug_assert_eq!(mask.len(), n);
            mask.iter().map(|&a| !a).collect::<Vec<bool>>()
        }
        None => vec![false; n],
    };
    let mut stats = PathEnumStats::default();
    if removed[s.index()] || removed[t.index()] {
        return stats;
    }
    if s == t {
        stats.emitted = 1;
        let _ = sink(PathEvent {
            vertices: &[s],
            arcs: &[],
        });
        return stats;
    }
    // The tip of P must be unmasked; `removed` currently masks only the
    // caller-excluded vertices, and P = (s).
    debug_assert!(!removed[s.index()]);
    removed[t.index()] = false;
    let mut enumerator = Enumerator {
        d,
        t,
        removed,
        cur_vertices: vec![s],
        cur_arcs: Vec::new(),
        stamp: vec![0; n],
        epoch: 0,
        next_arc: vec![ArcId(u32::MAX); n],
        queue: Vec::with_capacity(n),
        out_vertices: Vec::with_capacity(n),
        out_arcs: Vec::with_capacity(n),
        options,
        stats,
        sink,
    };
    let _ = enumerator.e_stp(None, 0);
    enumerator.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visit::{collect_arc_paths, count_paths, first_k_arc_paths};
    use std::collections::HashSet;

    fn paths_of(d: &DiGraph, s: VertexId, t: VertexId) -> Vec<Vec<ArcId>> {
        collect_arc_paths(|sink| {
            enumerate_directed_st_paths(d, s, t, None, sink);
        })
    }

    #[test]
    fn single_arc() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(1));
        assert_eq!(paths, vec![vec![ArcId(0)]]);
    }

    #[test]
    fn no_path() {
        let d = DiGraph::from_arcs(3, &[(0, 1)]).unwrap();
        assert!(paths_of(&d, VertexId(0), VertexId(2)).is_empty());
        // Arc in the wrong direction.
        let d2 = DiGraph::from_arcs(2, &[(1, 0)]).unwrap();
        assert!(paths_of(&d2, VertexId(0), VertexId(1)).is_empty());
    }

    #[test]
    fn trivial_path() {
        let d = DiGraph::new(1);
        let paths = paths_of(&d, VertexId(0), VertexId(0));
        assert_eq!(paths, vec![Vec::<ArcId>::new()]);
    }

    #[test]
    fn diamond_has_two_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let paths: HashSet<Vec<ArcId>> =
            paths_of(&d, VertexId(0), VertexId(3)).into_iter().collect();
        let expected: HashSet<Vec<ArcId>> = [vec![ArcId(0), ArcId(2)], vec![ArcId(1), ArcId(3)]]
            .into_iter()
            .collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn parallel_arcs_are_distinct_paths() {
        let d = DiGraph::from_arcs(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(1));
        assert_eq!(paths.len(), 3);
        let firsts: HashSet<ArcId> = paths.iter().map(|p| p[0]).collect();
        assert_eq!(firsts.len(), 3);
    }

    #[test]
    fn complete_dag_path_count() {
        // Complete DAG on n vertices: number of 0 -> (n-1) paths is 2^(n-2).
        for n in 2..8usize {
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    arcs.push((u, v));
                }
            }
            let d = DiGraph::from_arcs(n, &arcs).unwrap();
            let count = count_paths(|sink| {
                enumerate_directed_st_paths(&d, VertexId(0), VertexId::new(n - 1), None, sink);
            });
            assert_eq!(count, 1u64 << (n - 2), "n = {n}");
        }
    }

    #[test]
    fn no_duplicates_on_dense_digraph() {
        // Bidirected K_5: every permutation path is found exactly once.
        let mut arcs = Vec::new();
        for u in 0..5usize {
            for v in 0..5usize {
                if u != v {
                    arcs.push((u, v));
                }
            }
        }
        let d = DiGraph::from_arcs(5, &arcs).unwrap();
        let paths = paths_of(&d, VertexId(0), VertexId(4));
        let unique: HashSet<&Vec<ArcId>> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len(), "no duplicates");
        // Count: sum over k of P(3, k) simple paths through k intermediates:
        // 1 + 3 + 6 + 6 = 16.
        assert_eq!(paths.len(), 16);
    }

    #[test]
    fn paths_are_simple_and_well_formed() {
        let mut arcs = Vec::new();
        for u in 0..6usize {
            for v in 0..6usize {
                if u != v {
                    arcs.push((u, v));
                }
            }
        }
        let d = DiGraph::from_arcs(6, &arcs).unwrap();
        enumerate_directed_st_paths(&d, VertexId(0), VertexId(5), None, &mut |p| {
            assert_eq!(p.vertices.len(), p.arcs.len() + 1);
            assert_eq!(p.vertices[0], VertexId(0));
            assert_eq!(*p.vertices.last().unwrap(), VertexId(5));
            let distinct: HashSet<VertexId> = p.vertices.iter().copied().collect();
            assert_eq!(distinct.len(), p.vertices.len(), "simple path");
            for (i, &a) in p.arcs.iter().enumerate() {
                assert_eq!(d.tail(a), p.vertices[i]);
                assert_eq!(d.head(a), p.vertices[i + 1]);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn allowed_mask_restricts_paths() {
        // Diamond with both midpoints; forbid vertex 1.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let allowed = vec![true, false, true, true];
        let paths = collect_arc_paths(|sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), Some(&allowed), sink);
        });
        assert_eq!(paths, vec![vec![ArcId(1), ArcId(3)]]);
    }

    #[test]
    fn early_termination_stops_quickly() {
        let mut arcs = Vec::new();
        for u in 0..7usize {
            for v in u + 1..7usize {
                arcs.push((u, v));
            }
        }
        let d = DiGraph::from_arcs(7, &arcs).unwrap();
        let got = first_k_arc_paths(3, |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(6), None, sink);
        });
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn naive_extendibility_gives_identical_output() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x11_11);
        for _ in 0..40 {
            let n = 3 + rng.gen_range(0..5usize);
            let m = rng.gen_range(0..=(n * (n - 1)).min(16));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            let fast = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_with(
                    &d,
                    s,
                    t,
                    None,
                    EnumerateOptions {
                        incremental_extendibility: true,
                    },
                    sink,
                );
            });
            let slow = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_with(
                    &d,
                    s,
                    t,
                    None,
                    EnumerateOptions {
                        incremental_extendibility: false,
                    },
                    sink,
                );
            });
            assert_eq!(fast, slow, "identical order and content; digraph {d:?}");
        }
    }

    #[test]
    fn lemma11_sweep_does_less_work() {
        // On a long-path-rich instance the naive per-prefix recomputation
        // must cost measurably more work units.
        let g = steiner_graph::generators::grid(4, 5);
        let doubled = steiner_graph::digraph::DoubledDigraph::new(&g);
        let d = &doubled.digraph;
        let (s, t) = (VertexId(0), VertexId::new(g.num_vertices() - 1));
        let run = |incremental: bool| {
            let mut sink = |_: PathEvent<'_>| ControlFlow::Continue(());
            enumerate_directed_st_paths_with(
                d,
                s,
                t,
                None,
                EnumerateOptions {
                    incremental_extendibility: incremental,
                },
                &mut sink,
            )
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.emitted, slow.emitted);
        assert!(
            slow.work > fast.work,
            "naive {} should exceed incremental {}",
            slow.work,
            fast.work
        );
    }

    #[test]
    fn stats_count_emissions() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut seen = 0;
        let stats = enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |_| {
            seen += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(stats.emitted, 2);
        assert_eq!(seen, 2);
        assert!(stats.work > 0);
    }
}
