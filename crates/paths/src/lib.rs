//! Linear-delay *s*-*t* path enumeration — §3 of *Linear-Delay Enumeration
//! for Minimal Steiner Problems* (PODS 2022).
//!
//! The centre of this crate is [`enumerate::enumerate_directed_st_paths`],
//! an implementation of the paper's Algorithm 1: the Read–Tarjan branching
//! scheme revisited with
//!
//! * the deterministic smallest-first-arc path finder `F-STP`,
//! * the Lemma 11 incremental reachability sweep that lists all extendible
//!   prefixes of a freshly found path in O(n + m) total, and
//! * the **alternating output method** (Uno \[33\]): solutions are emitted in
//!   pre-order at even recursion depths and post-order at odd depths, which
//!   turns the per-node O(n + m) work bound into an O(n + m) *delay* bound
//!   (Theorem 12).
//!
//! Undirected graphs are handled by doubling each edge into two opposite
//! arcs ([`undirected`]), and set-to-set (`S`-`T`) path enumeration — the
//! form every Steiner enumerator consumes — by a super-source construction
//! ([`stsets`]).
//!
//! All enumerators are push-based (they call a sink); the [`streaming`]
//! module turns any push enumeration into a pull [`Iterator`] running on a
//! dedicated large-stack thread.

#![deny(unsafe_code)]

pub mod enumerate;
pub mod naive;
pub mod streaming;
pub mod stsets;
pub mod undirected;
pub mod visit;

pub use enumerate::{enumerate_directed_st_paths, PathEnumStats};
pub use visit::{PathEvent, UndirectedPathEvent};
