//! Pull-based iteration over push-based enumerations.
//!
//! Enumerators in this workspace are recursive and push solutions into a
//! sink. This module runs such an enumeration on a dedicated worker thread
//! with a large stack (recursion depth is O(n)) and streams owned solutions
//! through a bounded channel, yielding a normal [`Iterator`]. Dropping the
//! iterator stops the producer at its next emission.

use crossbeam_channel::{bounded, Receiver};
use std::ops::ControlFlow;
use std::thread::JoinHandle;

/// Default worker stack: enumeration recursion is O(n) frames.
pub const DEFAULT_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Default channel capacity: enough to decouple producer and consumer
/// without buffering unbounded output.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// An iterator over the items produced by a background enumeration.
pub struct Enumeration<T> {
    rx: Option<Receiver<T>>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Enumeration<T> {
    /// Spawns `producer` on a worker thread. The producer receives a sink;
    /// it should forward each solution (as an owned `T`) and honour a
    /// `Break` result by returning promptly.
    pub fn spawn(
        producer: impl FnOnce(&mut dyn FnMut(T) -> ControlFlow<()>) + Send + 'static,
    ) -> Self {
        Self::spawn_with(DEFAULT_STACK_BYTES, DEFAULT_CHANNEL_CAPACITY, producer)
    }

    /// As [`Self::spawn`] with explicit stack size and channel capacity.
    pub fn spawn_with(
        stack_bytes: usize,
        capacity: usize,
        producer: impl FnOnce(&mut dyn FnMut(T) -> ControlFlow<()>) + Send + 'static,
    ) -> Self {
        let (tx, rx) = bounded::<T>(capacity);
        let handle = std::thread::Builder::new()
            .name("steiner-enumeration".to_string())
            .stack_size(stack_bytes)
            .spawn(move || {
                producer(&mut |item| {
                    // A send error means the consumer hung up: stop.
                    if tx.send(item).is_err() {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
            })
            .expect("spawn enumeration worker");
        Enumeration {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

impl<T> Iterator for Enumeration<T> {
    type Item = T;

    /// Yields the next item. When the producer thread ends, its outcome is
    /// surfaced: a normal return ends the iterator with `None`, while a
    /// **panic on the worker is re-raised here** — a partial enumeration
    /// is never silently passed off as a complete one.
    fn next(&mut self) -> Option<T> {
        match self.rx.as_ref()?.recv() {
            Ok(item) => Some(item),
            Err(_) => {
                // Channel closed: the producer is done. Join it and
                // propagate any panic to the consumer.
                self.rx = None;
                if let Some(handle) = self.handle.take() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                None
            }
        }
    }
}

impl<T> Drop for Enumeration<T> {
    fn drop(&mut self) {
        // Close the channel so the producer's next send fails, then join.
        // A producer panic is swallowed here (panicking in drop would
        // abort); consumers that care observe it through `next()`.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_directed_st_paths;
    use steiner_graph::{ArcId, DiGraph, VertexId};

    #[test]
    fn streams_all_paths() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        let all: Vec<Vec<ArcId>> = iter.collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn dropping_iterator_stops_producer() {
        // A graph with many paths; take 2 and drop.
        let g = steiner_graph::generators::theta_chain(8, 3);
        let doubled = steiner_graph::digraph::DoubledDigraph::new(&g);
        let d = doubled.digraph;
        let mut iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(8), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        assert!(iter.next().is_some());
        assert!(iter.next().is_some());
        drop(iter); // must not hang
    }

    #[test]
    fn empty_enumeration_yields_nothing() {
        let d = DiGraph::new(2);
        let iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(1), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        assert_eq!(iter.count(), 0);
    }
}
