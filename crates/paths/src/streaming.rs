//! Pull-based iteration over push-based enumerations, and the shard
//! worker-pool plumbing behind the parallel front-end.
//!
//! Enumerators in this workspace are recursive and push solutions into a
//! sink. [`Enumeration`] runs such an enumeration on a dedicated worker
//! thread with a large stack (recursion depth is O(n)) and streams owned
//! solutions through a bounded channel, yielding a normal [`Iterator`].
//! Dropping the iterator stops the producer at its next emission.
//!
//! The sharded variant replaces the single producer with a **pool of
//! shard workers**: each worker enumerates one residue class of the root
//! node's children and reports through its own bounded channel
//! ([`ShardMsg`]); [`ShardMerge`] interleaves the per-worker streams back
//! into the sequential engine's exact emission order (children in index
//! order, each child's solutions in discovery order), so the merged
//! stream is byte-identical to a single-threaded run. Backpressure comes
//! from the bounded channels — a worker that races ahead of the merge
//! point simply blocks on its next send.

use crossbeam_channel::{bounded, Receiver, Sender};
use std::ops::ControlFlow;
use std::thread::JoinHandle;

/// Default worker stack: enumeration recursion is O(n) frames.
pub const DEFAULT_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Default channel capacity: enough to decouple producer and consumer
/// without buffering unbounded output.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// An iterator over the items produced by a background enumeration.
pub struct Enumeration<T> {
    rx: Option<Receiver<T>>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Enumeration<T> {
    /// Spawns `producer` on a worker thread. The producer receives a sink;
    /// it should forward each solution (as an owned `T`) and honour a
    /// `Break` result by returning promptly.
    pub fn spawn(
        producer: impl FnOnce(&mut dyn FnMut(T) -> ControlFlow<()>) + Send + 'static,
    ) -> Self {
        Self::spawn_with(DEFAULT_STACK_BYTES, DEFAULT_CHANNEL_CAPACITY, producer)
    }

    /// As [`Self::spawn`] with explicit stack size and channel capacity.
    pub fn spawn_with(
        stack_bytes: usize,
        capacity: usize,
        producer: impl FnOnce(&mut dyn FnMut(T) -> ControlFlow<()>) + Send + 'static,
    ) -> Self {
        let (tx, rx) = bounded::<T>(capacity);
        let handle = std::thread::Builder::new()
            .name("steiner-enumeration".to_string())
            .stack_size(stack_bytes)
            .spawn(move || {
                producer(&mut |item| {
                    // A send error means the consumer hung up: stop.
                    if tx.send(item).is_err() {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
            })
            .expect("spawn enumeration worker");
        Enumeration {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

impl<T> Iterator for Enumeration<T> {
    type Item = T;

    /// Yields the next item. When the producer thread ends, its outcome is
    /// surfaced: a normal return ends the iterator with `None`, while a
    /// **panic on the worker is re-raised here** — a partial enumeration
    /// is never silently passed off as a complete one.
    fn next(&mut self) -> Option<T> {
        match self.rx.as_ref()?.recv() {
            Ok(item) => Some(item),
            Err(_) => {
                // Channel closed: the producer is done. Join it and
                // propagate any panic to the consumer.
                self.rx = None;
                if let Some(handle) = self.handle.take() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                None
            }
        }
    }
}

impl<T> Drop for Enumeration<T> {
    fn drop(&mut self) {
        // Close the channel so the producer's next send fails, then join.
        // A producer panic is swallowed here (panicking in drop would
        // abort); consumers that care observe it through `next()`.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One message from a shard worker to the deterministic merger. `child`
/// indices refer to the sequential engine's root-child order; `work` is
/// the sending worker's own monotone work counter at send time (the
/// merger sums per-worker deltas into one merged clock).
#[derive(Debug)]
pub enum ShardMsg<T> {
    /// A solution found inside root child `child`.
    Item {
        /// Root-child index the solution belongs to.
        child: u64,
        /// The solution payload.
        item: T,
        /// The worker's work counter at emission.
        work: u64,
    },
    /// The worker finished root child `child` (sent for every child the
    /// worker owns, even solution-free ones — the merger's cue to move
    /// to the next child index).
    ChildDone {
        /// The completed root-child index.
        child: u64,
        /// The worker's work counter at completion.
        work: u64,
    },
    /// Progress heartbeat, sent (throttled) so the merger's release
    /// clock keeps advancing between solutions in queued mode.
    Tick {
        /// The worker's current work counter.
        work: u64,
    },
    /// The worker ran to completion and saw `children` root children in
    /// total. Every completing worker reports the same number (they all
    /// run the same deterministic root branch), so the first `Done` the
    /// merger consumes fixes the merge's horizon.
    Done {
        /// Total number of root children.
        children: u64,
        /// The worker's final work counter.
        work: u64,
    },
    /// A subtree hand-off marker (work-stealing shard pools): the sending
    /// worker reached a branch child it will *not* execute itself, and
    /// whoever does execute it will send that subtree's messages — the
    /// same `Item`/`Tick`/`Spawned` grammar, terminated by a
    /// [`ShardMsg::Done`] with `children: 0` — over the dedicated `rx`
    /// channel. Because the marker sits in the sender's stream at exactly
    /// the position where the subtree's solutions belong, the merger
    /// reproduces the sequential order by simply draining `rx` to
    /// completion (recursively, since stolen subtrees may themselves
    /// spawn) before reading the next message of the current stream.
    Spawned {
        /// Pool-wide task id, for coordinator claim-by-id bookkeeping.
        task: u64,
        /// The channel the subtree's executor sends the subtree on.
        rx: Receiver<ShardMsg<T>>,
    },
    /// The worker's preparation failed; the error itself travels out of
    /// band (this crate does not know the caller's error type).
    Failed,
}

/// Sending halves of a shard pool's channels, one per worker.
pub type ShardSenders<T> = Vec<Sender<ShardMsg<T>>>;
/// Receiving halves of a shard pool's channels, one per worker.
pub type ShardReceivers<T> = Vec<Receiver<ShardMsg<T>>>;

/// Creates the per-worker bounded channels of a shard pool.
pub fn shard_channels<T>(workers: usize, capacity: usize) -> (ShardSenders<T>, ShardReceivers<T>) {
    (0..workers).map(|_| bounded(capacity)).unzip()
}

/// A merged event produced by [`ShardMerge::next_event`], in the exact
/// order the sequential engine would have produced it.
#[derive(Debug)]
pub enum MergeEvent<T> {
    /// The next solution of the merged stream.
    Item(T),
    /// The merged work clock advanced without a solution (a worker tick
    /// or a child boundary) — drive any release schedule from
    /// [`ShardMerge::work`].
    Tick,
    /// The stream being drained handed off the subtree at the current
    /// position to task `task`, to be delivered over `rx`. The caller
    /// either claims the task itself (executing the subtree inline and
    /// reporting its cost through [`ShardMerge::advance_external`]) or
    /// pushes `rx` with [`ShardMerge::enter_subtree`] so the merge drains
    /// the executor's channel next.
    Subtree {
        /// Pool-wide task id.
        task: u64,
        /// The subtree's delivery channel.
        rx: Receiver<ShardMsg<T>>,
    },
    /// All root children have been drained; the merge is complete.
    Finished,
    /// A worker reported failure or hung up without finishing. The
    /// caller decides whether that is an error (out-of-band slot) or a
    /// panic (propagated when the worker scope joins).
    Failed,
}

/// Deterministic k-way merge over shard-worker channels: child `c` is
/// owned by worker `c % k`, and the merger only ever reads the channel of
/// the child it is currently draining, so per-channel FIFO order plus the
/// child rotation reproduce the sequential emission order exactly.
///
/// With work stealing, "the channel of the child it is currently
/// draining" generalizes to a *stack* of channels: a
/// [`ShardMsg::Spawned`] marker suspends the current stream and (via
/// [`Self::enter_subtree`]) pushes the spawned task's channel, which is
/// drained to its `Done` before the suspended stream resumes — a DFS
/// walk over the hand-off tree that lands every solution at exactly its
/// sequential position, regardless of which worker executed which
/// subtree.
pub struct ShardMerge<T> {
    rxs: Vec<Receiver<ShardMsg<T>>>,
    /// Last observed per-worker work counters.
    clocks: Vec<u64>,
    /// Merged monotone clock: the sum of the per-worker counters.
    clock: u64,
    next_child: u64,
    /// Total child count, once some worker's `Done` established it.
    total: Option<u64>,
    /// Suspended-stream stack: the top entry is the task channel being
    /// drained right now (empty = draining worker channels).
    tasks: Vec<TaskStream<T>>,
}

/// One entered subtree channel plus its clock baseline. A task's
/// executor reports its *own* absolute work counter (which may already
/// include earlier root-phase and stolen-task work), so the first
/// message of each task stream establishes a baseline contributing 0 to
/// the merged clock and later messages contribute their delta — the
/// merged clock stays monotone and never double-counts an executor that
/// delivers several task streams.
struct TaskStream<T> {
    rx: Receiver<ShardMsg<T>>,
    baseline: Option<u64>,
}

impl<T> ShardMerge<T> {
    /// Wraps the workers' receive ends (one per shard, in shard order).
    pub fn new(rxs: Vec<Receiver<ShardMsg<T>>>) -> Self {
        let clocks = vec![0; rxs.len()];
        ShardMerge {
            rxs,
            clocks,
            clock: 0,
            next_child: 0,
            total: None,
            tasks: Vec::new(),
        }
    }

    /// The merged work clock: the sum of every worker's last observed
    /// work counter. Monotone, and advanced by every received message.
    pub fn work(&self) -> u64 {
        self.clock
    }

    fn advance(&mut self, worker: usize, work: u64) {
        let prev = self.clocks[worker];
        if work > prev {
            self.clock += work - prev;
            self.clocks[worker] = work;
        }
    }

    /// Advances the merged clock by an externally measured amount of work
    /// — the inline-execution path, where the caller itself replays a
    /// claimed subtree instead of entering its channel.
    pub fn advance_external(&mut self, delta: u64) {
        self.clock += delta;
    }

    /// Suspends the current stream and drains `rx` (a
    /// [`MergeEvent::Subtree`] channel) until its executor's `Done`.
    pub fn enter_subtree(&mut self, rx: Receiver<ShardMsg<T>>) {
        self.tasks.push(TaskStream { rx, baseline: None });
    }

    /// Baseline-and-delta clock advance for the top task stream.
    fn advance_task(clock: &mut u64, top: &mut TaskStream<T>, work: u64) {
        match top.baseline {
            None => top.baseline = Some(work),
            Some(prev) if work > prev => {
                *clock += work - prev;
                top.baseline = Some(work);
            }
            Some(_) => {}
        }
    }

    /// Blocks for the next merged event. After [`MergeEvent::Finished`]
    /// or [`MergeEvent::Failed`], drop the merge to hang up the workers.
    pub fn next_event(&mut self) -> MergeEvent<T> {
        loop {
            // A suspended-stream stack entry always has priority: the
            // subtree it carries sits *before* everything still queued on
            // the worker channels.
            if let Some(top) = self.tasks.last_mut() {
                let Ok(msg) = top.rx.recv() else {
                    // The executor hung up mid-subtree.
                    return MergeEvent::Failed;
                };
                match msg {
                    ShardMsg::Item { item, work, .. } => {
                        Self::advance_task(&mut self.clock, top, work);
                        return MergeEvent::Item(item);
                    }
                    ShardMsg::Tick { work } => {
                        Self::advance_task(&mut self.clock, top, work);
                        return MergeEvent::Tick;
                    }
                    ShardMsg::Spawned { task, rx } => {
                        // A stolen subtree stole a deeper subtree.
                        return MergeEvent::Subtree { task, rx };
                    }
                    ShardMsg::Done { children, work } => {
                        debug_assert_eq!(children, 0, "task streams have no root children");
                        Self::advance_task(&mut self.clock, top, work);
                        self.tasks.pop();
                        return MergeEvent::Tick;
                    }
                    ShardMsg::ChildDone { .. } => {
                        debug_assert!(false, "ChildDone is a worker-channel message");
                        return MergeEvent::Failed;
                    }
                    ShardMsg::Failed => return MergeEvent::Failed,
                }
            }
            if let Some(total) = self.total {
                if self.next_child >= total {
                    return MergeEvent::Finished;
                }
            }
            let owner = (self.next_child % self.rxs.len() as u64) as usize;
            let Ok(msg) = self.rxs[owner].recv() else {
                // The owner hung up without `Done`: it panicked or was
                // stopped; the spawning scope surfaces which.
                return MergeEvent::Failed;
            };
            match msg {
                ShardMsg::Item { child, item, work } => {
                    self.advance(owner, work);
                    debug_assert_eq!(child, self.next_child, "FIFO per-child order");
                    return MergeEvent::Item(item);
                }
                ShardMsg::ChildDone { child, work } => {
                    self.advance(owner, work);
                    debug_assert_eq!(child, self.next_child, "children complete in order");
                    self.next_child += 1;
                    return MergeEvent::Tick;
                }
                ShardMsg::Tick { work } => {
                    self.advance(owner, work);
                    return MergeEvent::Tick;
                }
                ShardMsg::Spawned { task, rx } => {
                    return MergeEvent::Subtree { task, rx };
                }
                ShardMsg::Done { children, work } => {
                    // The owner is out of children entirely, so the
                    // horizon is at most `next_child` (its earlier
                    // `ChildDone`s were consumed first — FIFO): record
                    // it and re-check the loop condition.
                    self.advance(owner, work);
                    debug_assert!(self.total.is_none_or(|t| t == children));
                    self.total = Some(children);
                }
                ShardMsg::Failed => return MergeEvent::Failed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_directed_st_paths;
    use steiner_graph::{ArcId, DiGraph, VertexId};

    #[test]
    fn streams_all_paths() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(3), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        let all: Vec<Vec<ArcId>> = iter.collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn dropping_iterator_stops_producer() {
        // A graph with many paths; take 2 and drop.
        let g = steiner_graph::generators::theta_chain(8, 3);
        let doubled = steiner_graph::digraph::DoubledDigraph::new(&g);
        let d = doubled.digraph;
        let mut iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(8), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        assert!(iter.next().is_some());
        assert!(iter.next().is_some());
        drop(iter); // must not hang
    }

    #[test]
    fn subtree_stack_merges_in_position_with_baselined_clock() {
        // One worker, one root child containing [1, <spawned: 2, 3>, 4]:
        // the merged stream must interleave the task channel at exactly
        // the marker's position, and the executor's absolute counter
        // (starting at 1000, far above the worker's) must contribute only
        // deltas after its baseline.
        let (txs, rxs) = shard_channels::<u32>(1, 16);
        let (task_tx, task_rx) = bounded(16);
        let w = &txs[0];
        w.send(ShardMsg::Item {
            child: 0,
            item: 1,
            work: 10,
        })
        .unwrap();
        w.send(ShardMsg::Spawned {
            task: 7,
            rx: task_rx,
        })
        .unwrap();
        w.send(ShardMsg::Item {
            child: 0,
            item: 4,
            work: 30,
        })
        .unwrap();
        w.send(ShardMsg::ChildDone { child: 0, work: 31 }).unwrap();
        w.send(ShardMsg::Done {
            children: 1,
            work: 31,
        })
        .unwrap();
        task_tx
            .send(ShardMsg::Item {
                child: 0,
                item: 2,
                work: 1000,
            })
            .unwrap();
        task_tx
            .send(ShardMsg::Item {
                child: 0,
                item: 3,
                work: 1005,
            })
            .unwrap();
        task_tx
            .send(ShardMsg::Done {
                children: 0,
                work: 1006,
            })
            .unwrap();
        drop(task_tx);
        drop(txs);

        let mut merge = ShardMerge::new(rxs);
        let mut items = Vec::new();
        loop {
            match merge.next_event() {
                MergeEvent::Item(x) => items.push(x),
                MergeEvent::Tick => {}
                MergeEvent::Subtree { task, rx } => {
                    assert_eq!(task, 7);
                    merge.enter_subtree(rx);
                }
                MergeEvent::Finished => break,
                MergeEvent::Failed => panic!("merge failed"),
            }
        }
        assert_eq!(items, vec![1, 2, 3, 4], "subtree lands at its marker");
        // Clock: worker contributes 31; the task stream's first message
        // baselines at 1000 (contributing 0) and then adds 5 + 1 = 6.
        assert_eq!(merge.work(), 31 + 6);
    }

    #[test]
    fn advance_external_moves_the_merged_clock() {
        let (txs, rxs) = shard_channels::<u32>(1, 4);
        txs[0]
            .send(ShardMsg::Done {
                children: 0,
                work: 0,
            })
            .unwrap();
        drop(txs);
        let mut merge = ShardMerge::new(rxs);
        merge.advance_external(17);
        assert_eq!(merge.work(), 17);
        assert!(matches!(merge.next_event(), MergeEvent::Finished));
    }

    #[test]
    fn empty_enumeration_yields_nothing() {
        let d = DiGraph::new(2);
        let iter = Enumeration::spawn(move |sink| {
            enumerate_directed_st_paths(&d, VertexId(0), VertexId(1), None, &mut |p| {
                sink(p.arcs.to_vec())
            });
        });
        assert_eq!(iter.count(), 0);
    }
}
