//! Set-to-vertex path enumeration: the `S`-`T` extension at the end of §3.
//!
//! Every Steiner enumerator branches on the "`V(T)`-`w` paths" of some
//! graph: paths that start at any vertex of a source set `S`, end at `w`,
//! and whose internal vertices avoid `S` (and `w`). The paper realizes this
//! by adding a super-source `s` with an arc to each source and enumerating
//! `s`-`t` paths. We do exactly that, with one refinement that keeps the
//! original edge identities: each original boundary edge `{u, v}` with
//! `u ∈ S` becomes its *own* super-source arc `s* → v`, so two paths
//! leaving the source set through different boundary edges stay distinct
//! (required for the correctness of Algorithm 2's branching — children are
//! indexed by paths, not by their vertex sets).

use crate::enumerate::{
    enumerate_directed_st_paths, enumerate_paths_view, EnumerateOptions, PathEnumStats,
    PathScratch, VirtualSourceView,
};
use crate::visit::{PathEvent, UndirectedPathEvent};
use std::ops::ControlFlow;
use steiner_graph::digraph::DiGraph;
use steiner_graph::{ArcId, CsrDigraph, EdgeId, UndirectedGraph, VertexId};

/// A super-source instance for enumerating `S`-`w` paths of an undirected
/// multigraph.
///
/// Vertices `0..n` are the original vertices; vertex `n` is the
/// super-source. Source-set vertices themselves are excluded from the
/// digraph (internal vertices of an `S`-`w` path may not lie in `S`).
pub struct SourceSetInstance {
    digraph: DiGraph,
    /// For each arc: the original undirected edge it represents.
    arc_edge: Vec<EdgeId>,
    /// For super-source arcs: the original source endpoint of the boundary
    /// edge (so reported paths can name their true first vertex).
    arc_source: Vec<Option<VertexId>>,
    super_source: VertexId,
}

impl SourceSetInstance {
    /// Builds the instance.
    ///
    /// * `in_sources[v]` — whether `v ∈ S`;
    /// * `allowed` — optional global vertex mask (masked vertices are
    ///   excluded entirely).
    ///
    /// Edges with both endpoints in `S` are dropped; boundary edges become
    /// super-source arcs; interior edges become arc pairs.
    pub fn new(g: &UndirectedGraph, in_sources: &[bool], allowed: Option<&[bool]>) -> Self {
        let n = g.num_vertices();
        debug_assert_eq!(in_sources.len(), n);
        let mut d = DiGraph::new(n + 1);
        let super_source = VertexId::new(n);
        let mut arc_edge = Vec::new();
        let mut arc_source = Vec::new();
        let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if !ok(u) || !ok(v) {
                continue;
            }
            match (in_sources[u.index()], in_sources[v.index()]) {
                (true, true) => {}
                (true, false) => {
                    d.add_arc(super_source, v).expect("boundary arc");
                    arc_edge.push(e);
                    arc_source.push(Some(u));
                }
                (false, true) => {
                    d.add_arc(super_source, u).expect("boundary arc");
                    arc_edge.push(e);
                    arc_source.push(Some(v));
                }
                (false, false) => {
                    d.add_arc(u, v).expect("interior arc");
                    arc_edge.push(e);
                    arc_source.push(None);
                    d.add_arc(v, u).expect("interior arc");
                    arc_edge.push(e);
                    arc_source.push(None);
                }
            }
        }
        SourceSetInstance {
            digraph: d,
            arc_edge,
            arc_source,
            super_source,
        }
    }

    /// Enumerates all `S`-`w` paths with O(n + m) delay, reporting each as
    /// an [`UndirectedPathEvent`] whose first vertex is the true source-set
    /// endpoint.
    ///
    /// `target` must not be in `S`.
    pub fn enumerate(
        &self,
        target: VertexId,
        sink: &mut dyn FnMut(UndirectedPathEvent<'_>) -> ControlFlow<()>,
    ) -> PathEnumStats {
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut vertices: Vec<VertexId> = Vec::new();
        enumerate_directed_st_paths(&self.digraph, self.super_source, target, None, &mut |p| {
            debug_assert!(!p.arcs.is_empty(), "super-source is never the target");
            edges.clear();
            vertices.clear();
            let first = p.arcs[0];
            vertices
                .push(self.arc_source[first.index()].expect("first arc leaves the super-source"));
            vertices.extend_from_slice(&p.vertices[1..]);
            edges.extend(p.arcs.iter().map(|&a| self.arc_edge[a.index()]));
            sink(UndirectedPathEvent {
                vertices: &vertices,
                edges: &edges,
            })
        })
    }

    /// The super-source id (for tests and diagnostics).
    pub fn super_source(&self) -> VertexId {
        self.super_source
    }
}

/// Enumerates all `S`-`w` paths over a **fixed** CSR digraph with a
/// *dynamic* source set, without rebuilding any graph: the allocation-free
/// replacement for materializing a [`SourceSetInstance`] per branch node.
///
/// * `csr` — the host digraph: [`CsrDigraph::doubled`] of an undirected
///   graph (arc `2e`/`2e + 1` per edge), or a directed instance's own CSR;
/// * `sources` — the vertices of `S`, each listed once; vertices to be
///   excluded entirely (an `allowed` mask) must be **pre-marked** by the
///   caller via [`PathScratch::begin`]`(csr.num_vertices() + 1)` before
///   the call, and filtered out of `sources`;
/// * `boundary_buf` — caller-owned reusable buffer for the virtual
///   super-source adjacency (reserve `csr.num_arcs()` once to keep the
///   hot path allocation-free).
///
/// Paths start at a vertex of `S` (reported as `vertices[0]`), end at
/// `target`, and avoid `S` internally. Arc ids are host arc ids. `target`
/// must not be in `S`; boundary arcs are ordered by arc id, fixing the
/// child order `≺` deterministically.
pub fn enumerate_source_set_paths_csr(
    csr: &CsrDigraph,
    sources: &[VertexId],
    target: VertexId,
    options: EnumerateOptions,
    scratch: &mut PathScratch,
    boundary_buf: &mut Vec<(VertexId, ArcId)>,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    let n = csr.num_vertices();
    let vsrc = VertexId::new(n);
    let removed = scratch.removed_mask(n + 1);
    for &u in sources {
        removed[u.index()] = true;
    }
    boundary_buf.clear();
    for &u in sources {
        for &(v, a) in csr.out_adjacency(u) {
            if !removed[v.index()] {
                boundary_buf.push((v, a));
            }
        }
    }
    // Arc-id order is the total order `≺` the materialized super-source
    // construction used; keeping it makes the child order (and thus the
    // enumeration order) identical to the historical one.
    boundary_buf.sort_unstable_by_key(|&(_, a)| a);
    if removed[target.index()] {
        return PathEnumStats::default();
    }
    let view = VirtualSourceView {
        base: csr,
        boundary: boundary_buf,
        source: vsrc,
    };
    enumerate_paths_view(&view, vsrc, target, options, true, scratch, sink)
}

/// A super-source instance over a *directed* host graph, for the §5.2
/// directed Steiner enumerator: enumerates directed `S`-`w` paths (first
/// vertex in `S`, internal vertices outside `S`).
pub struct DiSourceSetInstance {
    digraph: DiGraph,
    arc_orig: Vec<ArcId>,
    arc_source: Vec<Option<VertexId>>,
    super_source: VertexId,
}

impl DiSourceSetInstance {
    /// Builds the instance from a digraph and a source-set mask. Arcs into
    /// the source set are dropped (no path may re-enter `S`); arcs inside
    /// `S` are dropped; arcs leaving `S` become super-source arcs.
    pub fn new(d: &DiGraph, in_sources: &[bool], allowed: Option<&[bool]>) -> Self {
        let n = d.num_vertices();
        debug_assert_eq!(in_sources.len(), n);
        let mut dd = DiGraph::new(n + 1);
        let super_source = VertexId::new(n);
        let mut arc_orig = Vec::new();
        let mut arc_source = Vec::new();
        let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
        for a in d.arcs() {
            let (t, h) = d.arc(a);
            if !ok(t) || !ok(h) {
                continue;
            }
            match (in_sources[t.index()], in_sources[h.index()]) {
                (true, true) | (false, true) => {}
                (true, false) => {
                    dd.add_arc(super_source, h).expect("boundary arc");
                    arc_orig.push(a);
                    arc_source.push(Some(t));
                }
                (false, false) => {
                    dd.add_arc(t, h).expect("interior arc");
                    arc_orig.push(a);
                    arc_source.push(None);
                }
            }
        }
        DiSourceSetInstance {
            digraph: dd,
            arc_orig,
            arc_source,
            super_source,
        }
    }

    /// Enumerates all directed `S`-`w` paths, reporting original arc ids.
    pub fn enumerate(
        &self,
        target: VertexId,
        sink: &mut dyn FnMut(crate::visit::PathEvent<'_>) -> ControlFlow<()>,
    ) -> PathEnumStats {
        let mut arcs: Vec<ArcId> = Vec::new();
        let mut vertices: Vec<VertexId> = Vec::new();
        enumerate_directed_st_paths(&self.digraph, self.super_source, target, None, &mut |p| {
            debug_assert!(!p.arcs.is_empty());
            arcs.clear();
            vertices.clear();
            let first = p.arcs[0];
            vertices
                .push(self.arc_source[first.index()].expect("first arc leaves the super-source"));
            vertices.extend_from_slice(&p.vertices[1..]);
            arcs.extend(p.arcs.iter().map(|&a| self.arc_orig[a.index()]));
            sink(crate::visit::PathEvent {
                vertices: &vertices,
                arcs: &arcs,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn source_set_paths_in_a_square() {
        // Square 0-1-2-3-0; S = {0}; w = 2. Paths: (0,1,2) and (0,3,2).
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let inst = SourceSetInstance::new(&g, &[true, false, false, false], None);
        let mut got: Vec<(Vec<VertexId>, Vec<EdgeId>)> = Vec::new();
        inst.enumerate(VertexId(2), &mut |p| {
            got.push((p.vertices.to_vec(), p.edges.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(got.len(), 2);
        for (verts, edges) in &got {
            assert_eq!(verts[0], VertexId(0));
            assert_eq!(*verts.last().unwrap(), VertexId(2));
            assert_eq!(verts.len(), edges.len() + 1);
        }
    }

    #[test]
    fn boundary_edges_from_distinct_sources_are_distinct_paths() {
        // S = {0, 1}, both adjacent to 2, target 3 behind 2:
        //   0-2, 1-2, 2-3. Two S-3 paths (via the two boundary edges).
        let g = UndirectedGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        let inst = SourceSetInstance::new(&g, &[true, true, false, false], None);
        let mut firsts = Vec::new();
        inst.enumerate(VertexId(3), &mut |p| {
            firsts.push(p.vertices[0]);
            ControlFlow::Continue(())
        });
        firsts.sort_unstable();
        assert_eq!(firsts, vec![VertexId(0), VertexId(1)]);
    }

    #[test]
    fn internal_vertices_avoid_source_set() {
        // 0 (source) - 1 - 2 (source) - 3; target 3. The only S-3 path is
        // (2, 3): a path through 2 from 0 would have a source internally.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let inst = SourceSetInstance::new(&g, &[true, false, true, false], None);
        let mut got = Vec::new();
        inst.enumerate(VertexId(3), &mut |p| {
            got.push(p.vertices.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got, vec![vec![VertexId(2), VertexId(3)]]);
    }

    #[test]
    fn source_source_edges_are_dropped() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let inst = SourceSetInstance::new(&g, &[true, true, false], None);
        let mut count = 0;
        inst.enumerate(VertexId(2), &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1, "only 1-2; the edge {{0,1}} is inside S");
    }

    #[test]
    fn directed_source_set_instance() {
        // S = {0}; arcs 0->1, 1->2, 2->0 (back into S, dropped), 0->2.
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]).unwrap();
        let inst = DiSourceSetInstance::new(&d, &[true, false, false], None);
        let mut got: HashSet<Vec<ArcId>> = HashSet::new();
        inst.enumerate(VertexId(2), &mut |p| {
            got.insert(p.arcs.to_vec());
            ControlFlow::Continue(())
        });
        let expected: HashSet<Vec<ArcId>> = [vec![ArcId(0), ArcId(1)], vec![ArcId(3)]]
            .into_iter()
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn csr_source_set_matches_materialized_instance() {
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeSet;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x05e7);
        let mut scratch = PathScratch::new();
        let mut boundary = Vec::new();
        for case in 0..40 {
            let n = 3 + case % 6;
            let g = steiner_graph::generators::random_connected_graph(n, n + case % 4, &mut rng);
            let csr = CsrDigraph::doubled(&g);
            let in_sources: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let sources: Vec<VertexId> = (0..n)
                .filter(|&v| in_sources[v])
                .map(VertexId::new)
                .collect();
            let target = VertexId::new(n - 1);
            if sources.is_empty() || in_sources[target.index()] {
                continue;
            }
            let inst = SourceSetInstance::new(&g, &in_sources, None);
            let mut want: BTreeSet<(Vec<VertexId>, Vec<EdgeId>)> = BTreeSet::new();
            inst.enumerate(target, &mut |p| {
                want.insert((p.vertices.to_vec(), p.edges.to_vec()));
                ControlFlow::Continue(())
            });
            let mut got: BTreeSet<(Vec<VertexId>, Vec<EdgeId>)> = BTreeSet::new();
            scratch.begin(n + 1);
            enumerate_source_set_paths_csr(
                &csr,
                &sources,
                target,
                EnumerateOptions::default(),
                &mut scratch,
                &mut boundary,
                &mut |p| {
                    let edges: Vec<EdgeId> =
                        p.arcs.iter().map(|a| EdgeId::new(a.index() / 2)).collect();
                    assert!(in_sources[p.vertices[0].index()], "starts inside S");
                    got.insert((p.vertices.to_vec(), edges));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(got, want, "graph {g:?} sources {sources:?}");
        }
    }

    #[test]
    fn csr_directed_source_set_matches_materialized_instance() {
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeSet;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1_5e7);
        let mut scratch = PathScratch::new();
        let mut boundary = Vec::new();
        for case in 0..40 {
            let n = 3 + case % 5;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let csr = CsrDigraph::from_digraph(&d);
            let in_sources: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let sources: Vec<VertexId> = (0..n)
                .filter(|&v| in_sources[v])
                .map(VertexId::new)
                .collect();
            let target = VertexId::new(n - 1);
            if sources.is_empty() || in_sources[target.index()] {
                continue;
            }
            let inst = DiSourceSetInstance::new(&d, &in_sources, None);
            let mut want: BTreeSet<Vec<ArcId>> = BTreeSet::new();
            inst.enumerate(target, &mut |p| {
                want.insert(p.arcs.to_vec());
                ControlFlow::Continue(())
            });
            let mut got: BTreeSet<Vec<ArcId>> = BTreeSet::new();
            scratch.begin(n + 1);
            enumerate_source_set_paths_csr(
                &csr,
                &sources,
                target,
                EnumerateOptions::default(),
                &mut scratch,
                &mut boundary,
                &mut |p| {
                    got.insert(p.arcs.to_vec());
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(got, want, "digraph {d:?} sources {sources:?}");
        }
    }

    #[test]
    fn allowed_mask_excludes_vertices() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let allowed = vec![true, false, true, true];
        let inst = SourceSetInstance::new(&g, &[true, false, false, false], Some(&allowed));
        let mut got = Vec::new();
        inst.enumerate(VertexId(3), &mut |p| {
            got.push(p.edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got, vec![vec![EdgeId(2), EdgeId(3)]]);
    }
}
