//! Undirected wrappers for the directed enumerator.
//!
//! As in the paper (after Theorem 12): "the algorithm can be applied to
//! undirected graphs by simply replacing each undirected edge with two
//! directed edges with opposite directions". Each simple undirected path is
//! found exactly once (in its s → t orientation).

use crate::enumerate::{enumerate_directed_st_paths, PathEnumStats};
use crate::naive::enumerate_directed_st_paths_naive;
use crate::visit::UndirectedPathEvent;
use std::ops::ControlFlow;
use steiner_graph::digraph::DoubledDigraph;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

/// Enumerates all simple `s`-`t` paths of an undirected multigraph with
/// O(n + m) delay, reporting undirected edge ids.
///
/// ```
/// use steiner_paths::undirected::enumerate_st_paths;
/// use steiner_graph::{UndirectedGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// // Square: two ways between opposite corners.
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let stats = enumerate_st_paths(&g, VertexId(0), VertexId(2), None, &mut |p| {
///     assert_eq!(p.edges.len(), 2);
///     ControlFlow::Continue(())
/// });
/// assert_eq!(stats.emitted, 2);
/// ```
pub fn enumerate_st_paths(
    g: &UndirectedGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    sink: &mut dyn FnMut(UndirectedPathEvent<'_>) -> ControlFlow<()>,
) -> PathEnumStats {
    let doubled = DoubledDigraph::new(g);
    let mut edges: Vec<EdgeId> = Vec::new();
    enumerate_directed_st_paths(&doubled.digraph, s, t, allowed, &mut |p| {
        edges.clear();
        edges.extend(p.arcs.iter().map(|&a| doubled.arc_to_edge(a)));
        sink(UndirectedPathEvent {
            vertices: p.vertices,
            edges: &edges,
        })
    })
}

/// Naive backtracking undirected `s`-`t` path enumeration (test oracle).
pub fn enumerate_st_paths_naive(
    g: &UndirectedGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    sink: &mut dyn FnMut(UndirectedPathEvent<'_>) -> ControlFlow<()>,
) -> u64 {
    let doubled = DoubledDigraph::new(g);
    let mut edges: Vec<EdgeId> = Vec::new();
    enumerate_directed_st_paths_naive(&doubled.digraph, s, t, allowed, &mut |p| {
        edges.clear();
        edges.extend(p.arcs.iter().map(|&a| doubled.arc_to_edge(a)));
        sink(UndirectedPathEvent {
            vertices: p.vertices,
            edges: &edges,
        })
    })
}

/// Collects every emitted undirected path as an edge sequence.
pub fn collect_edge_paths(
    run: impl FnOnce(&mut dyn FnMut(UndirectedPathEvent<'_>) -> ControlFlow<()>),
) -> Vec<Vec<EdgeId>> {
    let mut out = Vec::new();
    run(&mut |p| {
        out.push(p.edges.to_vec());
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;
    use steiner_graph::generators;

    #[test]
    fn square_has_two_paths() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let paths = collect_edge_paths(|sink| {
            enumerate_st_paths(&g, VertexId(0), VertexId(2), None, sink);
        });
        let set: HashSet<Vec<EdgeId>> = paths.into_iter().collect();
        let expected: HashSet<Vec<EdgeId>> =
            [vec![EdgeId(0), EdgeId(1)], vec![EdgeId(3), EdgeId(2)]]
                .into_iter()
                .collect();
        assert_eq!(set, expected);
    }

    #[test]
    fn theta_graph_path_count() {
        // θ(k, len): exactly k s-t paths.
        for k in 1..6 {
            let g = generators::theta_graph(k, 3);
            let paths = collect_edge_paths(|sink| {
                enumerate_st_paths(&g, VertexId(0), VertexId(1), None, sink);
            });
            assert_eq!(paths.len(), k);
        }
    }

    #[test]
    fn theta_chain_path_count_is_width_pow_blocks() {
        let g = generators::theta_chain(3, 3);
        let paths = collect_edge_paths(|sink| {
            enumerate_st_paths(&g, VertexId(0), VertexId(3), None, sink);
        });
        assert_eq!(paths.len(), 27);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xdead);
        for case in 0..80 {
            let n = 2 + case % 7;
            let g = generators::random_connected_graph(n, n - 1 + rng.gen_range(0..4), &mut rng);
            let s = VertexId::new(rng.gen_range(0..n));
            let t = VertexId::new(rng.gen_range(0..n));
            if s == t {
                continue;
            }
            let fast: HashSet<Vec<EdgeId>> = collect_edge_paths(|sink| {
                enumerate_st_paths(&g, s, t, None, sink);
            })
            .into_iter()
            .collect();
            let slow: HashSet<Vec<EdgeId>> = collect_edge_paths(|sink| {
                enumerate_st_paths_naive(&g, s, t, None, sink);
            })
            .into_iter()
            .collect();
            assert_eq!(fast, slow, "graph {g:?} s={s} t={t}");
        }
    }

    #[test]
    fn grid_path_counts_are_consistent() {
        let g = generators::grid(3, 3);
        let fast = collect_edge_paths(|sink| {
            enumerate_st_paths(&g, VertexId(0), VertexId(8), None, sink);
        });
        let slow = collect_edge_paths(|sink| {
            enumerate_st_paths_naive(&g, VertexId(0), VertexId(8), None, sink);
        });
        assert_eq!(fast.len(), slow.len());
        let set: HashSet<Vec<EdgeId>> = fast.iter().cloned().collect();
        assert_eq!(set.len(), fast.len(), "no duplicates");
        // Known count of simple corner-to-corner paths in the 3x3 grid.
        assert_eq!(fast.len(), 12);
    }
}
