//! Visitor plumbing: path events, sinks, collectors and delay recorders.
//!
//! Enumeration is push-based so that the delay guarantee is *observable*:
//! the algorithm invokes a sink the instant a solution is complete, and the
//! sink may stop the enumeration early by returning
//! [`ControlFlow::Break`] — the basis for top-k queries.

use std::ops::ControlFlow;
use std::time::{Duration, Instant};
use steiner_graph::{ArcId, EdgeId, VertexId};

/// A directed path reported by an enumerator. Slices borrow enumerator
/// scratch space: copy what you need to keep.
#[derive(Copy, Clone, Debug)]
pub struct PathEvent<'a> {
    /// The path's vertices, source first, target last (`arcs.len() + 1` of
    /// them; a trivial `s = t` path has one vertex and no arcs).
    pub vertices: &'a [VertexId],
    /// The arcs traversed, in order.
    pub arcs: &'a [ArcId],
}

/// An undirected path reported via [`crate::undirected`]. Slices borrow
/// enumerator scratch space.
#[derive(Copy, Clone, Debug)]
pub struct UndirectedPathEvent<'a> {
    /// The path's vertices, source first.
    pub vertices: &'a [VertexId],
    /// The undirected edges traversed, in order.
    pub edges: &'a [EdgeId],
}

/// Collects every emitted arc sequence.
pub fn collect_arc_paths(
    run: impl FnOnce(&mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>),
) -> Vec<Vec<ArcId>> {
    let mut out = Vec::new();
    run(&mut |p| {
        out.push(p.arcs.to_vec());
        ControlFlow::Continue(())
    });
    out
}

/// Counts emitted paths without storing them.
pub fn count_paths(run: impl FnOnce(&mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>)) -> u64 {
    let mut count = 0;
    run(&mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

/// Collects at most `k` arc sequences, then stops the enumeration.
#[allow(clippy::type_complexity)]
pub fn first_k_arc_paths(
    k: usize,
    run: impl FnOnce(&mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>),
) -> Vec<Vec<ArcId>> {
    let mut out = Vec::with_capacity(k);
    run(&mut |p| {
        if out.len() < k {
            out.push(p.arcs.to_vec());
        }
        if out.len() < k {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    });
    out
}

/// Records the wall-clock gaps between consecutive emissions — the
/// empirical *delay* that the benchmark harness reports against the
/// paper's O(n + m) claim.
#[derive(Debug)]
pub struct DelayRecorder {
    start: Instant,
    last: Instant,
    /// Number of solutions seen.
    pub count: u64,
    /// Largest gap between consecutive solutions (including the gap from
    /// start to the first solution).
    pub max_gap: Duration,
    /// Sum of all gaps (≈ total runtime up to the last solution).
    pub total: Duration,
}

impl DelayRecorder {
    /// Starts the clock.
    pub fn new() -> Self {
        // lint:allow(clock) delay measurement utility: wall-clock gaps are what it reports
        let now = Instant::now();
        DelayRecorder {
            start: now,
            last: now,
            count: 0,
            max_gap: Duration::ZERO,
            total: Duration::ZERO,
        }
    }

    /// Notes one emitted solution.
    pub fn record(&mut self) {
        // lint:allow(clock) delay measurement utility: wall-clock gaps are what it reports
        let now = Instant::now();
        let gap = now - self.last;
        self.last = now;
        self.count += 1;
        if gap > self.max_gap {
            self.max_gap = gap;
        }
        self.total = now - self.start;
    }

    /// Mean gap between solutions.
    pub fn mean_gap(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

impl Default for DelayRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn fake_run(n: usize) -> impl FnOnce(&mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>) {
        move |sink| {
            let vertices = [VertexId(0), VertexId(1)];
            let arcs = [ArcId(0)];
            for _ in 0..n {
                if sink(PathEvent {
                    vertices: &vertices,
                    arcs: &arcs,
                })
                .is_break()
                {
                    return;
                }
            }
        }
    }

    #[test]
    fn collect_and_count() {
        assert_eq!(collect_arc_paths(fake_run(3)).len(), 3);
        assert_eq!(count_paths(fake_run(5)), 5);
    }

    #[test]
    fn first_k_stops_early() {
        let got = first_k_arc_paths(2, fake_run(100));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn first_k_with_fewer_available() {
        let got = first_k_arc_paths(10, fake_run(4));
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn delay_recorder_counts() {
        let mut rec = DelayRecorder::new();
        rec.record();
        rec.record();
        assert_eq!(rec.count, 2);
        assert!(rec.max_gap >= Duration::ZERO);
        assert!(rec.mean_gap() <= rec.total);
    }
}
