//! Naive backtracking *s*-*t* path enumeration.
//!
//! The classic depth-first enumeration without reachability pruning: it
//! explores dead-end branches, so its delay can be exponential even though
//! each emitted path is correct. It serves two roles in this repository:
//!
//! * **correctness oracle** — property tests check that Algorithm 1 emits
//!   exactly the same path set;
//! * **baseline** — the benchmark harness contrasts its delay profile with
//!   the linear-delay enumerator (the qualitative axis of the paper's
//!   Table 1).

use crate::visit::PathEvent;
use std::ops::ControlFlow;
use steiner_graph::{ArcId, DiGraph, VertexId};

struct Naive<'g, 's> {
    d: &'g DiGraph,
    t: VertexId,
    on_path: Vec<bool>,
    vertices: Vec<VertexId>,
    arcs: Vec<ArcId>,
    emitted: u64,
    sink: &'s mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
}

impl Naive<'_, '_> {
    fn recurse(&mut self) -> ControlFlow<()> {
        let u = *self.vertices.last().expect("path is nonempty");
        if u == self.t {
            self.emitted += 1;
            return (self.sink)(PathEvent {
                vertices: &self.vertices,
                arcs: &self.arcs,
            });
        }
        for (v, a) in self.d.out_neighbors(u) {
            if self.on_path[v.index()] {
                continue;
            }
            self.on_path[v.index()] = true;
            self.vertices.push(v);
            self.arcs.push(a);
            let flow = self.recurse();
            self.arcs.pop();
            self.vertices.pop();
            self.on_path[v.index()] = false;
            flow?;
        }
        ControlFlow::Continue(())
    }
}

/// Enumerates all directed simple `s`-`t` paths by plain backtracking.
/// Returns the number of paths emitted.
pub fn enumerate_directed_st_paths_naive(
    d: &DiGraph,
    s: VertexId,
    t: VertexId,
    allowed: Option<&[bool]>,
    sink: &mut dyn FnMut(PathEvent<'_>) -> ControlFlow<()>,
) -> u64 {
    let n = d.num_vertices();
    let mut on_path = match allowed {
        Some(mask) => mask.iter().map(|&a| !a).collect::<Vec<bool>>(),
        None => vec![false; n],
    };
    if on_path[s.index()] || on_path[t.index()] {
        return 0;
    }
    on_path[s.index()] = true;
    let mut naive = Naive {
        d,
        t,
        on_path,
        vertices: vec![s],
        arcs: Vec::new(),
        emitted: 0,
        sink,
    };
    let _ = naive.recurse();
    naive.emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_directed_st_paths;
    use crate::visit::collect_arc_paths;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn naive_finds_diamond_paths() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let paths = collect_arc_paths(|sink| {
            enumerate_directed_st_paths_naive(&d, VertexId(0), VertexId(3), None, sink);
        });
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn trivial_path_when_s_equals_t() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let paths = collect_arc_paths(|sink| {
            enumerate_directed_st_paths_naive(&d, VertexId(0), VertexId(0), None, sink);
        });
        assert_eq!(paths, vec![Vec::<ArcId>::new()]);
    }

    /// The load-bearing test of this crate: Algorithm 1 and the naive
    /// enumerator produce identical path sets on random digraphs.
    #[test]
    fn algorithm1_matches_naive_on_random_digraphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5e_37);
        for case in 0..120 {
            let n = 2 + case % 7;
            let m = rng.gen_range(0..=(n * (n - 1)).min(18));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let s = VertexId::new(rng.gen_range(0..n));
            let t = VertexId::new(rng.gen_range(0..n));
            if s == t {
                continue;
            }
            let fast: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths(&d, s, t, None, sink);
            })
            .into_iter()
            .collect();
            let slow: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_naive(&d, s, t, None, sink);
            })
            .into_iter()
            .collect();
            assert_eq!(fast, slow, "digraph {d:?}, s={s}, t={t}");
        }
    }

    #[test]
    fn algorithm1_matches_naive_with_masks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xa11e);
        for case in 0..60 {
            let n = 3 + case % 6;
            let m = rng.gen_range(0..=(n * (n - 1)).min(16));
            let d = steiner_graph::generators::random_digraph(n, m, &mut rng);
            let allowed: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();
            let s = VertexId::new(rng.gen_range(0..n));
            let t = VertexId::new(rng.gen_range(0..n));
            if s == t {
                continue;
            }
            let fast: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths(&d, s, t, Some(&allowed), sink);
            })
            .into_iter()
            .collect();
            let slow: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_naive(&d, s, t, Some(&allowed), sink);
            })
            .into_iter()
            .collect();
            assert_eq!(
                fast, slow,
                "digraph {d:?}, allowed {allowed:?}, s={s}, t={t}"
            );
        }
    }

    #[test]
    fn algorithm1_matches_naive_with_parallel_arcs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x9a9a);
        for _ in 0..40 {
            let n = 2 + rng.gen_range(0..4usize);
            let m = rng.gen_range(1..=12usize);
            // Multigraph: arcs drawn with replacement.
            let mut arcs = Vec::new();
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    arcs.push((u, v));
                }
            }
            let d = DiGraph::from_arcs(n, &arcs).unwrap();
            let (s, t) = (VertexId(0), VertexId::new(n - 1));
            if s == t {
                continue;
            }
            let fast: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths(&d, s, t, None, sink);
            })
            .into_iter()
            .collect();
            let slow: HashSet<Vec<ArcId>> = collect_arc_paths(|sink| {
                enumerate_directed_st_paths_naive(&d, s, t, None, sink);
            })
            .into_iter()
            .collect();
            assert_eq!(fast, slow, "digraph {d:?}");
        }
    }
}
