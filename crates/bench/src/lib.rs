//! Benchmark harness regenerating the paper's Table 1 and Figure 1.
//!
//! The paper is analytical: Table 1 states delay/preprocessing/space
//! bounds, Figure 1 illustrates the improved enumeration tree. This crate
//! measures the implementation against those claims:
//!
//! * [`measure`] — runs an enumerator, recording wall-clock delay between
//!   consecutive solutions (max/mean), the work-unit gap, and the
//!   enumeration-tree shape; renders markdown rows;
//! * [`workloads`] — the instance families (see DESIGN.md §10);
//! * `table1` binary — prints a measured analogue of every Table 1 row;
//! * `figure1` binary — prints the enumeration-tree shape and output-queue
//!   trace that Figure 1 illustrates.

#![deny(unsafe_code)]

pub mod measure;
pub mod workloads;
