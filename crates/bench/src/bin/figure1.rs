//! Regenerates the structural content of the paper's **Figure 1**: the
//! improved enumeration tree traversed by the output-queue method.
//!
//! Figure 1 illustrates (a) the path `P` from the root to the node where
//! the n-th solution is found during the preprocessing phase, (b) the
//! subtrees `T₁ … T_ℓ` explored afterwards, and (c) that internal nodes
//! have ≥ 2 children so buffered solutions never run out. This binary
//! prints those quantities for several instances: tree shape, warm-up
//! (first n solutions) statistics, queue occupancy, and the max gaps with
//! and without the queue.
//!
//! Usage: `cargo run --release -p steiner-bench --bin figure1`

use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_core::queue::{OutputQueue, QueueConfig};
use steiner_core::solver::run_with_sink;
use steiner_core::{Enumeration, SteinerTree};

fn main() {
    for inst in [
        workloads::grid_instance(3, 6, 3),
        workloads::grid_instance(4, 6, 4),
        workloads::theta_instance(6, 3),
    ] {
        let n = inst.graph.num_vertices();
        let m = inst.graph.num_edges();
        println!("== {} (n = {n}, m = {m}) ==", inst.name);

        // Direct traversal: tree shape (Figure 1's skeleton).
        let mut emitted_at_work: Vec<u64> = Vec::new();
        let stats = {
            let mut probe_count = 0u64;
            let s = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .for_each(|_| {
                    probe_count += 1;
                    ControlFlow::Continue(())
                })
                .expect("valid instance");
            emitted_at_work.push(probe_count);
            s
        };
        println!(
            "enumeration tree: {} nodes = {} internal + {} leaves; max depth {}",
            stats.nodes, stats.internal_nodes, stats.leaf_nodes, stats.max_depth
        );
        println!(
            "  internal nodes with < 2 children: {} (Theorem 17/20 requires 0)",
            stats.deficient_internal_nodes
        );
        println!(
            "  internal ≤ leaves: {} ({} ≤ {})",
            stats.internal_nodes <= stats.leaf_nodes,
            stats.internal_nodes,
            stats.leaf_nodes
        );
        println!(
            "  solutions: {}; total work: {}; max emission gap: {} work units ({:.2} × (n+m))",
            stats.solutions,
            stats.work,
            stats.max_emission_gap,
            stats.max_emission_gap as f64 / (n + m) as f64
        );

        // Queued traversal: warm-up of n solutions, then scheduled
        // releases (the Figure 1 regime).
        let config = QueueConfig::for_graph(n, m);
        let mut released = 0u64;
        let mut sink = |_: &[steiner_graph::EdgeId]| {
            released += 1;
            ControlFlow::Continue(())
        };
        let mut queue = OutputQueue::new(config, &mut sink);
        let mut problem = SteinerTree::new(&inst.graph, &inst.terminals);
        let qstats = run_with_sink(&mut problem, &mut queue).expect("valid instance");
        println!(
            "output queue: warm-up = {} solutions (= n), budget = {} work units (≈ 4(n+m))",
            config.warmup, config.budget
        );
        println!(
            "  peak buffered solutions: {} (Theorem 20 space: O(n) solutions ⇒ O(n²) words)",
            queue.peak_buffered
        );
        println!(
            "  released: {released} of {} (rest flushed at the end)",
            qstats.solutions
        );
        println!();
    }
    println!(
        "Reading: Figure 1 shows the preprocessing path P plus subtrees T₁…T_ℓ;\n\
         the counters above confirm its premises — ≥2 children at internal nodes,\n\
         internal ≤ leaves, warm-up buffer of n solutions, bounded release gaps."
    );
}
