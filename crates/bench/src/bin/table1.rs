//! Regenerates the measured analogue of the paper's **Table 1**: for each
//! enumeration problem, the claimed delay bound next to measured totals,
//! mean/max delays, and the max work gap normalized by n + m.
//!
//! Usage: `cargo run --release -p steiner-bench --bin table1 [-- section] [--json path]`
//! where `section` ∈ {all, paths, st, forest, terminal, directed, induced,
//! hardness} (default: all). With `--json path`, a machine-readable
//! `BENCH_core.json` (per-row solutions/sec and observed delays, plus the
//! criterion reference medians) is also written — CI uploads it as a
//! per-PR perf artifact.

use std::ops::ControlFlow;
use steiner_bench::measure::{record_delays, render_json, render_markdown, Row};
use steiner_bench::workloads;
use steiner_core::simple::enumerate_minimal_steiner_trees_simple;
use steiner_core::{
    DirectedSteinerTree, Enumeration, ResultCache, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use steiner_graph::{EdgeId, VertexId};
use steiner_service::{EnumerationEngine, GraphMutation, Query, QueryOptions};

const CAP: u64 = 20_000;

fn flow(more: bool) -> ControlFlow<()> {
    if more {
        ControlFlow::Continue(())
    } else {
        ControlFlow::Break(())
    }
}

fn paths_rows(rows: &mut Vec<Row>) {
    for (blocks, width) in [(8, 2), (6, 3), (10, 3)] {
        let inst = workloads::theta_instance(blocks, width);
        let (n, m) = (inst.graph.num_vertices(), inst.graph.num_edges());
        let (s, t) = (inst.terminals[0], inst.terminals[1]);
        let mut work_gap = None;
        let delays = record_delays(CAP, |emit| {
            let stats =
                steiner_paths::undirected::enumerate_st_paths(&inst.graph, s, t, None, &mut |_| {
                    flow(emit())
                });
            work_gap = Some(stats.work);
        });
        rows.push(Row {
            problem: "s-t Paths (§3)".into(),
            algorithm: "Algorithm 1".into(),
            claimed: "O(n+m) delay".into(),
            instance: inst.name.clone(),
            n,
            m,
            t: 2,
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
        let delays = record_delays(CAP, |emit| {
            steiner_paths::undirected::enumerate_st_paths_naive(
                &inst.graph,
                s,
                t,
                None,
                &mut |_| flow(emit()),
            );
        });
        rows.push(Row {
            problem: "s-t Paths (§3)".into(),
            algorithm: "naive backtracking".into(),
            claimed: "(exponential delay)".into(),
            instance: inst.name,
            n,
            m,
            t: 2,
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn st_rows(rows: &mut Vec<Row>) {
    // |W| sweep at fixed n+m: the simple baseline's delay grows with |W|,
    // the improved enumerator's does not (Table 1's key contrast).
    for t in [2, 4, 8] {
        let inst = workloads::grid_instance(4, 8, t);
        let (n, m) = (inst.graph.num_vertices(), inst.graph.num_edges());
        let nm = (n + m) as f64;
        let (run, stats) =
            Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals)).with_stats();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        let stats = stats.get();
        rows.push(Row {
            problem: "Steiner Tree (§4)".into(),
            algorithm: "improved (Thm 17)".into(),
            claimed: "O(n+m) amortized".into(),
            instance: inst.name.clone(),
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: Some(stats.max_emission_gap),
            work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
            path_gen_fraction: None,
        });
        let mut stats_holder = None;
        let delays = record_delays(CAP, |emit| {
            let s =
                enumerate_minimal_steiner_trees_simple(&inst.graph, &inst.terminals, &mut |_| {
                    flow(emit())
                });
            stats_holder = Some(s);
        });
        let stats = stats_holder.expect("simple baseline keeps the free-function API");
        rows.push(Row {
            problem: "Steiner Tree (§4)".into(),
            algorithm: "simple Alg. 2 (≈[26])".into(),
            claimed: "O(t(n+m)) delay".into(),
            instance: inst.name.clone(),
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: Some(stats.max_emission_gap),
            work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
            path_gen_fraction: None,
        });
        let run =
            Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals)).with_default_queue();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        rows.push(Row {
            problem: "Steiner Tree (§4)".into(),
            algorithm: "improved + queue (Thm 20)".into(),
            claimed: "O(n+m) delay".into(),
            instance: inst.name,
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
    // n+m sweep at fixed |W|: delay should grow roughly linearly. Each
    // size is also run through the sharded front-end (4 workers) — the
    // BENCH_core.json artifact carries both rows so CI tracks the
    // sequential-vs-sharded wall clock per PR.
    for (n, m) in [(60, 90), (120, 180), (240, 360)] {
        let inst = workloads::random_instance(n, m, 4, 42);
        let nm = (inst.graph.num_vertices() + inst.graph.num_edges()) as f64;
        // Paired packed/reference path generation: the default "improved
        // (Thm 17)" row runs the word-packed enumerator (bitset F-STP
        // frontiers + cross-branch BFS-cache reuse); the "(reference)"
        // row pins the per-vertex A/B engine. Both carry the share of
        // work spent in path generation so the bottleneck claim lives in
        // BENCH_core.json, not PR prose. (The share is computed against
        // each row's own mode: a served cache hit skips work a
        // recomputation would count.)
        for (label, packed) in [
            ("improved (Thm 17)", true),
            ("improved (Thm 17, reference)", false),
        ] {
            let (run, stats) = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .with_packed_frontiers(packed)
                .with_stats();
            let delays = record_delays(CAP, |emit| {
                run.for_each(|_| flow(emit())).expect("valid instance");
            });
            let stats = stats.get();
            rows.push(Row {
                problem: "Steiner Tree (§4)".into(),
                algorithm: label.into(),
                claimed: "O(n+m) amortized".into(),
                instance: inst.name.clone(),
                n: inst.graph.num_vertices(),
                m: inst.graph.num_edges(),
                t: 4,
                solutions: delays.solutions,
                delays,
                max_work_gap: Some(stats.max_emission_gap),
                work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
                path_gen_fraction: (stats.work > 0)
                    .then(|| stats.path_gen_work as f64 / stats.work as f64),
            });
        }
        let query = Query::SteinerTree {
            terminals: inst.terminals.clone(),
        };
        let opts = QueryOptions::default().limit(CAP);
        // Epoch engine (PR 8): the serving graph gains a disjoint
        // companion component, so the instance and the companion are
        // separate regions. A mutation confined to the companion leaves
        // the instance's cache entry live — replaying the query at the
        // new epoch is pure cache delivery ("epoch replay (untouched
        // region)"). Touching the instance's own region drops the entry;
        // an insert-then-remove pair of batches restores the identical
        // graph, so the forced re-enumeration ("cold after mutation")
        // answers exactly the same workload cold. The paired rows record
        // the gap exact invalidation buys.
        let epoch_row = |pass: &str, delays: steiner_bench::measure::DelayStats| Row {
            problem: "Steiner Tree (§4)".into(),
            algorithm: format!("epoch {pass}"),
            claimed: if pass.contains("replay") {
                "O(1)/solution replay".into()
            } else {
                "O(n+m) amortized + record".into()
            },
            instance: inst.name.clone(),
            n: inst.graph.num_vertices(),
            m: inst.graph.num_edges(),
            t: 4,
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        };
        let mut live_graph = inst.graph.clone();
        let c0 = live_graph.add_vertex();
        let c1 = live_graph.add_vertex();
        let c2 = live_graph.add_vertex();
        live_graph.add_edge(c0, c1).expect("fresh vertices");
        live_graph.add_edge(c1, c2).expect("fresh vertices");
        let live = EnumerationEngine::new(live_graph);
        let session = live.session("bench");
        let outcome = session.run(query.clone(), opts).expect("admitted");
        assert!(outcome.is_complete(), "warm-up run populates the cache");
        let out = live
            .apply_mutation(GraphMutation::InsertEdge { u: c0, v: c2 })
            .expect("companion edit is valid");
        assert_eq!(
            out.touched_regions,
            vec![c0.0],
            "the edit stays inside the companion region"
        );
        assert!(out.entries_retained >= 1, "the instance's entry survives");
        // Both epoch rows take the fastest of several runs: each side is
        // a one-shot `session.run`, so a single sample is at the mercy
        // of transient scheduler/allocator noise. Replays are cheap, so
        // they get more samples than the cold re-enumerations.
        let min_of = |k: usize, mut one: Box<dyn FnMut() -> steiner_bench::measure::DelayStats>| {
            (1..k).fold(one(), |best, _| {
                let next = one();
                if next.total < best.total {
                    next
                } else {
                    best
                }
            })
        };
        let delays = min_of(
            5,
            Box::new(|| {
                record_delays(CAP, |emit| {
                    let outcome = session.run(query.clone(), opts).expect("admitted");
                    assert_eq!(
                        outcome.stats.cache_hits, 1,
                        "untouched-region replay is a pure cache hit"
                    );
                    for _ in 0..outcome.solutions.len() {
                        if !emit() {
                            break;
                        }
                    }
                })
            }),
        );
        rows.push(epoch_row("replay (untouched region)", delays));
        // Each cold sample re-invalidates first: an insert touching the
        // instance's region drops its entry, and retracting the newest
        // edge id (no renumbering) restores the identical graph, so the
        // measured re-enumeration answers the same workload cold.
        let delays = min_of(
            3,
            Box::new(|| {
                let probe = GraphMutation::InsertEdge {
                    u: inst.terminals[0],
                    v: inst.terminals[1],
                };
                let out = live.apply_mutation(probe).expect("instance edit is valid");
                assert!(out.entries_invalidated >= 1, "the instance's entry drops");
                let last = EdgeId(live.graph().num_edges() as u32 - 1);
                live.apply_mutation(GraphMutation::RemoveEdge(last))
                    .expect("retracting the newest edge is valid");
                record_delays(CAP, |emit| {
                    let outcome = session.run(query.clone(), opts).expect("admitted");
                    assert_eq!(
                        outcome.stats.cache_hits, 0,
                        "the touched-region entry was dropped, so this run is cold"
                    );
                    for _ in 0..outcome.solutions.len() {
                        if !emit() {
                            break;
                        }
                    }
                })
            }),
        );
        rows.push(epoch_row("cold after mutation", delays));
        // Release the live engine (and its churned cache arenas) before
        // the cached/service measurements below: holding them resident
        // pushes the later engines' interned streams onto fresh pages
        // and the page faults show up as per-solution replay cost.
        drop(session);
        drop(live);
        // Incremental-classification ablation: the default engine reads
        // trail-backed connectivity state across parent/child nodes; the
        // paired "(off)" row recomputes every node from scratch (the
        // pre-incremental engine). BENCH_core.json carries both so CI
        // tracks the gap the incremental layer closes; the delivered
        // streams are byte-identical (tests/incremental.rs).
        for (label, on) in [
            ("improved, incremental (on)", true),
            ("improved, incremental (off)", false),
        ] {
            let run = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .with_incremental(on);
            let delays = record_delays(CAP, |emit| {
                run.for_each(|_| flow(emit())).expect("valid instance");
            });
            rows.push(Row {
                problem: "Steiner Tree (§4)".into(),
                algorithm: label.into(),
                claimed: if on {
                    "O(|W|+answer) leaf classify".into()
                } else {
                    "O(n+m) per classify".into()
                },
                instance: inst.name.clone(),
                n: inst.graph.num_vertices(),
                m: inst.graph.num_edges(),
                t: 4,
                solutions: delays.solutions,
                delays,
                max_work_gap: None,
                work_gap_over_nm: None,
                path_gen_fraction: None,
            });
        }
        // Sharded A/B pair: root-only child distribution vs second-level
        // subtree stealing. On a multi-core host the stealing row should
        // close the skew gap; on a 1-CPU builder both rows measure pure
        // coordination overhead (BENCH_core.json carries
        // `host_logical_cpus` so readers can tell which regime applies).
        for (label, stealing) in [
            ("improved, sharded x4 (root-only)", false),
            ("improved, sharded x4 (stealing)", true),
        ] {
            let run = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .with_threads(4)
                .with_stealing(stealing);
            let delays = record_delays(CAP, |emit| {
                run.for_each(|_| flow(emit())).expect("valid instance");
            });
            rows.push(Row {
                problem: "Steiner Tree (§4)".into(),
                algorithm: label.into(),
                claimed: "O(n+m) amortized".into(),
                instance: inst.name.clone(),
                n: inst.graph.num_vertices(),
                m: inst.graph.num_edges(),
                t: 4,
                solutions: delays.solutions,
                delays,
                max_work_gap: None,
                work_gap_over_nm: None,
                path_gen_fraction: None,
            });
        }
        // Cached replay: the identical query twice through a ResultCache.
        // The cold run records its delivered stream (the `with_limit`
        // makes the capped stream complete for the cache key); the warm
        // run replays it from the interned store without running
        // Algorithm 3 at all — the paired rows measure exactly that gap.
        let cache: ResultCache<EdgeId> = ResultCache::new();
        for pass in ["cached (cold)", "cached (replay)"] {
            let run = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .cached(&cache)
                .with_limit(CAP);
            let delays = record_delays(CAP, |emit| {
                run.for_each(|_| flow(emit())).expect("valid instance");
            });
            rows.push(Row {
                problem: "Steiner Tree (§4)".into(),
                algorithm: format!("improved, {pass}"),
                claimed: if pass.contains("replay") {
                    "O(1)/solution replay".into()
                } else {
                    "O(n+m) amortized + record".into()
                },
                instance: inst.name.clone(),
                n: inst.graph.num_vertices(),
                m: inst.graph.num_edges(),
                t: 4,
                solutions: delays.solutions,
                delays,
                max_work_gap: None,
                work_gap_over_nm: None,
                path_gen_fraction: None,
            });
        }
        assert_eq!(
            cache.stats().hits,
            1,
            "the second pass was served from the cache"
        );
        // Service warm restart: one engine answers the query cold and is
        // snapshotted; a *restarted* engine restores the snapshot and
        // serves the identical query as a pure cache replay — no search,
        // same bytes. The paired rows record the cold/replay wall-clock
        // gap in BENCH_core.json so CI tracks it per PR.
        let query = Query::SteinerTree {
            terminals: inst.terminals.clone(),
        };
        let opts = QueryOptions::default().limit(CAP);
        let service_row = |pass: &str, delays: steiner_bench::measure::DelayStats| Row {
            problem: "Steiner Tree (§4)".into(),
            algorithm: format!("service warm-restart ({pass})"),
            claimed: if pass == "replay" {
                "O(1)/solution replay".into()
            } else {
                "O(n+m) amortized + record".into()
            },
            instance: inst.name.clone(),
            n: inst.graph.num_vertices(),
            m: inst.graph.num_edges(),
            t: 4,
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        };
        let cold_engine = EnumerationEngine::new(inst.graph.clone());
        let session = cold_engine.session("bench");
        let delays = record_delays(CAP, |emit| {
            let outcome = session.run(query.clone(), opts).expect("admitted");
            assert!(outcome.is_complete());
            for _ in 0..outcome.solutions.len() {
                if !emit() {
                    break;
                }
            }
        });
        rows.push(service_row("cold", delays));
        let blob = cold_engine.snapshot();
        drop(cold_engine);
        let restarted = EnumerationEngine::new(inst.graph.clone());
        restarted
            .restore(&blob)
            .expect("snapshot of the same graph restores");
        let session = restarted.session("bench");
        let delays = record_delays(CAP, |emit| {
            let outcome = session.run(query.clone(), opts).expect("admitted");
            assert!(outcome.is_complete());
            assert_eq!(
                outcome.stats.cache_hits, 1,
                "the restarted engine served the query from the snapshot"
            );
            for _ in 0..outcome.solutions.len() {
                if !emit() {
                    break;
                }
            }
        });
        rows.push(service_row("replay", delays));
    }
    // Bridged sweep: Unique-completion-dominated instances (grid core +
    // pendant terminals) where the incremental classifier's gap is
    // directly visible — with classification off, every Unique leaf pays
    // a fresh spanning-growth pass.
    for cols in [13, 27, 57] {
        let inst = workloads::bridged_instance(4, cols, 4, 3);
        for (label, on) in [
            ("improved, incremental (on)", true),
            ("improved, incremental (off)", false),
        ] {
            let run = Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                .with_incremental(on);
            let delays = record_delays(CAP, |emit| {
                run.for_each(|_| flow(emit())).expect("valid instance");
            });
            rows.push(Row {
                problem: "Steiner Tree (§4)".into(),
                algorithm: label.into(),
                claimed: if on {
                    "O(|W|+answer) leaf classify".into()
                } else {
                    "O(n+m) per classify".into()
                },
                instance: inst.name.clone(),
                n: inst.graph.num_vertices(),
                m: inst.graph.num_edges(),
                t: inst.terminals.len(),
                solutions: delays.solutions,
                delays,
                max_work_gap: None,
                work_gap_over_nm: None,
                path_gen_fraction: None,
            });
        }
    }
}

fn minimum_rows(rows: &mut Vec<Row>) {
    // The Table 1 "Minimum Steiner Tree [10]" baseline: Dreyfus–Wagner
    // preprocessing + optimum-size filtering of the minimal enumeration.
    for t in [3, 4, 5] {
        let inst = workloads::grid_instance(3, 6, t);
        let (n, m) = (inst.graph.num_vertices(), inst.graph.num_edges());
        let mut opt = 0usize;
        let delays = record_delays(CAP, |emit| {
            if let Some((o, _)) = steiner_core::minimum::enumerate_minimum_steiner_trees(
                &inst.graph,
                &inst.terminals,
                &mut |_| flow(emit()),
            ) {
                opt = o;
            }
        });
        rows.push(Row {
            problem: "Minimum Steiner Tree (≈[10])".into(),
            algorithm: format!("Dreyfus–Wagner + filter (opt={opt})"),
            claimed: "[10]: O(n) delay, exp(t) preproc".into(),
            instance: inst.name,
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn forest_rows(rows: &mut Vec<Row>) {
    for pairs in [2, 3, 4] {
        let (g, sets) = workloads::forest_instance(3, 6, pairs);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let nm = (n + m) as f64;
        let (run, stats) = Enumeration::new(SteinerForest::new(&g, &sets)).with_stats();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        let stats = stats.get();
        rows.push(Row {
            problem: "Steiner Forest (§5)".into(),
            algorithm: "improved (Thm 25)".into(),
            claimed: "O(n+m) amortized".into(),
            instance: format!("grid 3x6, {} pairs", sets.len()),
            n,
            m,
            t: sets.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: Some(stats.max_emission_gap),
            work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
            path_gen_fraction: None,
        });
        let run = Enumeration::new(SteinerForest::new(&g, &sets)).with_default_queue();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        rows.push(Row {
            problem: "Steiner Forest (§5)".into(),
            algorithm: "improved + queue (Thm 25)".into(),
            claimed: "O(n+m) delay".into(),
            instance: format!("grid 3x6, {} pairs", sets.len()),
            n,
            m,
            t: sets.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn terminal_rows(rows: &mut Vec<Row>) {
    for t in [3, 4, 5] {
        let inst = workloads::grid_instance(4, 6, t);
        let (n, m) = (inst.graph.num_vertices(), inst.graph.num_edges());
        let nm = (n + m) as f64;
        let (run, stats) =
            Enumeration::new(TerminalSteinerTree::new(&inst.graph, &inst.terminals)).with_stats();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        let stats = stats.get();
        rows.push(Row {
            problem: "Terminal Steiner Tree (§5.1)".into(),
            algorithm: "improved (Thm 31)".into(),
            claimed: "O(n+m) amortized".into(),
            instance: inst.name.clone(),
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: Some(stats.max_emission_gap),
            work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
            path_gen_fraction: None,
        });
        let run = Enumeration::new(TerminalSteinerTree::new(&inst.graph, &inst.terminals))
            .with_default_queue();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        rows.push(Row {
            problem: "Terminal Steiner Tree (§5.1)".into(),
            algorithm: "improved + queue (Thm 31)".into(),
            claimed: "O(n+m) delay".into(),
            instance: inst.name,
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn directed_rows(rows: &mut Vec<Row>) {
    for (layers, width, t) in [(3, 3, 2), (3, 4, 3), (4, 3, 3)] {
        let (d, root, w) = workloads::directed_instance(layers, width, t);
        let (n, m) = (d.num_vertices(), d.num_arcs());
        let nm = (n + m) as f64;
        let (run, stats) = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).with_stats();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        let stats = stats.get();
        rows.push(Row {
            problem: "Directed Steiner Tree (§5.2)".into(),
            algorithm: "improved (Thm 36)".into(),
            claimed: "O(n+m) amortized".into(),
            instance: format!("layered {layers}x{width}"),
            n,
            m,
            t: w.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: Some(stats.max_emission_gap),
            work_gap_over_nm: Some(stats.max_emission_gap as f64 / nm),
            path_gen_fraction: None,
        });
        let run = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).with_default_queue();
        let delays = record_delays(CAP, |emit| {
            run.for_each(|_| flow(emit())).expect("valid instance");
        });
        rows.push(Row {
            problem: "Directed Steiner Tree (§5.2)".into(),
            algorithm: "improved + queue (Thm 36)".into(),
            claimed: "O(n+m) delay".into(),
            instance: format!("layered {layers}x{width}"),
            n,
            m,
            t: w.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn induced_rows(rows: &mut Vec<Row>) {
    for (r, c) in [(2, 4), (2, 5), (3, 4)] {
        let inst = workloads::claw_free_instance(r, c);
        let (n, m) = (inst.graph.num_vertices(), inst.graph.num_edges());
        let delays = record_delays(2_000, |emit| {
            steiner_induced::supergraph::enumerate_minimal_induced_steiner_subgraphs(
                &inst.graph,
                &inst.terminals,
                &mut |_| flow(emit()),
            )
            .expect("claw-free instance");
        });
        rows.push(Row {
            problem: "Induced Steiner, claw-free (§7)".into(),
            algorithm: "supergraph (Thm 42)".into(),
            claimed: "poly delay, exp space".into(),
            instance: inst.name,
            n,
            m,
            t: inst.terminals.len(),
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
}

fn hardness_rows(rows: &mut Vec<Row>) {
    use steiner_hardness::hypergraph::Hypergraph;
    use steiner_hardness::transversal::enumerate_minimal_transversals;
    for (nv, ne) in [(12, 8), (16, 10), (20, 12)] {
        let mut r = workloads::rng(7);
        let h = Hypergraph::random(nv, ne, 4, &mut r);
        let delays = record_delays(CAP, |emit| {
            enumerate_minimal_transversals(&h, &mut |_| flow(emit()));
        });
        rows.push(Row {
            problem: "Group Steiner ≡ Transversal (§6)".into(),
            algorithm: "MMCS-style".into(),
            claimed: "open (quasi-poly best known)".into(),
            instance: format!("random H({nv},{ne})"),
            n: nv,
            m: ne,
            t: 0,
            solutions: delays.solutions,
            delays,
            max_work_gap: None,
            work_gap_over_nm: None,
            path_gen_fraction: None,
        });
    }
    // The Theorem 38 star reduction, end to end.
    let mut r = workloads::rng(8);
    let h = Hypergraph::random(10, 6, 3, &mut r);
    let delays = record_delays(CAP, |emit| {
        let sols = steiner_hardness::group_steiner::star_group_steiner_via_transversals(&h);
        for _ in sols {
            if !emit() {
                break;
            }
        }
    });
    rows.push(Row {
        problem: "Group Steiner ≡ Transversal (§6)".into(),
        algorithm: "Thm 38 star reduction".into(),
        claimed: "transversal-equivalent".into(),
        instance: "star of H(10,6)".into(),
        n: 11,
        m: 10,
        t: 6,
        solutions: delays.solutions,
        delays,
        max_work_gap: None,
        work_gap_over_nm: None,
        path_gen_fraction: None,
    });
    let _ = VertexId(0);
}

/// Criterion medians recorded across this repo's perf-relevant PRs
/// (milliseconds; `cargo bench -p steiner-bench --bench steiner_tree` /
/// `--bench forest` on the reference machine). For the original rows,
/// `pre` is the last commit before the zero-allocation CSR/trail engine
/// and `post` is with it; the incremental-classification PR re-measured
/// the size sweep (its `post` updated below) and added the
/// `bridged_sweep` pairs, where `pre` is the engine with incremental
/// classification **off** (fresh per-node recomputation) and `post` with
/// it **on** — same machine, same run.
fn criterion_reference() -> Vec<(String, f64, Option<f64>)> {
    [
        ("steiner_tree_terminal_sweep/improved/2", 2.389, 1.80),
        ("steiner_tree_terminal_sweep/improved/4", 3.581, 1.88),
        ("steiner_tree_terminal_sweep/improved/6", 3.798, 1.90),
        ("steiner_tree_terminal_sweep/improved/8", 4.146, 1.86),
        ("steiner_tree_size_sweep/improved/n50m75", 4.543, 2.39),
        ("steiner_tree_size_sweep/improved/n100m150", 5.922, 4.67),
        ("steiner_tree_size_sweep/improved/n200m300", 8.328, 6.48),
        ("steiner_tree_bridged_sweep/incremental/n64", 4.602, 4.019),
        ("steiner_tree_bridged_sweep/incremental/n120", 7.559, 6.510),
        (
            "steiner_tree_bridged_sweep/incremental/n240",
            13.738,
            11.466,
        ),
        ("steiner_forest/improved/1", 0.277, 0.19),
        ("steiner_forest/improved/2", 2.675, 1.60),
        ("steiner_forest/improved/3", 3.439, 1.84),
        ("steiner_forest/improved/4", 2.510, 1.44),
    ]
    .into_iter()
    .map(|(n, pre, post)| (n.to_string(), pre, Some(post)))
    .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut section = "all".to_string();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            json_path = Some(
                args.get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| "BENCH_core.json".to_string()),
            );
            i += 2;
        } else {
            section = args[i].clone();
            i += 1;
        }
    }
    let mut rows = Vec::new();
    let want = |s: &str| section == "all" || section == s;
    if want("paths") {
        paths_rows(&mut rows);
    }
    if want("st") || want("st-baseline") {
        st_rows(&mut rows);
    }
    if want("minimum") || want("st") {
        minimum_rows(&mut rows);
    }
    if want("forest") {
        forest_rows(&mut rows);
    }
    if want("terminal") {
        terminal_rows(&mut rows);
    }
    if want("directed") {
        directed_rows(&mut rows);
    }
    if want("induced") {
        induced_rows(&mut rows);
    }
    if want("hardness") {
        hardness_rows(&mut rows);
    }
    println!("# Table 1 (measured analogue)\n");
    println!(
        "Solutions capped at {CAP} per run; `max gap/(n+m)` is the largest\n\
         work-unit gap between consecutive emissions divided by n+m — the\n\
         empirical delay constant for the linear-delay claims.\n"
    );
    print!("{}", render_markdown(&rows));
    if let Some(path) = json_path {
        let json = render_json(&rows, &criterion_reference());
        std::fs::write(&path, json).expect("write BENCH_core.json");
        eprintln!("wrote {path}");
    }
}
