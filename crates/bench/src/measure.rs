//! Measurement plumbing: delay recording and markdown rows.

use std::time::{Duration, Instant};

/// Wall-clock delay statistics of one enumeration run.
#[derive(Clone, Debug, Default)]
pub struct DelayStats {
    /// Solutions observed (possibly capped).
    pub solutions: u64,
    /// Total wall-clock time of the run.
    pub total: Duration,
    /// Largest gap between consecutive solutions (including the start-to-
    /// first gap), per the paper's delay definition.
    pub max_gap: Duration,
    /// Mean gap.
    pub mean_gap: Duration,
}

/// Runs `run`, handing it a callback to invoke once per solution, stopping
/// after `cap` solutions. The run function receives a `&mut dyn FnMut() ->
/// bool` returning `false` when the cap is reached.
pub fn record_delays(cap: u64, run: impl FnOnce(&mut dyn FnMut() -> bool)) -> DelayStats {
    let start = Instant::now();
    let mut last = start;
    let mut max_gap = Duration::ZERO;
    let mut count = 0u64;
    run(&mut || {
        let now = Instant::now();
        let gap = now - last;
        last = now;
        if gap > max_gap {
            max_gap = gap;
        }
        count += 1;
        count < cap
    });
    let total = start.elapsed();
    DelayStats {
        solutions: count,
        total,
        max_gap,
        mean_gap: if count > 0 {
            total / count as u32
        } else {
            Duration::ZERO
        },
    }
}

/// One measured row of the Table 1 analogue.
#[derive(Clone, Debug)]
pub struct Row {
    /// Problem name (Table 1's first column).
    pub problem: String,
    /// Algorithm variant.
    pub algorithm: String,
    /// The paper's claimed delay bound for this row.
    pub claimed: String,
    /// Instance description.
    pub instance: String,
    /// n, m, and |W| (or equivalent parameter).
    pub n: usize,
    /// Number of edges/arcs.
    pub m: usize,
    /// Number of terminals (or pairs/groups).
    pub t: usize,
    /// Solutions enumerated (capped).
    pub solutions: u64,
    /// Measured statistics.
    pub delays: DelayStats,
    /// Max work-unit gap between emissions (algorithmic delay), if known.
    pub max_work_gap: Option<u64>,
    /// Work-gap bound `c` such that max gap ≤ c·(n+m), if known.
    pub work_gap_over_nm: Option<f64>,
    /// Share of `stats.work` attributed to the path-generation core
    /// (`path_gen_work / work`), if known — the bottleneck the packed
    /// frontiers target, recorded on the size-sweep rows so the claim is
    /// visible in `BENCH_core.json`.
    pub path_gen_fraction: Option<f64>,
}

/// Renders rows as a markdown table in the shape of the paper's Table 1,
/// with measured columns appended.
pub fn render_markdown(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Problem | Algorithm | Claimed delay | Instance | n | m | t | #sols | total | mean delay | max delay | max gap/(n+m) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.1?} | {:.1?} | {:.1?} | {} |\n",
            r.problem,
            r.algorithm,
            r.claimed,
            r.instance,
            r.n,
            r.m,
            r.t,
            r.solutions,
            r.delays.total,
            r.delays.mean_gap,
            r.delays.max_gap,
            r.work_gap_over_nm
                .map_or("-".to_string(), |v| format!("{v:.2}")),
        ));
    }
    out
}

/// Renders rows as the machine-readable `BENCH_core.json` document: one
/// object per row with solutions/second and the observed delays, so CI can
/// archive a perf trajectory per PR. Hand-rolled (no serde in this
/// workspace); all strings are plain ASCII.
pub fn render_json(rows: &[Row], criterion_reference: &[(String, f64, Option<f64>)]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    // The host's logical CPU count qualifies the sequential-vs-sharded
    // rows: on a single-CPU builder the sharded rows measure pure
    // overhead; the parallel speedup only shows on multi-core runners.
    let cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    out.push_str("{\n  \"schema\": \"BENCH_core/v1\",\n");
    out.push_str(&format!(
        "  \"host_logical_cpus\": {cpus},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        let secs = r.delays.total.as_secs_f64();
        let sols_per_sec = if secs > 0.0 {
            r.solutions as f64 / secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"algorithm\": \"{}\", \"instance\": \"{}\", \
             \"n\": {}, \"m\": {}, \"t\": {}, \"solutions\": {}, \"total_secs\": {:.6}, \
             \"solutions_per_sec\": {:.1}, \"mean_delay_us\": {:.3}, \"max_delay_us\": {:.3}, \
             \"max_work_gap\": {}, \"work_gap_over_nm\": {}, \"path_gen_fraction\": {}}}{}\n",
            esc(&r.problem),
            esc(&r.algorithm),
            esc(&r.instance),
            r.n,
            r.m,
            r.t,
            r.solutions,
            secs,
            sols_per_sec,
            r.delays.mean_gap.as_secs_f64() * 1e6,
            r.delays.max_gap.as_secs_f64() * 1e6,
            r.max_work_gap.map_or("null".to_string(), |v| v.to_string()),
            r.work_gap_over_nm
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            r.path_gen_fraction
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(
        "  ],\n  \"criterion_reference_note\": \"static medians recorded when the \
         zero-allocation engine landed (not re-measured per run); the live per-run \
         data is in rows[]\",\n  \"criterion_reference_ms\": [\n",
    );
    for (i, (name, pre, post)) in criterion_reference.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"pre_pr_median_ms\": {:.3}, \"post_pr_median_ms\": {}}}{}\n",
            esc(name),
            pre,
            post.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < criterion_reference.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let row = Row {
            problem: "Steiner Tree".into(),
            algorithm: "improved".into(),
            claimed: "O(n+m)".into(),
            instance: "grid".into(),
            n: 10,
            m: 20,
            t: 3,
            solutions: 5,
            delays: DelayStats::default(),
            max_work_gap: Some(30),
            work_gap_over_nm: Some(1.0),
            path_gen_fraction: Some(0.5),
        };
        let json = render_json(
            &[row],
            &[("steiner_tree/improved/4".into(), 3.58, Some(1.78))],
        );
        assert!(json.contains("\"schema\": \"BENCH_core/v1\""));
        assert!(json.contains("\"solutions\": 5"));
        assert!(json.contains("\"pre_pr_median_ms\": 3.580"));
        assert!(json.contains("\"path_gen_fraction\": 0.500"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn record_delays_counts_and_caps() {
        let stats = record_delays(3, |emit| {
            for _ in 0..10 {
                if !emit() {
                    break;
                }
            }
        });
        assert_eq!(stats.solutions, 3);
        assert!(stats.max_gap >= Duration::ZERO);
    }

    #[test]
    fn markdown_has_one_line_per_row() {
        let row = Row {
            problem: "Steiner Tree".into(),
            algorithm: "improved".into(),
            claimed: "O(n+m)".into(),
            instance: "grid".into(),
            n: 10,
            m: 20,
            t: 3,
            solutions: 5,
            delays: DelayStats::default(),
            max_work_gap: Some(30),
            work_gap_over_nm: Some(1.0),
            path_gen_fraction: Some(0.5),
        };
        let md = render_markdown(&[row.clone(), row]);
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("Steiner Tree"));
    }
}
