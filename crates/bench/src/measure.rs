//! Measurement plumbing: delay recording and markdown rows.

use std::time::{Duration, Instant};

/// Wall-clock delay statistics of one enumeration run.
#[derive(Clone, Debug, Default)]
pub struct DelayStats {
    /// Solutions observed (possibly capped).
    pub solutions: u64,
    /// Total wall-clock time of the run.
    pub total: Duration,
    /// Largest gap between consecutive solutions (including the start-to-
    /// first gap), per the paper's delay definition.
    pub max_gap: Duration,
    /// Mean gap.
    pub mean_gap: Duration,
}

/// Runs `run`, handing it a callback to invoke once per solution, stopping
/// after `cap` solutions. The run function receives a `&mut dyn FnMut() ->
/// bool` returning `false` when the cap is reached.
pub fn record_delays(cap: u64, run: impl FnOnce(&mut dyn FnMut() -> bool)) -> DelayStats {
    let start = Instant::now();
    let mut last = start;
    let mut max_gap = Duration::ZERO;
    let mut count = 0u64;
    run(&mut || {
        let now = Instant::now();
        let gap = now - last;
        last = now;
        if gap > max_gap {
            max_gap = gap;
        }
        count += 1;
        count < cap
    });
    let total = start.elapsed();
    DelayStats {
        solutions: count,
        total,
        max_gap,
        mean_gap: if count > 0 {
            total / count as u32
        } else {
            Duration::ZERO
        },
    }
}

/// One measured row of the Table 1 analogue.
#[derive(Clone, Debug)]
pub struct Row {
    /// Problem name (Table 1's first column).
    pub problem: String,
    /// Algorithm variant.
    pub algorithm: String,
    /// The paper's claimed delay bound for this row.
    pub claimed: String,
    /// Instance description.
    pub instance: String,
    /// n, m, and |W| (or equivalent parameter).
    pub n: usize,
    /// Number of edges/arcs.
    pub m: usize,
    /// Number of terminals (or pairs/groups).
    pub t: usize,
    /// Solutions enumerated (capped).
    pub solutions: u64,
    /// Measured statistics.
    pub delays: DelayStats,
    /// Max work-unit gap between emissions (algorithmic delay), if known.
    pub max_work_gap: Option<u64>,
    /// Work-gap bound `c` such that max gap ≤ c·(n+m), if known.
    pub work_gap_over_nm: Option<f64>,
}

/// Renders rows as a markdown table in the shape of the paper's Table 1,
/// with measured columns appended.
pub fn render_markdown(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Problem | Algorithm | Claimed delay | Instance | n | m | t | #sols | total | mean delay | max delay | max gap/(n+m) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.1?} | {:.1?} | {:.1?} | {} |\n",
            r.problem,
            r.algorithm,
            r.claimed,
            r.instance,
            r.n,
            r.m,
            r.t,
            r.solutions,
            r.delays.total,
            r.delays.mean_gap,
            r.delays.max_gap,
            r.work_gap_over_nm
                .map_or("-".to_string(), |v| format!("{v:.2}")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_delays_counts_and_caps() {
        let stats = record_delays(3, |emit| {
            for _ in 0..10 {
                if !emit() {
                    break;
                }
            }
        });
        assert_eq!(stats.solutions, 3);
        assert!(stats.max_gap >= Duration::ZERO);
    }

    #[test]
    fn markdown_has_one_line_per_row() {
        let row = Row {
            problem: "Steiner Tree".into(),
            algorithm: "improved".into(),
            claimed: "O(n+m)".into(),
            instance: "grid".into(),
            n: 10,
            m: 20,
            t: 3,
            solutions: 5,
            delays: DelayStats::default(),
            max_work_gap: Some(30),
            work_gap_over_nm: Some(1.0),
        };
        let md = render_markdown(&[row.clone(), row]);
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("Steiner Tree"));
    }
}
