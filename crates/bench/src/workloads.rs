//! Instance families for the Table 1 / Figure 1 measurements
//! (DESIGN.md §10).

use rand::SeedableRng;
use steiner_graph::{generators, DiGraph, UndirectedGraph, VertexId};

/// Deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// An undirected Steiner instance.
pub struct Instance {
    /// Short name for tables.
    pub name: String,
    /// The graph.
    pub graph: UndirectedGraph,
    /// The terminals.
    pub terminals: Vec<VertexId>,
}

/// Grid instances with terminals spread over the boundary; sweeping `t`
/// with fixed n+m isolates the |W| dependence of the delay.
pub fn grid_instance(rows: usize, cols: usize, t: usize) -> Instance {
    let graph = generators::grid(rows, cols);
    let n = graph.num_vertices();
    assert!(t >= 2 && t <= n);
    let terminals: Vec<VertexId> = (0..t)
        .map(|i| VertexId::new(i * (n - 1) / (t - 1)))
        .collect();
    let mut terminals = terminals;
    terminals.sort_unstable();
    terminals.dedup();
    Instance {
        name: format!("grid {rows}x{cols}, t={}", terminals.len()),
        graph,
        terminals,
    }
}

/// Theta-chain instances: `width^blocks` solutions with tiny n+m — the
/// delay stress test (output size is exponential in the input).
pub fn theta_instance(blocks: usize, width: usize) -> Instance {
    let graph = generators::theta_chain(blocks, width);
    Instance {
        name: format!("theta {blocks}x{width}"),
        graph,
        terminals: vec![VertexId(0), VertexId::new(blocks)],
    }
}

/// Bridge-rich instances: a 2-edge-connected grid core with pendant
/// bridge paths hanging off distinct core vertices and a terminal at
/// each pendant tip (plus corner 0). Every solution routes each pendant
/// terminal through its forced bridge path while the core offers many
/// alternatives, so **Unique-completion classification dominates the
/// node mix** — the workload the incremental classifier accelerates
/// (forced-path reads instead of per-leaf spanning-growth passes).
pub fn bridged_instance(rows: usize, cols: usize, pendants: usize, tail: usize) -> Instance {
    let mut graph = generators::grid(rows, cols);
    let core = rows * cols;
    assert!(pendants >= 1 && pendants <= core);
    let mut terminals = vec![VertexId(0)];
    for p in 0..pendants {
        let mut prev = VertexId::new(core - 1 - p * (core / pendants));
        for _ in 0..tail {
            let v = graph.add_vertex();
            graph
                .add_edge(prev, v)
                .expect("pendant vertices are in range");
            prev = v;
        }
        terminals.push(prev);
    }
    Instance {
        name: format!("grid {rows}x{cols} + {pendants} pendant paths"),
        graph,
        terminals,
    }
}

/// Random connected instances for n+m scaling sweeps.
pub fn random_instance(n: usize, m: usize, t: usize, seed: u64) -> Instance {
    let mut r = rng(seed);
    let graph = generators::random_connected_graph(n, m, &mut r);
    let terminals = generators::random_terminals(n, t, &mut r);
    Instance {
        name: format!("G({n},{m}), t={t}"),
        graph,
        terminals,
    }
}

/// A Steiner forest instance: `pairs` random disjoint-ish pairs on a grid.
pub fn forest_instance(
    rows: usize,
    cols: usize,
    pairs: usize,
) -> (UndirectedGraph, Vec<Vec<VertexId>>) {
    let graph = generators::grid(rows, cols);
    let n = graph.num_vertices();
    let sets: Vec<Vec<VertexId>> = (0..pairs)
        .map(|i| {
            let a = (i * 2) % n;
            let b = n - 1 - (i * 3) % n;
            vec![VertexId::new(a), VertexId::new(b.max(1).min(n - 1))]
        })
        .filter(|s| s[0] != s[1])
        .collect();
    (graph, sets)
}

/// A directed instance: layered DAG plus random terminals in the last
/// layers.
pub fn directed_instance(
    layers: usize,
    width: usize,
    t: usize,
) -> (DiGraph, VertexId, Vec<VertexId>) {
    let (d, root) = generators::layered_digraph(layers, width);
    let n = d.num_vertices();
    let terminals: Vec<VertexId> = (0..t)
        .map(|i| VertexId::new(n - 1 - (i * width) % (2 * width).min(n - 1)))
        .collect();
    let mut terminals = terminals;
    terminals.sort_unstable();
    terminals.dedup();
    (d, root, terminals)
}

/// A claw-free induced-Steiner instance: the line graph of a grid.
pub fn claw_free_instance(rows: usize, cols: usize) -> Instance {
    let base = generators::grid(rows, cols);
    let graph = steiner_graph::line_graph::line_graph(&base);
    let n = graph.num_vertices();
    Instance {
        name: format!("L(grid {rows}x{cols})"),
        graph,
        terminals: vec![VertexId(0), VertexId::new(n - 1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::connectivity::all_in_one_component;

    #[test]
    fn bridged_instance_hangs_pendant_terminals() {
        let i = bridged_instance(4, 13, 4, 3);
        assert_eq!(i.graph.num_vertices(), 4 * 13 + 4 * 3);
        assert_eq!(i.terminals.len(), 5);
        assert!(all_in_one_component(&i.graph, &i.terminals, None));
        // Every pendant terminal hangs behind bridges: its tail edges
        // are cut edges of the instance.
        let bridge = steiner_graph::bridges::bridges(&i.graph, None);
        let pendant_edges = 4 * 3;
        let bridge_count = bridge.iter().filter(|&&b| b).count();
        assert!(bridge_count >= pendant_edges, "pendant tails are bridges");
    }

    #[test]
    fn instances_are_well_formed() {
        let i = grid_instance(3, 4, 4);
        assert!(all_in_one_component(&i.graph, &i.terminals, None));
        let t = theta_instance(3, 3);
        assert!(all_in_one_component(&t.graph, &t.terminals, None));
        let r = random_instance(20, 30, 5, 1);
        assert!(all_in_one_component(&r.graph, &r.terminals, None));
        assert_eq!(r.terminals.len(), 5);
    }

    #[test]
    fn forest_instance_pairs_are_valid() {
        let (g, sets) = forest_instance(3, 4, 3);
        for s in &sets {
            assert_eq!(s.len(), 2);
            assert!(s[0] != s[1]);
            assert!(s.iter().all(|v| v.index() < g.num_vertices()));
        }
    }

    #[test]
    fn directed_instance_reaches_terminals() {
        use steiner_graph::connectivity::reachable_from;
        let (d, root, w) = directed_instance(3, 3, 2);
        let reach = reachable_from(&d, root, None);
        assert!(w.iter().all(|v| reach[v.index()]));
    }

    #[test]
    fn claw_free_instance_is_claw_free() {
        let i = claw_free_instance(2, 3);
        assert!(steiner_graph::clawfree::is_claw_free(&i.graph));
    }
}
