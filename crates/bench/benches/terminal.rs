//! Criterion bench: the Table 1 "Terminal Steiner Tree" row (Theorem 31).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner_bench::workloads;
use steiner_core::{Enumeration, TerminalSteinerTree};

const CAP: u64 = 3_000;

fn bench_terminal(c: &mut Criterion) {
    let mut group = c.benchmark_group("terminal_steiner_tree");
    group.sample_size(10);
    for t in [2, 3, 4, 5] {
        let inst = workloads::grid_instance(4, 6, t);
        group.bench_with_input(BenchmarkId::new("improved", t), &inst, |b, inst| {
            b.iter(|| {
                Enumeration::new(TerminalSteinerTree::new(&inst.graph, &inst.terminals))
                    .with_limit(CAP)
                    .count()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_terminal);
criterion_main!(benches);
