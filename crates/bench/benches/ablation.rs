//! Ablation bench: the value of the paper's §3 design choices.
//!
//! 1. **Lemma 11 sweep** vs per-prefix recomputation of extendibility —
//!    the key revision the paper makes to Read–Tarjan to get O(n + m)
//!    delay instead of O(n·(n + m)).
//! 2. **Improved branching** (§4.2, bridges + unique completion) vs the
//!    simple Algorithm 2 — the revision that makes per-solution time
//!    amortized O(n + m) instead of O(|W|(n + m)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_graph::VertexId;
use steiner_paths::enumerate::{enumerate_directed_st_paths_with, EnumerateOptions};

const CAP: u64 = 5_000;

fn bench_lemma11(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lemma11");
    group.sample_size(10);
    for (rows, cols) in [(3, 4), (3, 5), (4, 4)] {
        let g = steiner_graph::generators::grid(rows, cols);
        let doubled = steiner_graph::digraph::DoubledDigraph::new(&g);
        let d = doubled.digraph;
        let t = VertexId::new(g.num_vertices() - 1);
        let label = format!("grid{rows}x{cols}");
        for (name, incremental) in [("incremental", true), ("per-prefix", false)] {
            group.bench_with_input(BenchmarkId::new(name, &label), &d, |b, d| {
                b.iter(|| {
                    let mut count = 0u64;
                    enumerate_directed_st_paths_with(
                        d,
                        VertexId(0),
                        t,
                        None,
                        EnumerateOptions {
                            incremental_extendibility: incremental,
                            ..EnumerateOptions::default()
                        },
                        &mut |_| {
                            count += 1;
                            if count < CAP {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_branching");
    group.sample_size(10);
    // A bridge-heavy instance where unique completions dominate: chains of
    // theta blocks interleaved with path segments produce long forced
    // stretches that the improved enumerator resolves in one step.
    for blocks in [6, 8] {
        let inst = workloads::theta_instance(blocks, 2);
        // Terminals at every hub maximize the depth of the simple tree.
        let w: Vec<VertexId> = (0..=blocks).map(VertexId::new).collect();
        group.bench_with_input(BenchmarkId::new("improved", blocks), &inst, |b, inst| {
            b.iter(|| {
                steiner_core::Enumeration::new(steiner_core::SteinerTree::new(&inst.graph, &w))
                    .with_limit(CAP)
                    .count()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("simple", blocks), &inst, |b, inst| {
            b.iter(|| {
                let mut count = 0u64;
                steiner_core::simple::enumerate_minimal_steiner_trees_simple(
                    &inst.graph,
                    &w,
                    &mut |_| {
                        count += 1;
                        if count < CAP {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lemma11, bench_branching);
criterion_main!(benches);
