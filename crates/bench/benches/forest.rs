//! Criterion bench: the Table 1 "Steiner Forest" row (Theorem 25), swept
//! over the number of terminal pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner_bench::workloads;
use steiner_core::{Enumeration, SteinerForest};

const CAP: u64 = 3_000;

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_forest");
    group.sample_size(10);
    for pairs in [1, 2, 3, 4] {
        let (g, sets) = workloads::forest_instance(3, 6, pairs);
        group.bench_with_input(
            BenchmarkId::new("improved", pairs),
            &(g, sets),
            |b, (g, sets)| {
                b.iter(|| {
                    Enumeration::new(SteinerForest::new(g, sets))
                        .with_limit(CAP)
                        .count()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
