//! Criterion bench: the Table 1 "Steiner Forest" row (Theorem 25), swept
//! over the number of terminal pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_core::forest::enumerate_minimal_steiner_forests;

const CAP: u64 = 3_000;

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_forest");
    group.sample_size(10);
    for pairs in [1, 2, 3, 4] {
        let (g, sets) = workloads::forest_instance(3, 6, pairs);
        group.bench_with_input(
            BenchmarkId::new("improved", pairs),
            &(g, sets),
            |b, (g, sets)| {
                b.iter(|| {
                    let mut count = 0u64;
                    enumerate_minimal_steiner_forests(g, sets, &mut |_| {
                        count += 1;
                        if count < CAP {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
