//! Criterion bench: the Table 1 "Induced Steiner Subgraph on claw-free
//! graphs" row (Theorem 42).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_induced::supergraph::enumerate_minimal_induced_steiner_subgraphs;

const CAP: u64 = 200;

fn bench_induced(c: &mut Criterion) {
    let mut group = c.benchmark_group("induced_steiner_clawfree");
    group.sample_size(10);
    for (r, cols) in [(2, 3), (2, 4), (2, 5)] {
        let inst = workloads::claw_free_instance(r, cols);
        group.bench_with_input(
            BenchmarkId::new("supergraph", &inst.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut count = 0u64;
                    enumerate_minimal_induced_steiner_subgraphs(
                        &inst.graph,
                        &inst.terminals,
                        &mut |_| {
                            count += 1;
                            if count < CAP {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        },
                    )
                    .expect("claw-free instance")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_induced);
criterion_main!(benches);
