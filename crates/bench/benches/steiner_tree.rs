//! Criterion bench: the Table 1 "Steiner Tree" rows — simple Algorithm 2
//! (the O(|W|(n+m))-delay baseline), the improved enumerator (Theorem 17),
//! and the output-queue variant (Theorem 20), swept over |W| and over n+m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_core::simple::enumerate_minimal_steiner_trees_simple;
use steiner_core::{Enumeration, SteinerTree};

const CAP: u64 = 3_000;

fn bench_terminal_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_tree_terminal_sweep");
    group.sample_size(10);
    for t in [2, 4, 6, 8] {
        let inst = workloads::grid_instance(4, 6, t);
        group.bench_with_input(BenchmarkId::new("improved", t), &inst, |b, inst| {
            b.iter(|| {
                Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                    .with_limit(CAP)
                    .count()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("simple", t), &inst, |b, inst| {
            b.iter(|| {
                let mut count = 0u64;
                enumerate_minimal_steiner_trees_simple(&inst.graph, &inst.terminals, &mut |_| {
                    count += 1;
                    if count < CAP {
                        ControlFlow::Continue(())
                    } else {
                        ControlFlow::Break(())
                    }
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("queued", t), &inst, |b, inst| {
            b.iter(|| {
                Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                    .with_default_queue()
                    .with_limit(CAP)
                    .count()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_tree_size_sweep");
    group.sample_size(10);
    for (n, m) in [(50, 75), (100, 150), (200, 300)] {
        let inst = workloads::random_instance(n, m, 4, 42);
        group.bench_with_input(
            BenchmarkId::new("improved", format!("n{n}m{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                        .with_limit(CAP)
                        .count()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_bridged_sweep(c: &mut Criterion) {
    // Bridge-rich instances (grid core + pendant terminals): the node mix
    // is dominated by Unique-completion leaves, which the incremental
    // classifier answers from forced-path reads instead of a per-leaf
    // spanning-growth pass — the paired rows measure exactly that gap.
    let mut group = c.benchmark_group("steiner_tree_bridged_sweep");
    group.sample_size(10);
    for (cols, label) in [(13, "n64"), (27, "n120"), (57, "n240")] {
        let inst = workloads::bridged_instance(4, cols, 4, 3);
        for (alg, on) in [("incremental_on", true), ("incremental_off", false)] {
            group.bench_with_input(BenchmarkId::new(alg, label), &inst, |b, inst| {
                b.iter(|| {
                    Enumeration::new(SteinerTree::new(&inst.graph, &inst.terminals))
                        .with_incremental(on)
                        .with_limit(CAP)
                        .count()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_terminal_sweep,
    bench_size_sweep,
    bench_bridged_sweep
);
criterion_main!(benches);
