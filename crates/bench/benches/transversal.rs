//! Criterion bench: minimal hypergraph transversal enumeration — the §6
//! hardness anchor (Theorem 38 ties group Steiner enumeration to it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_hardness::hypergraph::Hypergraph;
use steiner_hardness::transversal::enumerate_minimal_transversals;

const CAP: u64 = 5_000;

fn bench_transversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_transversals");
    group.sample_size(10);
    for (n, m) in [(12, 8), (16, 10), (20, 12), (24, 14)] {
        let mut rng = workloads::rng(7);
        let h = Hypergraph::random(n, m, 4, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("mmcs", format!("H({n},{m})")),
            &h,
            |b, h| {
                b.iter(|| {
                    let mut count = 0u64;
                    enumerate_minimal_transversals(h, &mut |_| {
                        count += 1;
                        if count < CAP {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transversal);
criterion_main!(benches);
