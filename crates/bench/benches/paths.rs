//! Criterion bench: Algorithm 1 (linear delay) vs naive backtracking
//! s-t path enumeration — the §3 engine that every Steiner enumerator
//! drives (implicit row of Table 1, Theorem 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_graph::VertexId;

const CAP: u64 = 5_000;

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_paths");
    group.sample_size(10);
    for (blocks, width) in [(6, 2), (6, 3), (8, 3)] {
        let inst = workloads::theta_instance(blocks, width);
        let (s, t) = (inst.terminals[0], inst.terminals[1]);
        group.bench_with_input(
            BenchmarkId::new("algorithm1", &inst.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut count = 0u64;
                    steiner_paths::undirected::enumerate_st_paths(
                        &inst.graph,
                        s,
                        t,
                        None,
                        &mut |_| {
                            count += 1;
                            if count < CAP {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        },
                    );
                    count
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", &inst.name), &inst, |b, inst| {
            b.iter(|| {
                let mut count = 0u64;
                steiner_paths::undirected::enumerate_st_paths_naive(
                    &inst.graph,
                    s,
                    t,
                    None,
                    &mut |_| {
                        count += 1;
                        if count < CAP {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    },
                );
                count
            })
        });
    }
    // Grid corner-to-corner: dead-end-rich, where pruning matters most.
    let g = steiner_graph::generators::grid(4, 4);
    let target = VertexId::new(g.num_vertices() - 1);
    group.bench_function("algorithm1/grid4x4", |b| {
        b.iter(|| {
            let mut count = 0u64;
            steiner_paths::undirected::enumerate_st_paths(
                &g,
                VertexId(0),
                target,
                None,
                &mut |_| {
                    count += 1;
                    ControlFlow::Continue(())
                },
            );
            count
        })
    });
    group.finish();
}

/// Subroutine-level `F-STP` bench: the reference per-vertex enumerator
/// (cold BFS every level), the packed enumerator on a cold scratch
/// (bitset BFS, within-run signature reuse), and the packed enumerator
/// replaying an identical query on a warm same-graph scratch (cache-hit
/// path) — so regressions in the reverse-BFS core are caught without
/// running the full engine sweep.
fn bench_fstp(c: &mut Criterion) {
    use steiner_paths::enumerate::{enumerate_paths_view, EnumerateOptions, PathScratch};

    let mut group = c.benchmark_group("paths_fstp");
    group.sample_size(10);
    for (blocks, width) in [(6, 3), (8, 3)] {
        let inst = workloads::theta_instance(blocks, width);
        let csr = steiner_graph::CsrDigraph::doubled(&inst.graph);
        let (s, t) = (inst.terminals[0], inst.terminals[1]);
        let n = csr.num_vertices();
        let run = |scratch: &mut PathScratch, packed: bool, fresh: bool| {
            if fresh {
                scratch.begin(n);
            } else {
                scratch.begin_same_graph(n);
            }
            let mut count = 0u64;
            enumerate_paths_view(
                &csr,
                s,
                t,
                EnumerateOptions {
                    packed_frontiers: packed,
                    ..EnumerateOptions::default()
                },
                false,
                scratch,
                &mut |_| {
                    count += 1;
                    if count < CAP {
                        ControlFlow::Continue(())
                    } else {
                        ControlFlow::Break(())
                    }
                },
            );
            count
        };
        group.bench_function(BenchmarkId::new("reference_cold", &inst.name), |b| {
            let mut scratch = PathScratch::new();
            scratch.preallocate(n, csr.num_arcs());
            b.iter(|| run(&mut scratch, false, true))
        });
        group.bench_function(BenchmarkId::new("packed_cold", &inst.name), |b| {
            let mut scratch = PathScratch::new();
            scratch.preallocate(n, csr.num_arcs());
            // `begin` drops the signature caches: every level recomputes
            // at least once per iteration, as in a first-ever run.
            b.iter(|| run(&mut scratch, true, true))
        });
        group.bench_function(BenchmarkId::new("packed_cache_hit", &inst.name), |b| {
            let mut scratch = PathScratch::new();
            scratch.preallocate(n, csr.num_arcs());
            // Warm the caches once; each iteration then replays the
            // identical query through `begin_same_graph`, so the BFS
            // trees are served from the signature cache.
            run(&mut scratch, true, true);
            b.iter(|| run(&mut scratch, true, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths, bench_fstp);
criterion_main!(benches);
