//! Criterion bench: Algorithm 1 (linear delay) vs naive backtracking
//! s-t path enumeration — the §3 engine that every Steiner enumerator
//! drives (implicit row of Table 1, Theorem 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use steiner_bench::workloads;
use steiner_graph::VertexId;

const CAP: u64 = 5_000;

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_paths");
    group.sample_size(10);
    for (blocks, width) in [(6, 2), (6, 3), (8, 3)] {
        let inst = workloads::theta_instance(blocks, width);
        let (s, t) = (inst.terminals[0], inst.terminals[1]);
        group.bench_with_input(
            BenchmarkId::new("algorithm1", &inst.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut count = 0u64;
                    steiner_paths::undirected::enumerate_st_paths(
                        &inst.graph,
                        s,
                        t,
                        None,
                        &mut |_| {
                            count += 1;
                            if count < CAP {
                                ControlFlow::Continue(())
                            } else {
                                ControlFlow::Break(())
                            }
                        },
                    );
                    count
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", &inst.name), &inst, |b, inst| {
            b.iter(|| {
                let mut count = 0u64;
                steiner_paths::undirected::enumerate_st_paths_naive(
                    &inst.graph,
                    s,
                    t,
                    None,
                    &mut |_| {
                        count += 1;
                        if count < CAP {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    },
                );
                count
            })
        });
    }
    // Grid corner-to-corner: dead-end-rich, where pruning matters most.
    let g = steiner_graph::generators::grid(4, 4);
    let target = VertexId::new(g.num_vertices() - 1);
    group.bench_function("algorithm1/grid4x4", |b| {
        b.iter(|| {
            let mut count = 0u64;
            steiner_paths::undirected::enumerate_st_paths(
                &g,
                VertexId(0),
                target,
                None,
                &mut |_| {
                    count += 1;
                    ControlFlow::Continue(())
                },
            );
            count
        })
    });
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
