//! Criterion bench: the Table 1 "Directed Steiner Tree" row (Theorem 36).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner_bench::workloads;
use steiner_core::{DirectedSteinerTree, Enumeration};

const CAP: u64 = 3_000;

fn bench_directed(c: &mut Criterion) {
    let mut group = c.benchmark_group("directed_steiner_tree");
    group.sample_size(10);
    for (layers, width, t) in [(3, 3, 2), (3, 4, 3), (4, 3, 3), (4, 4, 4)] {
        let (d, root, w) = workloads::directed_instance(layers, width, t);
        let label = format!("{layers}x{width}t{}", w.len());
        group.bench_with_input(
            BenchmarkId::new("improved", label),
            &(d, root, w),
            |b, (d, root, w)| {
                b.iter(|| {
                    Enumeration::new(DirectedSteinerTree::new(d, *root, w))
                        .with_limit(CAP)
                        .count()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_directed);
criterion_main!(benches);
