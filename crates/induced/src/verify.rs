//! Checkers for induced Steiner subgraphs.

use steiner_graph::{UndirectedGraph, VertexId};

/// Whether all terminals lie in one connected component of `G[set]`.
/// (The definition of a Steiner subgraph, specialized to induced sets.)
pub fn terminals_connected_within(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    set: &[VertexId],
) -> bool {
    let Some(&first) = terminals.first() else {
        return true;
    };
    let mut in_set = vec![false; g.num_vertices()];
    for &v in set {
        in_set[v.index()] = true;
    }
    if terminals.iter().any(|w| !in_set[w.index()]) {
        return false;
    }
    // BFS within the set.
    let mut seen = vec![false; g.num_vertices()];
    let mut stack = vec![first];
    seen[first.index()] = true;
    while let Some(u) = stack.pop() {
        for (v, _) in g.neighbors(u) {
            if in_set[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    terminals.iter().all(|w| seen[w.index()])
}

/// Whether `set` is an induced Steiner subgraph of `(g, terminals)`:
/// contains all terminals with all of them in one component of `G[set]`.
pub fn is_induced_steiner_subgraph(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    set: &[VertexId],
) -> bool {
    terminals_connected_within(g, terminals, set)
}

/// Whether `set` is a **minimal** induced Steiner subgraph: it works, and
/// removing any single non-terminal vertex breaks it. (Single-vertex
/// removals suffice: if a proper subset `S′ ⊂ S` worked, then removing any
/// one vertex of `S ∖ S′` would also work, since induced Steiner subgraphs
/// are monotone under adding vertices back.)
pub fn is_minimal_induced_steiner_subgraph(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    set: &[VertexId],
) -> bool {
    if !is_induced_steiner_subgraph(g, terminals, set) {
        return false;
    }
    let mut term_mask = vec![false; g.num_vertices()];
    for &w in terminals {
        term_mask[w.index()] = true;
    }
    let mut reduced: Vec<VertexId> = Vec::with_capacity(set.len());
    for &v in set {
        if term_mask[v.index()] {
            continue;
        }
        reduced.clear();
        reduced.extend(set.iter().copied().filter(|&u| u != v));
        if is_induced_steiner_subgraph(g, terminals, &reduced) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn path_interior_is_required() {
        let g = path5();
        let w = [VertexId(0), VertexId(4)];
        let all: Vec<VertexId> = (0..5).map(VertexId::new).collect();
        assert!(is_induced_steiner_subgraph(&g, &w, &all));
        assert!(is_minimal_induced_steiner_subgraph(&g, &w, &all));
        let missing_middle = [VertexId(0), VertexId(1), VertexId(3), VertexId(4)];
        assert!(!is_induced_steiner_subgraph(&g, &w, &missing_middle));
    }

    #[test]
    fn superset_is_not_minimal() {
        // Triangle plus pendant terminal pair.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let w = [VertexId(0), VertexId(3)];
        let minimal = [VertexId(0), VertexId(2), VertexId(3)];
        assert!(is_minimal_induced_steiner_subgraph(&g, &w, &minimal));
        let bloated = [VertexId(0), VertexId(1), VertexId(2), VertexId(3)];
        assert!(is_induced_steiner_subgraph(&g, &w, &bloated));
        assert!(!is_minimal_induced_steiner_subgraph(&g, &w, &bloated));
    }

    #[test]
    fn missing_terminal_fails() {
        let g = path5();
        let w = [VertexId(0), VertexId(4)];
        assert!(!is_induced_steiner_subgraph(&g, &w, &[VertexId(0)]));
    }

    #[test]
    fn single_terminal_is_minimal_alone() {
        let g = path5();
        let w = [VertexId(2)];
        assert!(is_minimal_induced_steiner_subgraph(&g, &w, &[VertexId(2)]));
        assert!(!is_minimal_induced_steiner_subgraph(
            &g,
            &w,
            &[VertexId(2), VertexId(3)]
        ));
    }
}
