//! DFS over the solution supergraph (§7, Theorem 42).
//!
//! Lemma 41 proves the supergraph strongly connected, so a graph search
//! from any one solution (we use μ of the whole component) visits them
//! all. The visited set stores every solution — the exponential-space part
//! of Theorem 42 — while each expansion costs polynomially many μ calls,
//! giving polynomial delay.

use crate::mu::mu;
use crate::neighbors::neighbors_of;
use std::collections::HashSet;
use std::ops::ControlFlow;
use steiner_graph::clawfree::find_claw;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::traversal::bfs;
use steiner_graph::{GraphError, UndirectedGraph, VertexId};

/// Counters for an induced-subgraph enumeration run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InducedStats {
    /// Solutions handed to the sink.
    pub solutions: u64,
    /// Supergraph nodes expanded (= solutions, on completion).
    pub expanded: u64,
    /// Total neighbor candidates generated (including duplicates).
    pub neighbor_candidates: u64,
}

/// Enumerates every minimal induced Steiner subgraph of `(g, terminals)`
/// on a **claw-free** graph, invoking `sink` with each solution as a
/// sorted vertex set. Polynomial delay, exponential space (Theorem 42).
///
/// Errors if `g` has a claw. Degenerate cases: no terminals — no
/// solutions; terminals in different components — no solutions; a single
/// terminal — the singleton solution.
///
/// ```
/// use steiner_induced::supergraph::enumerate_minimal_induced_steiner_subgraphs;
/// use steiner_graph::{generators, VertexId};
/// use std::ops::ControlFlow;
///
/// // C6 (claw-free): two arcs connect antipodal terminals.
/// let g = generators::cycle(6);
/// let mut count = 0;
/// enumerate_minimal_induced_steiner_subgraphs(&g, &[VertexId(0), VertexId(3)], &mut |set| {
///     assert_eq!(set.len(), 4);
///     count += 1;
///     ControlFlow::Continue(())
/// }).unwrap();
/// assert_eq!(count, 2);
/// ```
pub fn enumerate_minimal_induced_steiner_subgraphs(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[VertexId]) -> ControlFlow<()>,
) -> Result<InducedStats, GraphError> {
    if let Some(claw) = find_claw(g) {
        return Err(GraphError::Precondition {
            message: format!(
                "graph has an induced claw centered at {} (leaves {}, {}, {})",
                claw[0], claw[1], claw[2], claw[3]
            ),
        });
    }
    let mut terminals = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();
    let mut stats = InducedStats::default();
    if terminals.is_empty() {
        return Ok(stats);
    }
    if !all_in_one_component(g, &terminals, None) {
        return Ok(stats);
    }
    if terminals.len() == 1 {
        stats.solutions = 1;
        stats.expanded = 1;
        let _ = sink(&terminals);
        return Ok(stats);
    }
    // Initial solution: μ of the whole component containing W.
    let comp = bfs(g, &[terminals[0]], None);
    let component: Vec<VertexId> = g.vertices().filter(|v| comp.visited[v.index()]).collect();
    let x0 = mu(g, &component, &terminals);
    let mut visited: HashSet<Vec<VertexId>> = HashSet::new();
    let mut stack: Vec<Vec<VertexId>> = Vec::new();
    visited.insert(x0.clone());
    stats.solutions += 1;
    if sink(&x0).is_break() {
        return Ok(stats);
    }
    stack.push(x0);
    while let Some(x) = stack.pop() {
        stats.expanded += 1;
        for z in neighbors_of(g, &x, &terminals) {
            stats.neighbor_candidates += 1;
            if visited.contains(&z) {
                continue;
            }
            visited.insert(z.clone());
            stats.solutions += 1;
            if sink(&z).is_break() {
                return Ok(stats);
            }
            stack.push(z);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> BTreeSet<Vec<VertexId>> {
        let mut out = BTreeSet::new();
        enumerate_minimal_induced_steiner_subgraphs(g, w, &mut |set| {
            assert!(out.insert(set.to_vec()), "duplicate {set:?}");
            ControlFlow::Continue(())
        })
        .expect("claw-free input");
        out
    }

    #[test]
    fn cycle_two_solutions() {
        let g = steiner_graph::generators::cycle(6);
        let w = [VertexId(0), VertexId(3)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_induced_steiner_subgraphs(&g, &w));
        assert_eq!(got.len(), 2, "two arcs of the cycle");
    }

    #[test]
    fn complete_graph_solutions_are_terminal_pairs_or_triples() {
        let g = steiner_graph::generators::complete(5);
        let w = [VertexId(0), VertexId(1), VertexId(4)];
        let got = collect(&g, &w);
        // In K_n the terminals already induce a connected graph.
        assert_eq!(got.len(), 1);
        assert!(got.contains(&vec![VertexId(0), VertexId(1), VertexId(4)]));
    }

    #[test]
    fn claw_input_is_rejected() {
        let g = steiner_graph::generators::star(3);
        let res = enumerate_minimal_induced_steiner_subgraphs(
            &g,
            &[VertexId(1), VertexId(2)],
            &mut |_| ControlFlow::Continue(()),
        );
        assert!(matches!(res, Err(GraphError::Precondition { .. })));
    }

    #[test]
    fn single_terminal_singleton() {
        let g = steiner_graph::generators::cycle(4);
        let got = collect(&g, &[VertexId(2)]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&vec![VertexId(2)]));
    }

    #[test]
    fn disconnected_terminals_no_solutions() {
        // Two disjoint triangles (claw-free).
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        assert!(collect(&g, &[VertexId(0), VertexId(3)]).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_line_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1abe1);
        for case in 0..30 {
            let base_n = 4 + case % 4;
            let g = steiner_graph::generators::random_claw_free(base_n, base_n + 2, &mut rng);
            let n = g.num_vertices();
            if !(2..=16).contains(&n) {
                continue;
            }
            let t = 2 + rng.gen_range(0..2usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            assert_eq!(
                collect(&g, &w),
                brute::minimal_induced_steiner_subgraphs(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_structured_claw_free() {
        for (g, w) in [
            (
                steiner_graph::generators::cycle(7),
                vec![VertexId(0), VertexId(2), VertexId(5)],
            ),
            (
                steiner_graph::generators::complete(4),
                vec![VertexId(0), VertexId(3)],
            ),
            (
                steiner_graph::line_graph::line_graph(&steiner_graph::generators::grid(2, 3)),
                vec![VertexId(0), VertexId(6)],
            ),
        ] {
            assert_eq!(
                collect(&g, &w),
                brute::minimal_induced_steiner_subgraphs(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    /// Regression test for the Lemma 41 erratum (DESIGN.md §9.6, case
    /// iii): on the Theorem 39 instance of this 6-vertex graph, the
    /// "long way around" solution has no incoming arc under the paper's
    /// neighbor rule; the blocker-relaxation repair must reach it.
    #[test]
    fn long_way_around_solution_is_reached() {
        use steiner_graph::line_graph::Theorem39Instance;
        let g = UndirectedGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (2, 3), (3, 4), (1, 5), (5, 4), (3, 5)],
        )
        .unwrap();
        let w = [VertexId(3), VertexId(5)];
        let inst = Theorem39Instance::new(&g, &w);
        let mut trees = BTreeSet::new();
        enumerate_minimal_induced_steiner_subgraphs(&inst.h, &inst.h_terminals, &mut |set| {
            trees.insert(inst.solution_to_edges(set));
            ControlFlow::Continue(())
        })
        .unwrap();
        let expected = crate::reduction::minimal_steiner_trees_via_induced(&g, &w).unwrap();
        assert_eq!(trees, expected);
        assert_eq!(trees.len(), 3, "includes the path 3-2-0-1-5");
        assert!(trees.contains(&vec![
            steiner_graph::EdgeId(0),
            steiner_graph::EdgeId(1),
            steiner_graph::EdgeId(2),
            steiner_graph::EdgeId(4)
        ]));
    }

    #[test]
    fn early_break_stops() {
        let g = steiner_graph::generators::cycle(8);
        let mut count = 0;
        enumerate_minimal_induced_steiner_subgraphs(&g, &[VertexId(0), VertexId(4)], &mut |_| {
            count += 1;
            ControlFlow::Break(())
        })
        .unwrap();
        assert_eq!(count, 1);
    }
}
