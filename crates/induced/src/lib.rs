//! Minimal induced Steiner subgraph enumeration on claw-free graphs — §7
//! of *Linear-Delay Enumeration for Minimal Steiner Problems* (PODS 2022).
//!
//! Solutions here are **vertex sets**: inclusion-wise minimal `U ⊇ W` such
//! that `G[U]` connects all terminals. On general graphs the problem is
//! transversal-hard even on split graphs \[8\]; the paper shows that on
//! **claw-free** graphs the supergraph technique yields polynomial delay
//! (Theorem 42) with exponential space (the visited set).
//!
//! * [`mu`] — the greedy minimizer μ(X, W);
//! * [`neighbors`] — the neighbor relation of the solution supergraph
//!   (one candidate per cut vertex `v` and attachment vertex `w`);
//! * [`supergraph`] — DFS over the strongly connected supergraph
//!   (Lemma 41);
//! * [`reduction`] — Theorem 39: Steiner Tree Enumeration embeds into this
//!   problem on line-graph-based instances;
//! * [`brute`] / [`verify`] — oracles and checkers.

#![deny(unsafe_code)]

pub mod brute;
pub mod mu;
pub mod neighbors;
pub mod reduction;
pub mod supergraph;
pub mod verify;

pub use supergraph::{enumerate_minimal_induced_steiner_subgraphs, InducedStats};
