//! Brute-force minimal induced Steiner subgraph enumeration (test oracle).

use crate::verify::is_minimal_induced_steiner_subgraph;
use std::collections::BTreeSet;
use steiner_graph::{UndirectedGraph, VertexId};

/// Maximum number of vertices the brute force accepts.
pub const MAX_BRUTE_VERTICES: usize = 20;

/// All minimal induced Steiner subgraphs of `(g, terminals)` as sorted
/// vertex sets, by exhausting all vertex subsets containing the terminals.
pub fn minimal_induced_steiner_subgraphs(
    g: &UndirectedGraph,
    terminals: &[VertexId],
) -> BTreeSet<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= MAX_BRUTE_VERTICES,
        "brute force limited to {MAX_BRUTE_VERTICES} vertices"
    );
    let mut terminals = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();
    let mut out = BTreeSet::new();
    if terminals.is_empty() {
        return out;
    }
    let term_mask: u32 = terminals.iter().map(|w| 1u32 << w.index()).sum();
    for mask in 0..(1u32 << n) {
        if mask & term_mask != term_mask {
            continue;
        }
        let set: Vec<VertexId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(VertexId::new)
            .collect();
        if is_minimal_induced_steiner_subgraph(g, &terminals, &set) {
            out.insert(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_unique_solution() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sols = minimal_induced_steiner_subgraphs(&g, &[VertexId(0), VertexId(3)]);
        assert_eq!(sols.len(), 1);
        assert!(sols.contains(&vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]));
    }

    #[test]
    fn square_two_solutions() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sols = minimal_induced_steiner_subgraphs(&g, &[VertexId(0), VertexId(2)]);
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn adjacent_terminals_are_their_own_solution() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let sols = minimal_induced_steiner_subgraphs(&g, &[VertexId(0), VertexId(1)]);
        assert_eq!(sols.len(), 1);
        assert!(sols.contains(&vec![VertexId(0), VertexId(1)]));
    }
}
