//! Theorem 39: Steiner Tree Enumeration as induced Steiner enumeration on
//! claw-free graphs.
//!
//! Given `(G, W)`, build `H` = line graph of `G` plus a pendant-clique
//! vertex `w′` per terminal (the construction lives in
//! [`steiner_graph::line_graph::Theorem39Instance`]). `H` is claw-free,
//! and connected Steiner subgraphs of `(G, W)` correspond to connected
//! induced Steiner subgraphs of `(H, W_H)`; in particular minimal Steiner
//! trees correspond to minimal induced Steiner subgraphs, so the §7
//! enumerator solves Steiner Tree Enumeration — the sense in which §7
//! "non-trivially expands the tractability of Steiner subgraph
//! enumeration".

use crate::supergraph::enumerate_minimal_induced_steiner_subgraphs;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use steiner_graph::line_graph::Theorem39Instance;
use steiner_graph::{EdgeId, GraphError, UndirectedGraph, VertexId};

/// Enumerates the minimal Steiner trees of `(g, terminals)` *via* the
/// Theorem 39 reduction and the claw-free induced enumerator, returning
/// sorted edge sets of `g`.
///
/// This is quadratically more expensive than the direct §4 algorithm — it
/// exists to validate the reduction, not to compete with it.
pub fn minimal_steiner_trees_via_induced(
    g: &UndirectedGraph,
    terminals: &[VertexId],
) -> Result<BTreeSet<Vec<EdgeId>>, GraphError> {
    let mut out = BTreeSet::new();
    let mut terminals = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();
    if terminals.len() <= 1 {
        // Degenerate: a single terminal's minimal Steiner tree is empty.
        if terminals.len() == 1 {
            out.insert(Vec::new());
        }
        return Ok(out);
    }
    let inst = Theorem39Instance::new(g, &terminals);
    enumerate_minimal_induced_steiner_subgraphs(&inst.h, &inst.h_terminals, &mut |set| {
        out.insert(inst.solution_to_edges(set));
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_core::brute;

    #[test]
    fn reduction_matches_direct_enumeration_on_triangle() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        let via = minimal_steiner_trees_via_induced(&g, &w).unwrap();
        assert_eq!(via, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn reduction_matches_on_square_with_diagonal() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let w = [VertexId(1), VertexId(3)];
        let via = minimal_steiner_trees_via_induced(&g, &w).unwrap();
        assert_eq!(via, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn reduction_matches_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x39_39);
        for case in 0..15 {
            let n = 3 + case % 4;
            let m = (n + rng.gen_range(0..3)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            if g.num_edges() > 12 {
                continue; // keep H small enough for the supergraph search
            }
            let t = 2 + rng.gen_range(0..2usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let via = minimal_steiner_trees_via_induced(&g, &w).unwrap();
            assert_eq!(
                via,
                brute::minimal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }
}
