//! The greedy minimizer μ(X, W) of §7.
//!
//! Given a vertex set `X` whose induced subgraph keeps the terminals `W`
//! connected, μ repeatedly deletes a deletable non-terminal vertex until
//! none remains, producing a *minimal* induced Steiner subgraph contained
//! in `X`. The paper allows any implementation ("regardless of its
//! implementation", proof of Lemma 41); ours scans candidate vertices in
//! ascending id to a fixpoint, which makes every enumerator deterministic.

use crate::verify::terminals_connected_within;
use steiner_graph::{UndirectedGraph, VertexId};

/// Computes μ(X, W): a minimal induced Steiner subgraph of `(g, terminals)`
/// contained in `x`, as a sorted vertex set.
///
/// Requires that `x ⊇ terminals` and `G[x]` keeps the terminals connected
/// (checked with a debug assertion).
pub fn mu(g: &UndirectedGraph, x: &[VertexId], terminals: &[VertexId]) -> Vec<VertexId> {
    debug_assert!(
        terminals_connected_within(g, terminals, x),
        "μ requires a valid induced Steiner subgraph as input"
    );
    let n = g.num_vertices();
    let mut in_x = vec![false; n];
    for &v in x {
        in_x[v.index()] = true;
    }
    let mut is_terminal = vec![false; n];
    for &w in terminals {
        is_terminal[w.index()] = true;
    }
    let mut members: Vec<VertexId> = x.to_vec();
    members.sort_unstable();
    members.dedup();
    // Fixpoint loop: each pass tries every remaining non-terminal vertex in
    // ascending order.
    let mut changed = true;
    let mut seen = vec![0u32; n];
    let mut epoch = 0u32;
    while changed {
        changed = false;
        let snapshot = members.clone();
        for &v in &snapshot {
            if is_terminal[v.index()] || !in_x[v.index()] {
                continue;
            }
            // Tentatively remove v; accept if W stays in one component.
            in_x[v.index()] = false;
            epoch += 1;
            let connected = if terminals.is_empty() {
                true // no terminals: everything is deletable
            } else {
                let first = terminals[0];
                let mut stack = vec![first];
                seen[first.index()] = epoch;
                let mut reached = 1usize;
                while let Some(u) = stack.pop() {
                    for (nb, _) in g.neighbors(u) {
                        if in_x[nb.index()] && seen[nb.index()] != epoch {
                            seen[nb.index()] = epoch;
                            if is_terminal[nb.index()] {
                                reached += 1;
                            }
                            stack.push(nb);
                        }
                    }
                }
                reached == terminals.len()
            };
            if connected {
                changed = true;
            } else {
                in_x[v.index()] = true;
            }
        }
        members.retain(|v| in_x[v.index()]);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_minimal_induced_steiner_subgraph;

    #[test]
    fn mu_strips_redundant_vertices() {
        // Triangle 0-1-2 plus pendant 3 at 2; terminals {0, 3}.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let all: Vec<VertexId> = (0..4).map(VertexId::new).collect();
        let w = [VertexId(0), VertexId(3)];
        let result = mu(&g, &all, &w);
        assert_eq!(result, vec![VertexId(0), VertexId(2), VertexId(3)]);
        assert!(is_minimal_induced_steiner_subgraph(&g, &w, &result));
    }

    #[test]
    fn mu_of_minimal_set_is_identity() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = [VertexId(0), VertexId(2)];
        let minimal = vec![VertexId(0), VertexId(1), VertexId(2)];
        assert_eq!(mu(&g, &minimal, &w), minimal);
    }

    #[test]
    fn mu_respects_deterministic_order() {
        // Square: terminals {0, 2}; both midpoints 1, 3 present. μ removes
        // the smaller-id midpoint's *redundant* partner deterministically:
        // removing 1 first succeeds (path through 3 remains).
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let all: Vec<VertexId> = (0..4).map(VertexId::new).collect();
        let w = [VertexId(0), VertexId(2)];
        let result = mu(&g, &all, &w);
        assert_eq!(result, vec![VertexId(0), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn mu_single_terminal() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = [VertexId(1)];
        let all: Vec<VertexId> = (0..3).map(VertexId::new).collect();
        assert_eq!(mu(&g, &all, &w), vec![VertexId(1)]);
    }

    #[test]
    fn mu_results_are_always_minimal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3333);
        for _ in 0..40 {
            let n = 4 + rng.gen_range(0..8usize);
            let g = steiner_graph::generators::random_connected_graph(n, n + 3, &mut rng);
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let all: Vec<VertexId> = (0..n).map(VertexId::new).collect();
            let result = mu(&g, &all, &w);
            assert!(
                is_minimal_induced_steiner_subgraph(&g, &w, &result),
                "graph {g:?} terminals {w:?} -> {result:?}"
            );
        }
    }
}
