//! The neighbor relation of the solution supergraph (§7).
//!
//! For a minimal induced Steiner subgraph `X` and a non-terminal cut
//! vertex `v ∈ X ∖ W`, deleting `v` splits `G[X]` into **exactly two**
//! components `C₁, C₂` (three would give an induced claw at `v`). For each
//! attachment vertex `w ∈ N(C₁) ∖ {v}` the neighbor *with respect to
//! `(v, w)`* is
//!
//! ```text
//! C₁ʷ = μ(C₁ ∪ {w}, (W ∩ C₁) ∪ {w})
//! C₂ʷ = μ(C₂, W ∩ C₂)
//! P   = a shortest w-C₂ʷ path avoiding N(C₁ʷ) ∖ {w} (and C₁ʷ ∖ {w})
//! Z   = μ(C₁ʷ ∪ C₂ʷ ∪ V(P), W)      (undefined when no such P exists)
//! ```
//!
//! Lemma 41 shows this relation makes the supergraph strongly connected.
//! We generate candidates for both orderings `(C₁, C₂)` and `(C₂, C₁)`.
//!
//! **Erratum repair (see DESIGN.md §9.7):** the strict avoidance of
//! `N(C₁ʷ) ∖ {w}` can block *every* `w`-`C₂ʷ` path — e.g. `C₆` with
//! terminals at distance 3: from `X = {0,3,4,5}`, every candidate pair
//! `(v, w)` has its only reconnecting path blocked, because μ shrinks `C₁`
//! and thereby grows the forbidden neighborhood (the step in Lemma 41's
//! proof asserting the `Y`-path avoids `N(C₁¹)` fails). We therefore also
//! emit a **relaxed** candidate per `(v, w)` that avoids only
//! `C₁ʷ ∖ {w}`; each extra candidate is still μ of a valid induced
//! Steiner subgraph (hence a genuine solution), and the widened relation
//! restores strong connectivity on the failing family. Property tests
//! compare the search against brute force on random claw-free graphs.

use crate::mu::mu;
use std::collections::BTreeSet;
use steiner_graph::{UndirectedGraph, VertexId};

/// Computes the two components of `G[X ∖ {v}]`. Panics if the count is not
/// exactly two — on claw-free inputs with `X` minimal it always is.
fn split_components(
    g: &UndirectedGraph,
    x: &[VertexId],
    v: VertexId,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut in_x = vec![false; n];
    for &u in x {
        in_x[u.index()] = true;
    }
    in_x[v.index()] = false;
    let mut comp_of = vec![usize::MAX; n];
    let mut comps: Vec<Vec<VertexId>> = Vec::new();
    for &start in x {
        if start == v || comp_of[start.index()] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut stack = vec![start];
        comp_of[start.index()] = id;
        let mut members = Vec::new();
        while let Some(u) = stack.pop() {
            members.push(u);
            for (nb, _) in g.neighbors(u) {
                if in_x[nb.index()] && comp_of[nb.index()] == usize::MAX {
                    comp_of[nb.index()] = id;
                    stack.push(nb);
                }
            }
        }
        comps.push(members);
    }
    assert_eq!(
        comps.len(),
        2,
        "claw-free + minimal X: deleting a cut vertex leaves exactly two components"
    );
    let mut it = comps.into_iter();
    (
        it.next().expect("asserted exactly two components above"),
        it.next().expect("asserted exactly two components above"),
    )
}

/// The (deduplicated, sorted) neighbors of solution `x` in the supergraph.
pub fn neighbors_of(
    g: &UndirectedGraph,
    x: &[VertexId],
    terminals: &[VertexId],
) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut is_terminal = vec![false; n];
    for &w in terminals {
        is_terminal[w.index()] = true;
    }
    let mut result: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    for &v in x {
        if is_terminal[v.index()] {
            continue;
        }
        let (c1, c2) = split_components(g, x, v);
        for (first, second) in [(&c1, &c2), (&c2, &c1)] {
            candidates_for(g, terminals, &is_terminal, v, first, second, &mut result);
        }
    }
    result.into_iter().collect()
}

fn candidates_for(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    is_terminal: &[bool],
    v: VertexId,
    c1: &[VertexId],
    c2: &[VertexId],
    result: &mut BTreeSet<Vec<VertexId>>,
) {
    let n = g.num_vertices();
    let mut in_c1 = vec![false; n];
    for &u in c1 {
        in_c1[u.index()] = true;
    }
    // N(C₁) ∖ {v}, deduplicated.
    let mut attachments: Vec<VertexId> = Vec::new();
    let mut seen = vec![false; n];
    for &u in c1 {
        for (nb, _) in g.neighbors(u) {
            if nb != v && !in_c1[nb.index()] && !seen[nb.index()] {
                seen[nb.index()] = true;
                attachments.push(nb);
            }
        }
    }
    attachments.sort_unstable();
    // Terminal subsets of the two components.
    let w_c1: Vec<VertexId> = c1
        .iter()
        .copied()
        .filter(|u| is_terminal[u.index()])
        .collect();
    let w_c2: Vec<VertexId> = c2
        .iter()
        .copied()
        .filter(|u| is_terminal[u.index()])
        .collect();
    let c2_min = mu(g, c2, &w_c2);
    for w in attachments {
        // C₁ʷ = μ(C₁ ∪ {w}, (W ∩ C₁) ∪ {w}).
        let mut c1_plus: Vec<VertexId> = c1.to_vec();
        c1_plus.push(w);
        let mut w1_plus = w_c1.clone();
        w1_plus.push(w);
        let c1w = mu(g, &c1_plus, &w1_plus);
        let mut in_c2w = vec![false; n];
        for &u in &c2_min {
            in_c2w[u.index()] = true;
        }
        // The paper's avoidance set B = N(C₁ʷ) ∖ {w}.
        let mut in_c1w = vec![false; n];
        for &u in &c1w {
            in_c1w[u.index()] = true;
        }
        let mut blockers: Vec<VertexId> = Vec::new();
        {
            let mut seen_b = vec![false; n];
            for &u in &c1w {
                for (nb, _) in g.neighbors(u) {
                    if nb != w && !in_c1w[nb.index()] && !seen_b[nb.index()] {
                        seen_b[nb.index()] = true;
                        blockers.push(nb);
                    }
                }
            }
            blockers.sort_unstable();
        }
        // Collect the distinct reconnecting paths across all avoidance
        // levels, then run μ once per distinct path. Levels: the paper's
        // full avoidance; each single blocker re-allowed (erratum repair —
        // this is what reaches the "long way around" solutions); and no
        // blocker avoidance at all. C₁ʷ ∖ {w} is always avoided.
        let mut paths: BTreeSet<Vec<VertexId>> = BTreeSet::new();
        let mut base_allowed = vec![true; n];
        for &u in &c1w {
            if u != w {
                base_allowed[u.index()] = false;
            }
        }
        let try_level =
            |relax: Option<VertexId>, all: bool, paths: &mut BTreeSet<Vec<VertexId>>| {
                let mut allowed = base_allowed.clone();
                if !all {
                    for &b in &blockers {
                        if Some(b) != relax {
                            allowed[b.index()] = false;
                        }
                    }
                }
                allowed[w.index()] = true;
                if let Some(path) = shortest_path_to_set(g, w, &in_c2w, &allowed) {
                    paths.insert(path);
                }
            };
        try_level(None, false, &mut paths); // the paper's rule
        try_level(None, true, &mut paths); // fully relaxed
        for &b in &blockers.clone() {
            try_level(Some(b), false, &mut paths); // one blocker re-allowed
        }
        for path in &paths {
            let mut union: Vec<VertexId> = c1w.clone();
            union.extend_from_slice(&c2_min);
            union.extend_from_slice(path);
            union.sort_unstable();
            union.dedup();
            let z = mu(g, &union, terminals);
            result.insert(z);
        }
        // Generous repair candidate: reconnect C₁ ∪ {w} to the *full* C₂
        // avoiding only C₁ ∪ {v}; μ minimizes globally afterwards. This
        // covers instances where μ's shrinking of C₂ leaves C₂ʷ
        // unreachable (second part of the Lemma 41 erratum).
        {
            let mut allowed = vec![true; n];
            for &u in c1 {
                allowed[u.index()] = false;
            }
            allowed[v.index()] = false;
            allowed[w.index()] = true;
            let mut in_c2 = vec![false; n];
            for &u in c2 {
                in_c2[u.index()] = true;
            }
            if let Some(path) = shortest_path_to_set(g, w, &in_c2, &allowed) {
                let mut union: Vec<VertexId> = c1.to_vec();
                union.push(w);
                union.extend_from_slice(c2);
                union.extend_from_slice(&path);
                union.sort_unstable();
                union.dedup();
                let z = mu(g, &union, terminals);
                result.insert(z);
            }
        }
    }
}

/// BFS shortest path from `start` to any vertex of `target` through
/// `allowed` vertices; returns the path's vertices (including both ends).
fn shortest_path_to_set(
    g: &UndirectedGraph,
    start: VertexId,
    target: &[bool],
    allowed: &[bool],
) -> Option<Vec<VertexId>> {
    if !allowed[start.index()] {
        return None;
    }
    if target[start.index()] {
        return Some(vec![start]);
    }
    let n = g.num_vertices();
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[start.index()] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for (v, _) in g.neighbors(u) {
            if seen[v.index()] || !allowed[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            parent[v.index()] = Some(u);
            if target[v.index()] {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(p) = parent[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_minimal_induced_steiner_subgraph;

    #[test]
    fn split_two_components() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let x = [VertexId(0), VertexId(1), VertexId(2)];
        let (c1, c2) = split_components(&g, &x, VertexId(1));
        let mut sizes = [c1.len(), c2.len()];
        sizes.sort_unstable();
        assert_eq!(sizes, [1, 1]);
    }

    #[test]
    fn cycle_neighbors_flip_sides() {
        // C₅ (claw-free), terminals two adjacent vertices' opposite arc...
        // Take terminals {0, 2}: solutions are {0,1,2} and {0,4,3,2}.
        let g = steiner_graph::generators::cycle(5);
        let w = [VertexId(0), VertexId(2)];
        let x = vec![VertexId(0), VertexId(1), VertexId(2)];
        let nbrs = neighbors_of(&g, &x, &w);
        assert!(
            nbrs.contains(&vec![VertexId(0), VertexId(2), VertexId(3), VertexId(4)]),
            "the other side of the cycle is a neighbor: {nbrs:?}"
        );
        for z in &nbrs {
            assert!(is_minimal_induced_steiner_subgraph(&g, &w, z), "{z:?}");
        }
    }

    #[test]
    fn neighbors_are_minimal_on_random_claw_free() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xabcd);
        for _ in 0..20 {
            let g = steiner_graph::generators::random_claw_free(6, 8, &mut rng);
            let n = g.num_vertices();
            if n < 3 {
                continue;
            }
            let t = 2.min(n);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            if !steiner_graph::connectivity::all_in_one_component(&g, &w, None) {
                continue;
            }
            let comp = steiner_graph::traversal::bfs(&g, &[w[0]], None);
            let x0: Vec<VertexId> = g.vertices().filter(|v| comp.visited[v.index()]).collect();
            let x = mu(&g, &x0, &w);
            for z in neighbors_of(&g, &x, &w) {
                assert!(
                    is_minimal_induced_steiner_subgraph(&g, &w, &z),
                    "graph {g:?} x {x:?} z {z:?}"
                );
                assert!(rng.gen_bool(1.0)); // keep rng used deterministically
            }
        }
    }
}
