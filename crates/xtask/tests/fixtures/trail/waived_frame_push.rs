//! Known-clean: marks that escape into frames, and a waived early exit.

struct Frame {
    trail: TrailMark,
    choice: u32,
}

fn descend(search: &mut Search, choice: u32) {
    let trail = search.trail.mark();
    search.set(choice);
    search.frames.push(Frame { trail, choice });
}

fn branch(search: &mut Search) -> Result<(), Error> {
    let mark = search.trail.mark();
    search.set(0);
    if search.done() {
        // lint:allow(trail) the caller retracts this frame via retract_all on Break
        return Ok(());
    }
    search.trail.undo_to(&mut search.mask, mark);
    Ok(())
}

fn checkpoint_of(search: &Search) -> TrailMark {
    search.trail.mark()
}
