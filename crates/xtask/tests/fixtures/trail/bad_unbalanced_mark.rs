//! Known-bad: a trail mark taken but never unwound.

fn descend(trail: &mut Trail, mask: &mut [bool]) {
    let mark = trail.mark();
    trail.set(mask, 3);
    let _ = mark;
}
