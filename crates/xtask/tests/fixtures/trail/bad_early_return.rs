//! Known-bad: early exits between a retained mark and its unwind.

fn classify(trail: &mut Trail, mask: &mut [bool], stop: bool) -> Result<u32, Error> {
    let mark = trail.mark();
    trail.set(mask, 1);
    if stop {
        return Ok(0);
    }
    let v = fallible()?;
    trail.undo_to(mask, mark);
    Ok(v)
}
