//! Known-clean: justified unsafe, guards released before channel work,
//! the condvar wait pattern, and one waived send-under-lock.

fn read_first(v: &[u32]) -> u32 {
    // SAFETY: callers uphold v.len() >= 1; checked by the debug assert above.
    unsafe { *v.get_unchecked(0) }
}

fn relay(shared: &Shared, tx: &Sender<u32>) {
    let queued = {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.queued += 1;
        sched.queued
    };
    tx.send(queued).ok();
}

fn park(shared: &Shared) {
    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    while sched.queued == 0 {
        sched = shared.cv.wait(sched).unwrap_or_else(|e| e.into_inner());
    }
}

fn flush(shared: &Shared, tx: &Sender<u32>) {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    // lint:allow(lock) shutdown path: the channel is unbounded, send cannot block
    tx.send(sched.queued).ok();
    drop(sched);
}
