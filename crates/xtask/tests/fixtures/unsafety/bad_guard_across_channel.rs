//! Known-bad: lock guards held live across channel operations.

fn relay(shared: &Shared, tx: &Sender<u32>) {
    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    sched.queued += 1;
    tx.send(sched.queued).ok();
}

fn drain(shared: &Shared, rx: &Receiver<u32>) {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    let _ = rx.recv();
    drop(sched);
}
