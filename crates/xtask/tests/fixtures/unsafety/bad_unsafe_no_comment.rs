//! Known-bad: unsafe blocks with no SAFETY justification.

fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}

fn transmute_bits(x: f64) -> u64 {
    // This comment does not justify anything.
    unsafe { std::mem::transmute(x) }
}
