//! Known-bad: allocating constructs inside a hot-path function.

fn classify(out: &mut Vec<u32>) -> usize {
    let mut scratch = Vec::new();
    scratch.extend(out.iter().copied());
    let doubled: Vec<u32> = out.iter().map(|x| x * 2).collect();
    let label = format!("{}", doubled.len());
    out.push(label.len() as u32);
    scratch.len()
}

fn prepare(n: usize) -> Vec<u32> {
    // Not a hot-path function: allocation here is fine.
    let mut v = Vec::new();
    v.resize(n, 0);
    v
}
