//! Known-bad: heap clones and boxed nodes inside branch/descend.

struct Frame {
    edges: Vec<u32>,
}

fn branch(frames: &mut Vec<Frame>, current: &Frame) {
    let snapshot = current.edges.clone();
    let boxed = Box::new(snapshot.len());
    frames.push(Frame {
        edges: current.edges.to_vec(),
    });
    let _ = boxed;
}

fn descend(frames: &mut Vec<Frame>) -> String {
    let names: Vec<String> = frames.iter().map(|f| f.edges.len().to_string()).collect();
    names.join(",")
}
