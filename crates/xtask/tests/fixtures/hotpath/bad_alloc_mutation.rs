//! Known-bad: the epoch-engine mutation paths allocate without waivers —
//! a fresh touched-set per edit in `batch_apply`, a rebuilt label vector
//! in `apply_insert_fp`, and a collected occupancy set in `carry_over`.

struct Engine {
    labels: Vec<u32>,
    touched: Vec<u32>,
}

fn batch_apply(engine: &mut Engine, edits: &[u32]) -> Vec<u32> {
    let mut touched = Vec::new();
    for &e in edits {
        touched.push(e);
    }
    engine.touched = touched.clone();
    touched
}

fn apply_insert_fp(engine: &mut Engine, gone: u32, keep: u32) {
    let relabeled: Vec<u32> = engine
        .labels
        .iter()
        .map(|&r| if r == gone { keep } else { r })
        .collect();
    engine.labels = relabeled;
}

fn carry_over(engine: &Engine, delta: &[u32]) -> bool {
    let occupied = engine.labels.to_vec();
    delta.iter().all(|r| !occupied.contains(r))
}
