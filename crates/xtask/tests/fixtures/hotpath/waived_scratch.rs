//! Known-clean: hot-path allocations that are waived or debug-gated.

fn classify(out: &mut Vec<u32>) -> usize {
    // lint:allow(alloc) one-time lazy growth of the reusable scratch pool
    let mut scratch = Vec::new();
    scratch.extend(out.iter().copied());
    #[cfg(debug_assertions)]
    {
        let audit = out.clone();
        debug_assert_eq!(audit.len(), out.len());
    }
    scratch.len()
}

fn retract_frame(out: &mut Vec<u32>) {
    out.pop();
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocating_in_tests_is_fine() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.len(), 4);
    }
}
