//! Known-bad: allocating constructs inside the packed bitset sweep.

fn bits_and_not(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
    let staged: Vec<u64> = a.iter().zip(b).map(|(x, y)| x & !y).collect();
    for (d, w) in dst.iter_mut().zip(staged.clone()) {
        *d = w;
    }
    staged.len()
}

fn prepare_words(n: usize) -> Vec<u64> {
    // Not a hot-path function: allocation here is fine.
    vec![0u64; n.div_ceil(64)]
}
