//! Known-bad: wall-clock and sleep calls in library code.

fn measure(work: impl FnOnce()) -> u64 {
    let start = std::time::Instant::now();
    work();
    start.elapsed().as_nanos() as u64
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}
