//! Known-bad: unwraps, empty expects, panics, and ambient environment reads.

fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("")
}

fn reject() -> ! {
    panic!("boom");
}

fn unfinished(x: u32) -> u32 {
    match x {
        0 => todo!(),
        _ => unreachable!(),
    }
}

fn configured() -> bool {
    std::env::var("STEINER_MODE").is_ok()
}
