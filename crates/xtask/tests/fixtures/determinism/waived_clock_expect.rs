//! Known-clean: waived clock use and message-bearing expects.

fn deadline_from(timeout_ms: u64) -> std::time::Instant {
    // lint:allow(clock) deadlines are anchored to the caller-visible service clock
    std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms)
}

fn first(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees a nonempty slice")
}

fn classify_bit(b: bool) -> u32 {
    match b {
        true => 1,
        false => unreachable!("normalized upstream: false is filtered out"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
