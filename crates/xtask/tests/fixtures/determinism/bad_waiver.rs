//! Known-bad: malformed waivers — unknown rule name and missing reason.

fn classify(v: &mut Vec<u32>) -> usize {
    // lint:allow(alloc)
    let scratch: Vec<u32> = v.iter().copied().collect();
    // lint:allow(allocations) spelled wrong: the rule is `alloc`
    let more = scratch.to_vec();
    more.len()
}
