//! Golden-file validation of the `steiner-lint` passes, plus the
//! workspace self-check.
//!
//! Every `tests/fixtures/<pass>/*.rs` file is linted in fixture mode
//! (all passes armed, all hot-path function names active, lock auditing
//! on) and its diagnostics — in [`xtask::Diagnostic`] compact
//! `LINE:COL pass: message` form — must match the sibling `.expected`
//! file byte-for-byte. `bad_*` fixtures must produce findings; `waived_*`
//! fixtures must be clean. The same contract is exercised end-to-end
//! through the CLI (`xtask lint --fixture FILE`), pinning the exit codes
//! CI relies on.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// All fixture `.rs` files, sorted for deterministic iteration.
fn fixture_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    for pass_dir in fs::read_dir(fixtures_dir()).expect("tests/fixtures exists") {
        let pass_dir = pass_dir.expect("readable fixtures entry").path();
        if !pass_dir.is_dir() {
            continue;
        }
        for f in fs::read_dir(&pass_dir).expect("readable pass dir") {
            let f = f.expect("readable fixture entry").path();
            if f.extension().is_some_and(|e| e == "rs") {
                files.push(f);
            }
        }
    }
    files.sort();
    files
}

fn compact_report(path: &Path) -> String {
    let diags = xtask::lint_fixture(path).expect("fixture file is readable");
    diags.iter().map(|d| format!("{}\n", d.compact())).collect()
}

#[test]
fn fixtures_match_expected_output() {
    let files = fixture_files();
    assert!(
        files.len() >= 12,
        "expected >= 2 bad + 1 waived fixture per pass, found {}",
        files.len()
    );
    let mut failures = Vec::new();
    for path in &files {
        let got = compact_report(path);
        let expected_path = path.with_extension("expected");
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing {} — every fixture pins its diagnostics",
                expected_path.display()
            )
        });
        if got.trim_end() != expected.trim_end() {
            failures.push(format!(
                "== {} ==\n-- expected --\n{}\n-- got --\n{}",
                path.display(),
                expected.trim_end(),
                got.trim_end()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn bad_fixtures_fail_and_waived_fixtures_pass() {
    for path in fixture_files() {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("fixture names are utf-8");
        let report = compact_report(&path);
        if name.starts_with("bad_") {
            assert!(
                !report.is_empty(),
                "{} is a known-bad fixture but linted clean",
                path.display()
            );
        } else if name.starts_with("waived_") {
            assert!(
                report.is_empty(),
                "{} is a known-clean fixture but produced:\n{report}",
                path.display()
            );
        } else {
            panic!(
                "{}: fixture names start with bad_ or waived_",
                path.display()
            );
        }
    }
}

/// The CLI contract CI depends on: `lint --fixture FILE` exits 1 on every
/// bad fixture (printing the pinned compact diagnostics on stdout) and 0
/// on every waived fixture.
#[test]
fn cli_exit_codes_match_fixture_kind() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    for path in fixture_files() {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("fixture names are utf-8");
        let out = Command::new(bin)
            .args(["lint", "--fixture"])
            .arg(&path)
            .output()
            .expect("xtask binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        if name.starts_with("bad_") {
            assert_eq!(
                out.status.code(),
                Some(1),
                "{}: bad fixture must exit 1 (stdout: {stdout})",
                path.display()
            );
        } else {
            assert_eq!(
                out.status.code(),
                Some(0),
                "{}: waived fixture must exit 0 (stdout: {stdout})",
                path.display()
            );
        }
        let expected = fs::read_to_string(path.with_extension("expected"))
            .expect("every fixture has an .expected file");
        assert_eq!(
            stdout.trim_end(),
            expected.trim_end(),
            "{}: CLI output drifted from the golden file",
            path.display()
        );
    }
}

/// The self-check the whole PR hangs on: the real workspace lints clean.
/// Every true finding has been fixed or carries a written waiver, so any
/// diagnostic here is a regression (or a new unwaived violation).
#[test]
fn workspace_lints_clean() {
    let root = xtask::find_root(None);
    let diags = xtask::lint_workspace(&root).expect("workspace sources are readable");
    let rendered: String = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "steiner-lint found {} violation(s) in the workspace:\n{rendered}",
        diags.len()
    );
}
