//! Workspace driver: file discovery, per-file contexts (which functions
//! are hot, which crates get the lock audit), the crate-level
//! `#![deny(unsafe_code)]` requirement, and the fixture entry point the
//! golden tests use.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{sort, Diagnostic};
use crate::lexer::TokKind;
use crate::passes::{run_all, FileContext, FileKind};
use crate::source::SourceFile;

/// The designated hot-path functions, per file: the `classify`/`branch`/
/// `descend`/`retract` impls of the four improved enumerators (PR 2's
/// zero-allocation invariant), the Lemma-11/Theorem-12 path enumerator
/// that dominates their inner loop, and the epoch-engine mutation paths
/// (graph edits, delta replay, and cross-epoch skeleton carry-over)
/// that run between queries on the serving graph.
pub const HOT: &[(&str, &[&str])] = &[
    (
        "crates/graph/src/epoch.rs",
        &[
            "insert_edge",
            "remove_edge",
            "insert_arc",
            "remove_arc",
            "batch_apply",
            "apply_insert_fp",
        ],
    ),
    ("crates/graph/src/spanning.rs", &["carry_over"]),
    (
        "crates/graph/src/csr.rs",
        &[
            "apply_delta",
            "apply_delta_doubled",
            "bit_test",
            "bit_set",
            "bit_clear",
            "bit_assign",
            "bit_take",
            "bits_clear",
            "bits_and_not",
            "bits_not",
            "bits_not_or",
            "mix64",
        ],
    ),
    (
        "crates/core/src/improved.rs",
        &["classify", "branch", "descend", "retract_frame"],
    ),
    (
        "crates/core/src/forest.rs",
        &["classify", "branch", "descend_edges", "retract_frame"],
    ),
    (
        "crates/core/src/terminal.rs",
        &[
            "classify",
            "branch",
            "descend",
            "retract_frame",
            "branch_root",
            "branch_terminal",
        ],
    ),
    (
        "crates/core/src/directed.rs",
        &["classify", "branch", "descend", "retract_frame"],
    ),
    (
        "crates/paths/src/enumerate.rs",
        &[
            "f_stp",
            "e_stp",
            "extendible_indices",
            "extendible_indices_naive",
            "push_prefix",
            "pop_prefix",
            "emit",
            "push_qv",
            "push_qa",
            "push_ext",
            "qv",
            "qa",
            "level_mut",
            "mask_removed",
            "fstp_prepare_packed",
            "e_stp_packed",
            "extendible_indices_packed",
            "settle_deferred",
        ],
    ),
];

/// Union of all hot function names — the fixture driver treats every one
/// of these as hot so fixtures can exercise the pass.
pub fn hot_union() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = HOT
        .iter()
        .flat_map(|(_, fns)| fns.iter().copied())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Lints the whole workspace rooted at `root`. Returns diagnostics in
/// deterministic order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut crates: Vec<(String, PathBuf)> = Vec::new();

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            crates.push((name.clone(), crates_dir.join(&name)));
        }
    }
    // The facade package at the workspace root.
    crates.push(("minimal-steiner".to_string(), root.to_path_buf()));

    for (crate_name, crate_root) in &crates {
        let mut crate_has_unsafe = false;
        for (sub, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("benches", FileKind::Bench),
            ("examples", FileKind::Example),
        ] {
            let dir = crate_root.join(sub);
            if !dir.is_dir() {
                continue;
            }
            for path in rust_files(&dir)? {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                // Fixture corpora are known-bad by design.
                if rel.contains("tests/fixtures/") {
                    continue;
                }
                // The facade walk must not re-lint member crates.
                if *crate_name == "minimal-steiner" && rel.starts_with("crates/") {
                    continue;
                }
                let src = fs::read_to_string(&path)?;
                let sf = SourceFile::parse(&rel, &src);
                if kind == FileKind::Lib
                    && sf
                        .lexed
                        .toks
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "unsafe")
                {
                    crate_has_unsafe = true;
                }
                let hot_fns = HOT
                    .iter()
                    .find(|(p, _)| *p == rel)
                    .map(|(_, fns)| *fns)
                    .unwrap_or(&[]);
                let ctx = FileContext {
                    crate_name,
                    kind,
                    hot_fns,
                    lint_locks: crate_name == "service",
                };
                diags.extend(run_all(&sf, &ctx));
            }
        }
        // Crates with zero unsafe in their library target must say so:
        // #![deny(unsafe_code)] keeps it that way.
        if !crate_has_unsafe {
            let lib_rs = crate_root.join("src/lib.rs");
            let root_file = if lib_rs.is_file() {
                lib_rs
            } else {
                crate_root.join("src/main.rs")
            };
            if root_file.is_file() {
                let src = fs::read_to_string(&root_file)?;
                if !has_deny_unsafe(&src) {
                    let rel = root_file
                        .strip_prefix(root)
                        .unwrap_or(&root_file)
                        .to_string_lossy()
                        .replace('\\', "/");
                    diags.push(Diagnostic {
                        path: rel,
                        line: 1,
                        col: 1,
                        pass: "unsafe-audit",
                        message: format!(
                            "crate `{crate_name}` has no unsafe code but does not deny it"
                        ),
                        hint: "add #![deny(unsafe_code)] to the crate root so it stays \
                               unsafe-free"
                            .to_string(),
                    });
                }
            }
        }
    }
    sort(&mut diags);
    Ok(diags)
}

/// Whether a crate root declares `#![deny(unsafe_code)]` (or the stricter
/// `#![forbid(unsafe_code)]`).
fn has_deny_unsafe(src: &str) -> bool {
    let lexed = crate::lexer::lex(src);
    let t = &lexed.toks;
    (0..t.len().saturating_sub(6)).any(|i| {
        t[i].text == "#"
            && t[i + 1].text == "!"
            && t[i + 2].text == "["
            && (t[i + 3].text == "deny" || t[i + 3].text == "forbid")
            && t[i + 4].text == "("
            && t[i + 5].text == "unsafe_code"
            && t[i + 6].text == ")"
    })
}

/// Lints one fixture file: every pass enabled, every known hot function
/// name treated as hot, lock auditing on. Used by the golden tests.
pub fn lint_fixture(path: &Path) -> io::Result<Vec<Diagnostic>> {
    let src = fs::read_to_string(path)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let sf = SourceFile::parse(&name, &src);
    let hot = hot_union();
    let ctx = FileContext {
        crate_name: "fixture",
        kind: FileKind::Lib,
        hot_fns: &hot,
        lint_locks: true,
    };
    let mut diags = run_all(&sf, &ctx);
    sort(&mut diags);
    Ok(diags)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.filter_map(|e| e.ok()).collect();
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                let name = e.file_name();
                if name != "target" && name != "vendor" {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Locates the workspace root: an explicit `--root`, else the current
/// directory if it holds a `[workspace]` manifest, else the compiled-in
/// manifest dir's grandparent (crates/xtask → root).
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if let Ok(manifest) = fs::read_to_string(cwd.join("Cargo.toml")) {
        if manifest.contains("[workspace]") {
            return cwd;
        }
    }
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(cwd)
}
