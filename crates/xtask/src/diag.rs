//! Diagnostics: rustc-style rendering plus the compact one-line form the
//! golden-file fixtures diff against.

use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Pass identifier (`hotpath-alloc`, `trail-balance`, `determinism`,
    /// `panic-hygiene`, `unsafe-audit`, `lock-discipline`, `waiver`).
    pub pass: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to waive or fix it (shown as a `help:` line).
    pub hint: String,
}

impl Diagnostic {
    /// The compact form used by the fixture `.expected` files:
    /// `LINE:COL pass: message`.
    pub fn compact(&self) -> String {
        format!("{}:{} {}: {}", self.line, self.col, self.pass, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[steiner-lint::{}]: {}", self.pass, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        if !self.hint.is_empty() {
            writeln!(f, "  = help: {}", self.hint)?;
        }
        Ok(())
    }
}

/// Sorts diagnostics into deterministic reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.pass).cmp(&(b.path.as_str(), b.line, b.col, b.pass))
    });
}
