//! Per-file analysis model: the lexed token stream plus the derived
//! structure the passes share — function spans, `#[cfg(test)]` /
//! `#[cfg(debug_assertions)]` skip spans, `lint:allow` waivers, and
//! `SAFETY:` comments.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// A `// lint:allow(rule) reason` waiver. Waives findings of `rule` on its
/// own line and the line directly below (so it can sit above a long
/// statement).
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waived rule (`alloc`, `trail`, `clock`, `nondet`, `panic`,
    /// `lock`).
    pub rule: String,
    /// The written justification. Empty reasons are themselves findings.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: u32,
}

/// One `fn` item: name, header start, body token range.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's `{` (body_open == body_close means a
    /// bodyless trait declaration).
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
}

/// The analyzed form of one source file.
pub struct SourceFile {
    /// Workspace-relative path (or fixture-relative in tests).
    pub path: String,
    /// The token stream and comments.
    pub lexed: Lexed,
    /// Every `fn` item, in order, at any nesting depth.
    pub fns: Vec<FnSpan>,
    /// Token ranges `[start, end)` gated behind `#[cfg(test)]` or
    /// `#[cfg(debug_assertions)]` (items and blocks): invariants about the
    /// release hot path do not apply inside them.
    pub skip_spans: Vec<(usize, usize)>,
    /// Parsed `lint:allow` waivers.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lexes and structures `src`.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let fns = scan_fns(&lexed.toks);
        let skip_spans = scan_skip_spans(&lexed.toks);
        let waivers = scan_waivers(&lexed.comments);
        SourceFile {
            path: path.to_string(),
            lexed,
            fns,
            skip_spans,
            waivers,
        }
    }

    /// Whether token index `i` lies in a `cfg(test)` / `cfg(debug_assertions)`
    /// span.
    pub fn is_skipped(&self, i: usize) -> bool {
        self.skip_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Whether a finding of `rule` on `line` is waived (waiver on the same
    /// line or the line directly above).
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        self.waivers.iter().any(|w| {
            w.rule == rule && !w.reason.is_empty() && (w.line == line || w.line + 1 == line)
        })
    }

    /// Whether a comment block ending on `line` or one of the `above` lines
    /// before it carries a `SAFETY:` marker with a nonempty justification.
    /// A run of contiguous `//` lines counts as one block, so a multi-line
    /// justification whose `SAFETY:` sits on the first line still counts.
    pub fn has_safety_comment(&self, line: u32, above: u32) -> bool {
        let cs = &self.lexed.comments;
        let justifies = |c: &Comment| {
            c.text
                .split("SAFETY:")
                .nth(1)
                .is_some_and(|rest| !rest.trim().is_empty())
        };
        let Some(mut k) = cs
            .iter()
            .rposition(|c| c.end_line <= line && c.end_line + above >= line)
        else {
            return false;
        };
        if justifies(&cs[k]) {
            return true;
        }
        while k > 0 && cs[k - 1].end_line + 1 == cs[k].line {
            k -= 1;
            if justifies(&cs[k]) {
                return true;
            }
        }
        false
    }

    /// The tokens of `f`'s body (empty for bodyless declarations).
    pub fn body(&self, f: &FnSpan) -> &[Tok] {
        if f.body_open >= f.body_close {
            return &[];
        }
        &self.lexed.toks[f.body_open + 1..f.body_close]
    }

    /// Body token range of `f` as absolute token indices.
    pub fn body_range(&self, f: &FnSpan) -> (usize, usize) {
        (f.body_open + 1, f.body_close)
    }
}

/// Finds the token index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    debug_assert_eq!(toks[open].text, "{");
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans `fn` items. The body `{` is the first brace after the name that is
/// not nested in `(`/`[` (where-clauses and return types in this codebase
/// contain no braces); a `;` first means a bodyless trait declaration.
fn scan_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let mut j = i + 2;
            let mut paren = 0i64;
            let mut bracket = 0i64;
            let mut body_open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" if paren == 0 && bracket == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        ";" if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            let (open, close) = match body_open {
                Some(o) => (o, matching_brace(toks, o)),
                None => (j, j),
            };
            fns.push(FnSpan {
                name: name_tok.text.clone(),
                line: toks[i].line,
                fn_tok: i,
                body_open: open,
                body_close: close,
            });
            // Continue *inside* the body too: nested fns and closures with
            // inner fns are rare but cheap to cover.
            i += 2;
        } else {
            i += 1;
        }
    }
    fns
}

/// Finds `#[cfg(test)]` / `#[cfg(debug_assertions)]` attributes and records
/// the token span of the item or block they gate.
fn scan_skip_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Parse one attribute; find its closing `]`.
            let mut j = i + 2;
            let mut bracket = 1i64;
            let mut gated = false;
            while j < toks.len() && bracket > 0 {
                match toks[j].text.as_str() {
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    // Exact `cfg(test)` / `cfg(debug_assertions)` only —
                    // `cfg(not(test))` code is live in release builds.
                    "cfg"
                        if toks[j].kind == TokKind::Ident
                            && toks.get(j + 1).map(|t| t.text.as_str()) == Some("(")
                            && matches!(
                                toks.get(j + 2).map(|t| t.text.as_str()),
                                Some("test") | Some("debug_assertions")
                            )
                            && toks.get(j + 3).map(|t| t.text.as_str()) == Some(")") =>
                    {
                        gated = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if gated {
                // Skip over any further attributes to the gated item/block.
                let mut k = j;
                while k < toks.len()
                    && toks[k].text == "#"
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let mut depth2 = 0i64;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => depth2 += 1,
                            "]" => {
                                depth2 -= 1;
                                if depth2 == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // The gated region ends at the matching `}` of the first
                // brace at item level, or at the terminating `;` (e.g.
                // `#[cfg(test)] use …;`).
                let mut m = k;
                let mut paren = 0i64;
                let mut bracket2 = 0i64;
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket2 += 1,
                        "]" => bracket2 -= 1,
                        "{" if paren == 0 && bracket2 == 0 => {
                            spans.push((i, matching_brace(toks, m) + 1));
                            break;
                        }
                        ";" if paren == 0 && bracket2 == 0 => {
                            spans.push((i, m + 1));
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Parses `lint:allow(rule) reason` out of the comment list.
fn scan_waivers(comments: &[Comment]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        out.push(Waiver {
            rule: rest[..close].trim().to_string(),
            reason: rest[close + 1..].trim().to_string(),
            // Block-comment waivers apply where the comment *ends*.
            line: c.end_line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_bodies() {
        let f = SourceFile::parse(
            "t.rs",
            "impl X { fn classify(&self) -> u32 { self.0 } fn decl(&self); }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "classify");
        assert!(f.body(&f.fns[0]).iter().any(|t| t.text == "self"));
        assert_eq!(f.fns[1].name, "decl");
        assert!(f.body(&f.fns[1]).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let f = SourceFile::parse(
            "t.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn gated() { x.unwrap(); } }",
        );
        let unwrap_idx = f
            .lexed
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .unwrap();
        assert!(f.is_skipped(unwrap_idx));
        let live_idx = f.lexed.toks.iter().position(|t| t.text == "live").unwrap();
        assert!(!f.is_skipped(live_idx));
    }

    #[test]
    fn debug_assertions_block_is_skipped() {
        let f = SourceFile::parse(
            "t.rs",
            "fn f() { #[cfg(debug_assertions)] { let c = v.clone(); } let d = 1; }",
        );
        let clone_idx = f.lexed.toks.iter().position(|t| t.text == "clone").unwrap();
        assert!(f.is_skipped(clone_idx));
        let d_idx = f.lexed.toks.iter().position(|t| t.text == "d").unwrap();
        assert!(!f.is_skipped(d_idx));
    }

    #[test]
    fn waiver_parsing_and_adjacency() {
        let f = SourceFile::parse(
            "t.rs",
            "// lint:allow(alloc) warm-up only: runs once per prepare\nfn f() {}\n// lint:allow(panic)\nfn g() {}",
        );
        assert_eq!(f.waivers.len(), 2);
        assert!(f.is_waived("alloc", 1));
        assert!(f.is_waived("alloc", 2));
        assert!(!f.is_waived("alloc", 3));
        // Reasonless waivers never waive.
        assert!(!f.is_waived("panic", 4));
    }

    #[test]
    fn safety_comments() {
        let f = SourceFile::parse(
            "t.rs",
            "// SAFETY: the index is bounds-checked above\nlet x = 1;\n// SAFETY:\nlet y = 2;",
        );
        assert!(f.has_safety_comment(2, 1));
        assert!(
            !f.has_safety_comment(4, 1),
            "empty SAFETY text is not a justification"
        );
    }

    #[test]
    fn multiline_safety_block_counts_as_one() {
        let f = SourceFile::parse(
            "t.rs",
            "// SAFETY: the pointer came from a matching alloc and the\n\
             // layout is forwarded verbatim, so System's contract\n\
             // applies unchanged on every path.\n\
             // (See the allocator docs for the full argument.)\n\
             unsafe { dealloc(p, l) }",
        );
        assert!(
            f.has_safety_comment(5, 3),
            "SAFETY on the first line of a contiguous run justifies the block"
        );
        let g = SourceFile::parse(
            "t.rs",
            "// just prose, no marker\n// more prose\nunsafe { x() }",
        );
        assert!(!g.has_safety_comment(3, 3));
    }
}
