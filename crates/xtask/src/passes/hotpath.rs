//! Pass 1 — hot-path allocation lint.
//!
//! The paper's linear-delay contract (Theorem 17) rests on classify/branch/
//! descend/retract doing no mid-search allocation (PR 2's zero-allocation
//! CSR hot path). This pass turns that invariant into a build-time failure:
//! constructs that always take fresh heap (`Vec::new`, `vec!`, `format!`,
//! `collect`, `clone`, ...) are flagged inside the designated hot-path
//! functions. Growth of *reserved* scratch (`push` on preallocated buffers)
//! is deliberately out of scope here — that is what the runtime
//! `EnumStats::scratch_allocs` counter and the `alloc-audit` gate measure.
//!
//! `#[cfg(debug_assertions)]` and `#[cfg(test)]` blocks are exempt: the
//! release hot path never runs them. Waive true-but-intended sites with
//! `// lint:allow(alloc) <reason>`.

use super::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Types whose associated constructors always allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "Rc", "Arc", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// Allocating associated functions on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method calls that hand back fresh heap.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "into_owned",
];

/// Runs the pass over `sf`'s hot functions.
pub fn run(sf: &SourceFile, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.hot_fns.is_empty() {
        return out;
    }
    let toks = &sf.lexed.toks;
    for f in &sf.fns {
        if !ctx.hot_fns.contains(&f.name.as_str()) {
            continue;
        }
        let (lo, hi) = sf.body_range(f);
        let mut i = lo;
        while i < hi {
            let t = &toks[i];
            if sf.is_skipped(i) || t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            // `Type::ctor` — but `Arc::clone`/`Rc::clone` is a refcount
            // bump, not an allocation.
            let construct = if ALLOC_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
                && toks
                    .get(i + 3)
                    .is_some_and(|m| ALLOC_CTORS.contains(&m.text.as_str()))
            {
                Some(format!("{}::{}", t.text, toks[i + 3].text))
            } else if ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
            {
                Some(format!("{}!", t.text))
            } else if ALLOC_METHODS.contains(&t.text.as_str())
                && i > lo
                && toks[i - 1].text == "."
                && matches!(
                    toks.get(i + 1).map(|t| t.text.as_str()),
                    Some("(") | Some(":")
                )
            {
                Some(format!(".{}()", t.text))
            } else {
                None
            };
            if let Some(what) = construct {
                if !sf.is_waived("alloc", t.line) {
                    out.push(Diagnostic {
                        path: sf.path.clone(),
                        line: t.line,
                        col: t.col,
                        pass: "hotpath-alloc",
                        message: format!(
                            "allocating construct `{what}` in hot-path fn `{}`",
                            f.name
                        ),
                        hint: "the search hot path must not allocate (Theorem 17's \
                               linear-delay contract); reuse prepared scratch, or waive \
                               with // lint:allow(alloc) <reason>"
                            .to_string(),
                    });
                }
            }
            i += 1;
        }
    }
    out
}
