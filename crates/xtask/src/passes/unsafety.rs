//! Pass 4 — unsafe & lock-discipline audit.
//!
//! Two rules:
//!
//! - `safety`: every `unsafe` token must be justified by a `SAFETY:`
//!   comment on the same line or within the three lines above (the
//!   std-library convention). This applies to *all* targets — unsafe in a
//!   test needs its reasoning written down too. There is no `lint:allow`
//!   escape: the SAFETY comment *is* the waiver.
//! - `lock`: in the service crate, a `Mutex`/`RwLock` guard binding must
//!   not be live across a channel `send`/`recv` (a bounded channel blocks
//!   while every other worker waits on the lock — the classic service
//!   deadlock). `Condvar::wait(guard)` is the sanctioned guard-consuming
//!   pattern and is exempt; `drop(guard)` ends the live range. Waive with
//!   `// lint:allow(lock) <reason>`.
//!
//! The crate-level `#![deny(unsafe_code)]` requirement for unsafe-free
//! crates is checked by the workspace driver (it needs the whole crate's
//! file set), not here.

use super::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Channel operations that block (or publish) and must not run under a
/// held guard.
const CHANNEL_OPS: &[&str] = &[
    "send",
    "recv",
    "try_send",
    "try_recv",
    "send_timeout",
    "recv_timeout",
];

/// Runs the pass.
pub fn run(sf: &SourceFile, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &sf.lexed.toks;

    // --- safety: unsafe needs a SAFETY: comment ---
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !sf.has_safety_comment(t.line, 3) {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: t.line,
                col: t.col,
                pass: "unsafe-audit",
                message: "`unsafe` without a SAFETY: comment".to_string(),
                hint: "write // SAFETY: <why the invariants hold> directly above".to_string(),
            });
        }
    }

    if !ctx.lint_locks {
        return out;
    }

    // --- lock: guards live across channel ops ---
    for f in &sf.fns {
        let (lo, hi) = sf.body_range(f);
        let mut i = lo;
        while i < hi {
            if toks[i].kind == TokKind::Ident && toks[i].text == "let" && !sf.is_skipped(i) {
                if let Some((name, stmt_end)) = guard_binding(sf, i, hi) {
                    let live_end = live_range_end(sf, i, stmt_end, hi, &name);
                    check_guard_range(sf, f, &name, stmt_end, live_end, &mut out);
                    i = stmt_end;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// If the `let` at `i` binds a `.lock()`/`.read()`/`.write()` guard,
/// returns the bound name and the token index one past the statement's `;`.
fn guard_binding(sf: &SourceFile, i: usize, hi: usize) -> Option<(String, usize)> {
    let toks = &sf.lexed.toks;
    // Pattern tokens up to `=` (paren-free in this codebase beyond
    // `Ok(name)` wrappers).
    let mut j = i + 1;
    let mut pattern_idents: Vec<&str> = Vec::new();
    while j < hi && toks[j].text != "=" && toks[j].text != ";" {
        if toks[j].kind == TokKind::Ident {
            pattern_idents.push(&toks[j].text);
        }
        j += 1;
    }
    if j >= hi || toks[j].text != "=" {
        return None;
    }
    let name = pattern_idents
        .iter()
        .rev()
        .find(|s| !matches!(**s, "mut" | "Ok" | "Some" | "Err"))?
        .to_string();
    // A block-expression initializer (`let x = { ... };`) binds the block's
    // *result*, not a guard — guards created inside die at the block end
    // and are scanned by their own inner `let`.
    if toks.get(j + 1).map(|t| t.text.as_str()) == Some("{") {
        return None;
    }
    // Initializer up to the statement's `;` at the let's depth.
    let depth = toks[i].depth;
    let mut k = j + 1;
    let mut is_guard = false;
    while k < hi {
        let t = &toks[k];
        if t.text == ";" && t.depth == depth {
            break;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && k > 0
            && toks[k - 1].text == "."
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        {
            is_guard = true;
        }
        k += 1;
    }
    if is_guard {
        Some((name, k + 1))
    } else {
        None
    }
}

/// The end of the guard's live range: `drop(name)` or the end of the
/// enclosing block, whichever comes first.
fn live_range_end(sf: &SourceFile, let_tok: usize, from: usize, hi: usize, name: &str) -> usize {
    let toks = &sf.lexed.toks;
    let depth = toks[let_tok].depth;
    for k in from..hi {
        let t = &toks[k];
        // The enclosing block's close brace reports the depth it closes to.
        if t.text == "}" && t.kind == TokKind::Punct && t.depth + 1 == depth {
            return k;
        }
        if t.kind == TokKind::Ident
            && t.text == "drop"
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(k + 2).map(|t| t.text.as_str()) == Some(name)
            && toks.get(k + 3).map(|t| t.text.as_str()) == Some(")")
        {
            return k;
        }
    }
    hi
}

/// Flags channel ops (and non-consuming waits) inside the guard's live
/// range.
fn check_guard_range(
    sf: &SourceFile,
    f: &crate::source::FnSpan,
    guard: &str,
    from: usize,
    to: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &sf.lexed.toks;
    for k in from..to {
        if sf.is_skipped(k) {
            continue;
        }
        let t = &toks[k];
        if t.kind != TokKind::Ident || k == 0 || toks[k - 1].text != "." {
            continue;
        }
        let is_channel = CHANNEL_OPS.contains(&t.text.as_str())
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(");
        let is_wait = matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_while")
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(");
        if !is_channel && !is_wait {
            continue;
        }
        if is_wait {
            // `condvar.wait(guard)` consumes the guard — the sanctioned
            // blocking pattern. Only a wait that does NOT take this guard
            // is a hazard.
            let mut j = k + 2;
            let mut depth = 1i64;
            let mut takes_guard = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    s if s == guard && toks[j].kind == TokKind::Ident => takes_guard = true,
                    _ => {}
                }
                j += 1;
            }
            if takes_guard {
                continue;
            }
        }
        if !sf.is_waived("lock", t.line) {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: t.line,
                col: t.col,
                pass: "lock-discipline",
                message: format!(
                    "`.{}()` while guard `{}` is live in fn `{}` (deadlock hazard)",
                    t.text, guard, f.name
                ),
                hint: format!(
                    "drop({guard}) before blocking on a channel, or narrow the \
                     guard's scope; waive with // lint:allow(lock) <reason>"
                ),
            });
        }
    }
}
