//! The four analysis passes plus waiver hygiene. Each pass is a pure
//! function from an analyzed [`SourceFile`] (plus its [`FileContext`]) to
//! diagnostics, so the golden-file fixtures can drive them directly.

pub mod determinism;
pub mod hotpath;
pub mod trail;
pub mod unsafety;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// What kind of target a file belongs to — several rules only bind library
/// code (tests, benches, and examples may panic and tell the time).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of some crate.
    Lib,
    /// `tests/` integration tests.
    Test,
    /// `benches/`.
    Bench,
    /// `examples/`.
    Example,
}

/// Per-file lint configuration, derived from the workspace layout (or set
/// wholesale by the fixture driver).
pub struct FileContext<'a> {
    /// Crate directory name (`core`, `service`, ... ; `minimal-steiner`
    /// for the facade, `fixture` under the golden tests).
    pub crate_name: &'a str,
    /// Target kind, by directory.
    pub kind: FileKind,
    /// Function names treated as hot-path in this file (pass 1 scope).
    pub hot_fns: &'a [&'a str],
    /// Whether to run the lock-discipline audit (the service crate and
    /// fixtures).
    pub lint_locks: bool,
}

/// Known waiver rules; anything else in `lint:allow(...)` is a finding.
pub const RULES: &[&str] = &["alloc", "trail", "clock", "nondet", "panic", "lock"];

/// Waiver hygiene: every waiver must name a known rule and carry a written
/// reason (the acceptance bar for waivers living in the tree at all).
pub fn check_waivers(sf: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for w in &sf.waivers {
        if !RULES.contains(&w.rule.as_str()) {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: w.line,
                col: 1,
                pass: "waiver",
                message: format!("unknown waiver rule `{}`", w.rule),
                hint: format!("known rules: {}", RULES.join(", ")),
            });
        } else if w.reason.is_empty() {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: w.line,
                col: 1,
                pass: "waiver",
                message: format!("waiver `lint:allow({})` has no reason", w.rule),
                hint: "write the justification after the closing paren: \
                       // lint:allow(rule) <why this site is exempt>"
                    .to_string(),
            });
        }
    }
    out
}

/// Runs every applicable pass over one file.
pub fn run_all(sf: &SourceFile, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(check_waivers(sf));
    out.extend(hotpath::run(sf, ctx));
    out.extend(trail::run(sf, ctx));
    out.extend(determinism::run(sf, ctx));
    out.extend(unsafety::run(sf, ctx));
    out
}
