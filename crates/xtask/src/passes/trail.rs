//! Pass 2 — trail/frame balance checker.
//!
//! Every `Trail::mark()` / `DynamicSpanning::mark()` checkpoint taken in a
//! function must be unwound on every exit path (`undo_to`, `truncate`,
//! `retract*`, `pop`) *or* escape into a checkpoint frame that a later
//! `retract_frame` pops (the `FrameLog` protocol from PR 5). Intra-
//! procedurally this pass checks:
//!
//! 1. a function that takes a mark and neither unwinds nor escapes it is
//!    flagged (`mark() without a matching unwind`);
//! 2. an early `return` or `?` between the first retained mark and the last
//!    unwind call is flagged — that exit path skips the rollback.
//!
//! Escapes recognized: the mark is pushed into a frame (`push`/`push_back`
//! appears downstream of a `let`-bound mark, or the mark is a struct-literal
//! field in a function that pushes), the mark is returned to the caller, or
//! the function's signature mentions a `*Mark` type (it *produces* marks).
//! Waive deliberate imbalance with `// lint:allow(trail) <reason>`.

use super::{FileContext, FileKind};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Identifiers that unwind a checkpoint.
const UNWINDERS: &[&str] = &[
    "undo_to",
    "truncate",
    "retract",
    "retract_frame",
    "restore",
    "unwind",
    "pop",
];

/// Runs the pass over every non-test function.
pub fn run(sf: &SourceFile, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.kind != FileKind::Lib {
        return out;
    }
    let toks = &sf.lexed.toks;
    for f in &sf.fns {
        if sf.is_skipped(f.fn_tok) {
            continue;
        }
        // A function whose signature mentions a mark type produces or
        // transports marks; balance is its caller's obligation.
        if toks[f.fn_tok..f.body_open]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.ends_with("Mark"))
        {
            continue;
        }
        let (lo, hi) = sf.body_range(f);
        if lo >= hi {
            continue;
        }

        // Collect `.mark()` / `.checkpoint()` call sites.
        let mut retained: Vec<usize> = Vec::new(); // tok index of the ident
        let body_has_push = toks[lo..hi]
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "push" || t.text == "push_back"));
        for i in lo..hi {
            let t = &toks[i];
            if sf.is_skipped(i)
                || t.kind != TokKind::Ident
                || (t.text != "mark" && t.text != "checkpoint")
                || i == 0
                || toks[i - 1].text != "."
                || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
                || toks.get(i + 2).map(|t| t.text.as_str()) != Some(")")
            {
                continue;
            }
            if escapes(sf, lo, i, body_has_push) {
                continue;
            }
            retained.push(i);
        }
        if retained.is_empty() {
            continue;
        }

        // Unwind call sites.
        let unwinds: Vec<usize> = (lo..hi)
            .filter(|&i| {
                let t = &toks[i];
                t.kind == TokKind::Ident
                    && UNWINDERS.contains(&t.text.as_str())
                    && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            })
            .collect();

        if unwinds.is_empty() {
            for &m in &retained {
                let t = &toks[m];
                if !sf.is_waived("trail", t.line) {
                    out.push(Diagnostic {
                        path: sf.path.clone(),
                        line: t.line,
                        col: t.col,
                        pass: "trail-balance",
                        message: format!(
                            "`{}()` in fn `{}` is never unwound on this path",
                            t.text, f.name
                        ),
                        hint: "pair every mark with undo_to()/truncate()/pop() before \
                               the function exits, or store it in a checkpoint frame; \
                               waive with // lint:allow(trail) <reason>"
                            .to_string(),
                    });
                }
            }
            continue;
        }

        // Early exits between the first retained mark and the last unwind
        // skip the rollback on that path.
        let first_mark = *retained.first().expect("retained is nonempty");
        let last_unwind = *unwinds.last().expect("unwinds is nonempty");
        for i in first_mark..last_unwind {
            if sf.is_skipped(i) {
                continue;
            }
            let t = &toks[i];
            let is_exit = (t.kind == TokKind::Ident && t.text == "return")
                || (t.kind == TokKind::Punct
                    && t.text == "?"
                    && toks.get(i + 1).map(|t| t.text.as_str()) != Some("Sized"));
            if is_exit && !sf.is_waived("trail", t.line) {
                out.push(Diagnostic {
                    path: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    pass: "trail-balance",
                    message: format!(
                        "early exit (`{}`) in fn `{}` between mark() and its unwind",
                        t.text, f.name
                    ),
                    hint: "this exit path leaves the trail above the checkpoint; \
                           unwind before returning, or waive with \
                           // lint:allow(trail) <reason>"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Whether the mark at token `m` escapes the function (stored in a frame,
/// returned, or bound and later pushed).
fn escapes(sf: &SourceFile, body_lo: usize, m: usize, body_has_push: bool) -> bool {
    let toks = &sf.lexed.toks;
    // Walk back over the method chain (`a.b.mark()` → index of `a`).
    let mut start = m - 1; // the `.`
    loop {
        // start points at `.`; the receiver segment is before it.
        if start == 0 {
            break;
        }
        let prev = start - 1;
        if toks[prev].kind == TokKind::Ident {
            if prev == 0 {
                start = prev;
                break;
            }
            match toks[prev - 1].text.as_str() {
                "." => start = prev - 1,
                _ => {
                    start = prev;
                    break;
                }
            }
        } else if toks[prev].text == ")" || toks[prev].text == "]" {
            // Chained off a call/index — treat the paren as the start.
            start = prev;
            break;
        } else {
            start = prev;
            break;
        }
    }
    if start <= body_lo {
        return false;
    }
    let before = &toks[start - 1];
    // `return expr.mark()` — the caller owns the mark.
    if before.text == "return" {
        return true;
    }
    // Struct-literal field value: `field: expr.mark()` in a fn that pushes
    // frames.
    if before.text == ":" && start >= 2 && toks[start - 2].kind == TokKind::Ident {
        return body_has_push;
    }
    // `let name = expr.mark();` — escaped if the binding flows into a
    // push() later in the body (the frame pattern).
    if before.text == "=" && start >= 2 && toks[start - 2].kind == TokKind::Ident {
        let name = &toks[start - 2].text;
        let is_let = (3..=4).any(|back| {
            start >= back && toks[start - back].kind == TokKind::Ident && {
                let t = &toks[start - back].text;
                t == "let" || t == "mut"
            }
        });
        if is_let && body_has_push {
            // The bound mark must actually be used after the binding.
            return toks[m + 1..]
                .iter()
                .any(|t| t.kind == TokKind::Ident && &t.text == name);
        }
    }
    // Tail expression: the mark is the last meaningful token of the body
    // (the function evaluates to it).
    toks.get(m + 3).map(|t| t.text.as_str()) == Some("}")
}
