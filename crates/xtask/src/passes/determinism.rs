//! Pass 3 — determinism & panic hygiene.
//!
//! The engine's streams must be byte-identical across runs, shards, and
//! replays (PR 3/5/6 all assert this), so library code must not read clocks
//! or the environment outside the sanctioned deadline plumbing; and the
//! service layer turns errors into typed `SteinerError`s, so library code
//! must not panic on recoverable paths.
//!
//! Rules (library targets only — tests, benches, and examples are exempt,
//! as is the `bench` crate, whose whole purpose is timing):
//!
//! - `clock`: `Instant::now`, `SystemTime`, `thread::sleep` — waive the
//!   sanctioned deadline/measurement sites with `// lint:allow(clock) <reason>`.
//! - `nondet`: `env::var*`, `std::process`, `Command::new` — waive with
//!   `// lint:allow(nondet) <reason>`.
//! - `panic`: `.unwrap()`, `panic!`, `todo!`, `unimplemented!`, and
//!   `.expect(...)` / `unreachable!(...)` *without a nonempty string-literal
//!   message*. An `expect`/`unreachable` message is this rule's waiver
//!   grammar: the literal documents the invariant that makes the panic
//!   unreachable, exactly like a `SAFETY:` comment documents an `unsafe`
//!   block. Macro panics are waived with `// lint:allow(panic) <reason>`.

use super::{FileContext, FileKind};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Runs the pass.
pub fn run(sf: &SourceFile, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.kind != FileKind::Lib || ctx.crate_name == "bench" {
        return out;
    }
    let toks = &sf.lexed.toks;
    for i in 0..toks.len() {
        if sf.is_skipped(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| toks.get(i + k).map(|t| t.text.as_str());
        let prev_is = |s: &str| i > 0 && toks[i - 1].text == s;
        let path_sep = |k: usize| next(k) == Some(":") && next(k + 1) == Some(":");

        // --- clock ---
        let clock = match t.text.as_str() {
            "Instant" if path_sep(1) && next(3) == Some("now") => Some("Instant::now"),
            "SystemTime" => Some("SystemTime"),
            "sleep" if prev_is(":") => Some("thread::sleep"),
            _ => None,
        };
        if let Some(what) = clock {
            if !sf.is_waived("clock", t.line) {
                out.push(Diagnostic {
                    path: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    pass: "determinism",
                    message: format!("`{what}` in library code"),
                    hint: "wall-clock reads make streams nondeterministic; only the \
                           sanctioned deadline/measurement sites may tell time — waive \
                           those with // lint:allow(clock) <reason>"
                        .to_string(),
                });
            }
            continue;
        }

        // --- nondet ---
        let nondet = match t.text.as_str() {
            "env"
                if path_sep(1)
                    && matches!(next(3), Some("var") | Some("var_os") | Some("vars")) =>
            {
                Some("env::var")
            }
            "process" if path_sep(1) || prev_is(":") => Some("std::process"),
            "Command" if path_sep(1) && next(3) == Some("new") => Some("Command::new"),
            _ => None,
        };
        if let Some(what) = nondet {
            if !sf.is_waived("nondet", t.line) {
                out.push(Diagnostic {
                    path: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    pass: "determinism",
                    message: format!("`{what}` in library code"),
                    hint: "environment and process access belong to binaries and the \
                           service edge, not the engine; waive with \
                           // lint:allow(nondet) <reason>"
                        .to_string(),
                });
            }
            continue;
        }

        // --- panic hygiene ---
        let finding = match t.text.as_str() {
            "unwrap" if prev_is(".") && next(1) == Some("(") => Some((
                "`.unwrap()` in library code".to_string(),
                "convert to a typed SteinerError, or use .expect(\"<invariant>\") — \
                 the message documents why the panic is unreachable",
            )),
            "expect" if prev_is(".") && next(1) == Some("(") => {
                let msg_ok = toks
                    .get(i + 2)
                    .is_some_and(|m| m.kind == TokKind::Str && !m.text.trim().is_empty());
                if msg_ok {
                    None
                } else {
                    Some((
                        "`.expect()` without a literal invariant message".to_string(),
                        "the expect message is the waiver: state the invariant that \
                         makes this panic unreachable",
                    ))
                }
            }
            "panic" if next(1) == Some("!") => Some((
                "`panic!` in library code".to_string(),
                "return a typed SteinerError, or waive with // lint:allow(panic) <reason>",
            )),
            "todo" | "unimplemented" if next(1) == Some("!") => Some((
                format!("`{}!` in library code", t.text),
                "finish the implementation or return SteinerError::Unsupported",
            )),
            "unreachable" if next(1) == Some("!") => {
                let msg_ok = next(2) == Some("(")
                    && toks
                        .get(i + 3)
                        .is_some_and(|m| m.kind == TokKind::Str && !m.text.trim().is_empty());
                if msg_ok {
                    None
                } else {
                    Some((
                        "`unreachable!` without an invariant message".to_string(),
                        "state the invariant that makes this arm unreachable: \
                         unreachable!(\"<why>\")",
                    ))
                }
            }
            _ => None,
        };
        if let Some((message, hint)) = finding {
            if !sf.is_waived("panic", t.line) {
                out.push(Diagnostic {
                    path: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    pass: "panic-hygiene",
                    message,
                    hint: hint.to_string(),
                });
            }
        }
    }
    out
}
