//! CLI for `steiner-lint`:
//!
//! - `cargo run -p xtask --release -- lint [--root DIR]` — lint the whole
//!   workspace; exit 0 when clean, 1 with rustc-style diagnostics when not.
//! - `cargo run -p xtask --release -- lint --fixture FILE` — lint one file
//!   in fixture mode (every pass armed); prints the compact one-line form
//!   the golden `.expected` files pin. Used by the fixture suite.

#![deny(unsafe_code)]

use xtask::{find_root, lint_fixture, lint_workspace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut fixture = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = args.get(i + 1).cloned();
                i += 2;
            }
            "--fixture" => {
                fixture = args.get(i + 1).cloned();
                i += 2;
            }
            c if cmd.is_none() => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage_exit();
            }
        }
    }
    if cmd.as_deref() != Some("lint") {
        usage_exit();
    }
    if let Some(file) = fixture {
        match lint_fixture(std::path::Path::new(&file)) {
            Ok(diags) => {
                for d in &diags {
                    println!("{}", d.compact());
                }
                if !diags.is_empty() {
                    // lint:allow(nondet) CLI exit status is this tool's output contract
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("steiner-lint: cannot read fixture {file}: {e}");
                // lint:allow(nondet) CLI exit status is this tool's output contract
                std::process::exit(2);
            }
        }
        return;
    }
    let root = find_root(root.as_deref());
    match lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("steiner-lint: workspace clean");
        }
        Ok(diags) => {
            for d in &diags {
                eprint!("{d}");
            }
            eprintln!("steiner-lint: {} finding(s)", diags.len());
            // lint:allow(nondet) CLI exit status is this tool's output contract
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "steiner-lint: cannot read workspace at {}: {e}",
                root.display()
            );
            // lint:allow(nondet) CLI exit status is this tool's output contract
            std::process::exit(2);
        }
    }
}

fn usage_exit() -> ! {
    eprintln!("usage: cargo run -p xtask --release -- lint [--root DIR] [--fixture FILE]");
    // lint:allow(nondet) CLI exit status is this tool's output contract
    std::process::exit(2);
}
