//! `steiner-lint`: workspace-native static analysis for the minimal-steiner
//! engine.
//!
//! Four project-specific passes enforce, at build time, the invariants the
//! engine's correctness and performance claims rest on:
//!
//! 1. **hotpath-alloc** — no allocating constructs inside the designated
//!    classify/branch/descend/retract hot paths (PR 2's zero-allocation
//!    invariant; Theorem 17's linear-delay contract).
//! 2. **trail-balance** — every `Trail`/`DynamicSpanning` mark taken in a
//!    function is unwound on every exit path or escapes into a checkpoint
//!    frame (PR 5's descend/retract protocol).
//! 3. **determinism** / **panic-hygiene** — no clock, environment, or
//!    process access outside sanctioned sites; no unwrap/panic in library
//!    code without a documented invariant (PR 3/5/6's byte-identical
//!    stream guarantees and the service layer's typed-error contract).
//! 4. **unsafe-audit** / **lock-discipline** — every `unsafe` carries a
//!    `SAFETY:` comment, unsafe-free crates deny unsafe, and the service
//!    layer never blocks on a channel while holding a scheduler lock.
//!
//! Waiver grammar: `// lint:allow(rule) <reason>` on the finding's line or
//! the line above; the reason is mandatory. `expect`/`unreachable` messages
//! and `SAFETY:` comments are the in-band waiver forms of their rules.
//!
//! Run as `cargo run -p xtask --release -- lint`. The golden-file fixture
//! suite under `tests/fixtures/` pins each pass's diagnostics exactly.

#![deny(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod source;
pub mod workspace;

pub use diag::Diagnostic;
pub use workspace::{find_root, lint_fixture, lint_workspace};
