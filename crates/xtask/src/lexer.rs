//! A minimal Rust lexer: comment-, string-, and raw-string-aware, enough
//! to walk token streams with positions and brace depths. Deliberately not
//! a parser — the passes work on token shapes (`Ident :: Ident`, `. ident (`)
//! plus brace-tracked item spans, which is exactly the granularity the
//! project invariants need and keeps the tool dependency-free (no `syn`;
//! the build environment is offline).

/// One significant token of a source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// The token text (identifier name, punctuation char, literal body).
    pub text: String,
    /// Coarse lexical class.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// Brace depth *at* the token (`{` itself is reported at the depth it
    /// opens from; `}` at the depth it closes to).
    pub depth: u32,
}

/// Coarse lexical classes — only what the passes distinguish.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `:`, `!`, `?`, braces, ...).
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); `text` is
    /// the *contents* (delimiters stripped, escapes left as written).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal (coarse: `1.5` lexes as `1`, `.`, `5`).
    Num,
    /// Lifetime (`'a`, `'_`); `text` excludes the quote.
    Lifetime,
}

/// A comment, kept out of the token stream but retained for the waiver and
/// `SAFETY:` scanners.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text with the `//`, `///`, `//!`, or `/* */` delimiters
    /// stripped (block comments keep interior newlines).
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (differs from `line` for block comments).
    pub end_line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in order.
    pub toks: Vec<Tok>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs are tolerated (the tail is eaten);
/// the tool lints real, compiling code, so error recovery is moot.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize; // index into `b`
    let mut byte = 0usize; // byte offset of b[i]
    let mut line = 1u32;
    let mut col = 1u32;
    let mut depth = 0u32;

    // Advances one char, maintaining byte/line/col.
    macro_rules! bump {
        () => {{
            let c = b[i];
            byte += c.len_utf8();
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol, tbyte) = (line, col, byte);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let mut j = i + 2;
            // Strip any further leading slashes ("///") or "!".
            while j < b.len() && (b[j] == '/' || b[j] == '!') {
                j += 1;
            }
            let mut text = String::new();
            while i < b.len() && b[i] != '\n' {
                if i >= j {
                    text.push(b[i]);
                }
                bump!();
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line: tline,
                end_line: tline,
            });
            continue;
        }

        // Block comment, nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            bump!();
            bump!();
            let mut nest = 1u32;
            let mut text = String::new();
            while i < b.len() && nest > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    nest += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    nest -= 1;
                    bump!();
                    bump!();
                } else {
                    if nest == 1 {
                        text.push(b[i]);
                    }
                    bump!();
                }
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line: tline,
                end_line: line,
            });
            continue;
        }

        // Raw / byte string literals: r"…", r#"…"#, b"…", br#"…"#.
        let raw_prefix = match c {
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => Some(1),
            'b' if i + 1 < b.len() && b[i + 1] == '"' => Some(1),
            'b' if i + 2 < b.len() && b[i + 1] == 'r' && (b[i + 2] == '"' || b[i + 2] == '#') => {
                Some(2)
            }
            _ => None,
        };
        if let Some(skip) = raw_prefix {
            let is_raw = b[i + skip - 1] == 'r' || b[i + skip] == '#';
            for _ in 0..skip {
                bump!();
            }
            if is_raw {
                let mut hashes = 0usize;
                while i < b.len() && b[i] == '#' {
                    hashes += 1;
                    bump!();
                }
                if i < b.len() && b[i] == '"' {
                    bump!();
                    let mut text = String::new();
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            // Check for the closing hash run.
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                bump!();
                                for _ in 0..hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        text.push(b[i]);
                        bump!();
                    }
                    out.toks.push(Tok {
                        text,
                        kind: TokKind::Str,
                        line: tline,
                        col: tcol,
                        start: tbyte,
                        end: byte,
                        depth,
                    });
                    continue;
                }
                // `r#ident` (raw identifier): fall through as ident below.
                let mut text = String::from("r#");
                let _ = &mut text;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    text.push(b[i]);
                    bump!();
                }
                out.toks.push(Tok {
                    text,
                    kind: TokKind::Ident,
                    line: tline,
                    col: tcol,
                    start: tbyte,
                    end: byte,
                    depth,
                });
                continue;
            }
            // b"…": plain (escaped) string body.
            debug_assert_eq!(b[i], '"');
            lex_quoted(&b, &mut i, &mut byte, &mut line, &mut col, '"');
            out.toks.push(Tok {
                text: String::new(),
                kind: TokKind::Str,
                line: tline,
                col: tcol,
                start: tbyte,
                end: byte,
                depth,
            });
            continue;
        }

        // Byte char literal b'x'.
        if c == 'b' && i + 1 < b.len() && b[i + 1] == '\'' {
            bump!();
            lex_quoted(&b, &mut i, &mut byte, &mut line, &mut col, '\'');
            out.toks.push(Tok {
                text: String::new(),
                kind: TokKind::Char,
                line: tline,
                col: tcol,
                start: tbyte,
                end: byte,
                depth,
            });
            continue;
        }

        // String literal.
        if c == '"' {
            let from = i + 1;
            lex_quoted(&b, &mut i, &mut byte, &mut line, &mut col, '"');
            let to = i.saturating_sub(1).max(from);
            out.toks.push(Tok {
                text: b[from..to].iter().collect(),
                kind: TokKind::Str,
                line: tline,
                col: tcol,
                start: tbyte,
                end: byte,
                depth,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
            if is_lifetime {
                bump!();
                let mut text = String::new();
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    text.push(b[i]);
                    bump!();
                }
                out.toks.push(Tok {
                    text,
                    kind: TokKind::Lifetime,
                    line: tline,
                    col: tcol,
                    start: tbyte,
                    end: byte,
                    depth,
                });
            } else {
                lex_quoted(&b, &mut i, &mut byte, &mut line, &mut col, '\'');
                out.toks.push(Tok {
                    text: String::new(),
                    kind: TokKind::Char,
                    line: tline,
                    col: tcol,
                    start: tbyte,
                    end: byte,
                    depth,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                text.push(b[i]);
                bump!();
            }
            out.toks.push(Tok {
                text,
                kind: TokKind::Ident,
                line: tline,
                col: tcol,
                start: tbyte,
                end: byte,
                depth,
            });
            continue;
        }

        // Number (coarse: suffix chars fold in, `.` stays punct).
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                text.push(b[i]);
                bump!();
            }
            out.toks.push(Tok {
                text,
                kind: TokKind::Num,
                line: tline,
                col: tcol,
                start: tbyte,
                end: byte,
                depth,
            });
            continue;
        }

        // Punctuation, one char at a time; braces adjust depth.
        let tok_depth = if c == '}' {
            depth.saturating_sub(1)
        } else {
            depth
        };
        if c == '{' {
            depth += 1;
        } else if c == '}' {
            depth = depth.saturating_sub(1);
        }
        bump!();
        out.toks.push(Tok {
            text: c.to_string(),
            kind: TokKind::Punct,
            line: tline,
            col: tcol,
            start: tbyte,
            end: byte,
            depth: tok_depth,
        });
    }
    out
}

/// Consumes a `'`- or `"`-delimited literal starting at the opening quote,
/// honoring backslash escapes. Leaves the cursor one past the closing
/// delimiter.
fn lex_quoted(
    b: &[char],
    i: &mut usize,
    byte: &mut usize,
    line: &mut u32,
    col: &mut u32,
    quote: char,
) {
    let mut bump = |i: &mut usize| {
        let c = b[*i];
        *byte += c.len_utf8();
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    debug_assert_eq!(b[*i], quote);
    bump(i);
    while *i < b.len() {
        let c = b[*i];
        if c == '\\' {
            bump(i);
            if *i < b.len() {
                bump(i);
            }
            continue;
        }
        bump(i);
        if c == quote {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
            // Vec::new in a comment
            /* unwrap() in /* a nested */ block */
            let s = "Instant::now() inside a string";
            let r = r#"panic!("raw")"#;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"Vec".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Vec::new"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn depth_tracks_braces() {
        let lexed = lex("fn f() { if x { y(); } }");
        let y = lexed.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.depth, 2);
        let f = lexed.toks.iter().find(|t| t.text == "f").unwrap();
        assert_eq!(f.depth, 0);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r####"let x = r##"has "# inside"##; let y = 1;"####);
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("has \"# inside"));
        assert!(lexed.toks.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }
}
