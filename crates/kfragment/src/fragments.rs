//! K-fragment enumeration on top of the Steiner enumerators.

use crate::data_graph::{DataGraph, DirectedDataGraph};
use std::ops::ControlFlow;
use steiner_core::stats::EnumStats;
use steiner_core::{
    DirectedSteinerTree, Enumeration, SteinerError, SteinerTree, TerminalSteinerTree,
};
use steiner_graph::connectivity::reachable_from;
use steiner_graph::{ArcId, EdgeId, GraphError, VertexId};

/// Keyword queries keep the historical lenient contract: an instance whose
/// keywords cannot be connected simply has no fragments.
fn lenient(result: Result<EnumStats, SteinerError>) -> EnumStats {
    match result {
        Ok(stats) => stats,
        Err(e) if e.means_no_solutions() => EnumStats::default(),
        // lint:allow(panic) documented lenient contract: malformed keyword queries are caller bugs, not data
        Err(e) => panic!("invalid keyword-search instance: {e}"),
    }
}

/// Enumerates the (undirected) K-fragments of a keyword query: the minimal
/// Steiner trees over all keyword nodes of `keywords`. Solutions are
/// sorted edge sets; linear delay after O(n(n+m)) preprocessing (paper
/// Theorem 2).
///
/// ```
/// use steiner_kfragment::data_graph::DataGraph;
/// use steiner_kfragment::fragments::k_fragments;
/// use std::ops::ControlFlow;
///
/// let mut dg = DataGraph::new();
/// let a = dg.add_node(&["alpha"]);
/// let hub = dg.add_node(&[]);
/// let b = dg.add_node(&["beta"]);
/// dg.add_edge(a, hub).unwrap();
/// dg.add_edge(hub, b).unwrap();
/// let mut count = 0;
/// k_fragments(&dg, &["alpha", "beta"], &mut |fragment| {
///     assert_eq!(fragment.len(), 2);
///     count += 1;
///     ControlFlow::Continue(())
/// }).unwrap();
/// assert_eq!(count, 1);
/// ```
pub fn k_fragments(
    dg: &DataGraph,
    keywords: &[&str],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> Result<EnumStats, GraphError> {
    let terminals = dg.terminals_for(keywords)?;
    Ok(lenient(
        Enumeration::new(SteinerTree::new(&dg.graph, &terminals)).for_each(|edges| sink(edges)),
    ))
}

/// Enumerates the strong K-fragments: K-fragments in which every keyword
/// node is a leaf — the minimal terminal Steiner trees (paper Theorem 31).
pub fn strong_k_fragments(
    dg: &DataGraph,
    keywords: &[&str],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> Result<EnumStats, GraphError> {
    let terminals = dg.terminals_for(keywords)?;
    Ok(lenient(
        Enumeration::new(TerminalSteinerTree::new(&dg.graph, &terminals))
            .for_each(|edges| sink(edges)),
    ))
}

/// A directed K-fragment: a root plus the arcs of a minimal directed
/// Steiner tree from that root to every keyword node.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirectedFragment {
    /// The fragment's root.
    pub root: VertexId,
    /// The fragment's arcs, sorted.
    pub arcs: Vec<ArcId>,
}

/// Enumerates the directed K-fragments for every viable root: for each
/// non-keyword node that reaches all keyword nodes, the minimal directed
/// Steiner trees rooted there (paper Theorem 36). Fragments with distinct
/// roots are distinct answers (keyword-search semantics: the root is the
/// answer's "center object").
pub fn directed_k_fragments(
    dg: &DirectedDataGraph,
    keywords: &[&str],
    sink: &mut dyn FnMut(&DirectedFragment) -> ControlFlow<()>,
) -> Result<EnumStats, GraphError> {
    let terminals = dg.terminals_for(keywords)?;
    let mut total = EnumStats::default();
    'roots: for root in dg.graph.vertices() {
        if terminals.contains(&root) {
            continue;
        }
        let reach = reachable_from(&dg.graph, root, None);
        total.preprocessing_work += (dg.graph.num_vertices() + dg.graph.num_arcs()) as u64;
        if terminals.iter().any(|w| !reach[w.index()]) {
            continue;
        }
        let mut stopped = false;
        let stats = lenient(
            Enumeration::new(DirectedSteinerTree::new(&dg.graph, root, &terminals)).for_each(
                |arcs| {
                    let fragment = DirectedFragment {
                        root,
                        arcs: arcs.to_vec(),
                    };
                    let flow = sink(&fragment);
                    if flow.is_break() {
                        stopped = true;
                    }
                    flow
                },
            ),
        );
        total.solutions += stats.solutions;
        total.work += stats.work + stats.preprocessing_work;
        total.nodes += stats.nodes;
        if stopped {
            break 'roots;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A small bibliography-style data graph:
    ///
    /// ```text
    ///   paper1 ---- alice        paper1: "enumeration"
    ///      \        /
    ///       venue(PODS)
    ///      /        \
    ///   paper2 ---- bob          paper2: "steiner"
    /// ```
    fn bibliography() -> (DataGraph, [VertexId; 5]) {
        let mut dg = DataGraph::new();
        let p1 = dg.add_node(&["enumeration"]);
        let alice = dg.add_node(&["alice"]);
        let venue = dg.add_node(&[]);
        let p2 = dg.add_node(&["steiner"]);
        let bob = dg.add_node(&["bob"]);
        dg.add_edge(p1, alice).unwrap();
        dg.add_edge(p1, venue).unwrap();
        dg.add_edge(alice, venue).unwrap();
        dg.add_edge(venue, p2).unwrap();
        dg.add_edge(venue, bob).unwrap();
        dg.add_edge(p2, bob).unwrap();
        (dg, [p1, alice, venue, p2, bob])
    }

    #[test]
    fn fragments_connect_keywords() {
        let (dg, _) = bibliography();
        let mut count = 0;
        k_fragments(&dg, &["enumeration", "steiner"], &mut |edges| {
            count += 1;
            let terminals = dg.terminals_for(&["enumeration", "steiner"]).unwrap();
            assert!(steiner_core::verify::is_minimal_steiner_tree(
                &dg.graph, &terminals, edges
            ));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert!(count >= 2, "several routes through the venue/authors");
    }

    #[test]
    fn fragment_sets_match_direct_steiner_enumeration() {
        let (dg, _) = bibliography();
        let terminals = dg.terminals_for(&["alice", "bob"]).unwrap();
        let mut via_fragments = BTreeSet::new();
        k_fragments(&dg, &["alice", "bob"], &mut |e| {
            via_fragments.insert(e.to_vec());
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(
            via_fragments,
            steiner_core::brute::minimal_steiner_trees(&dg.graph, &terminals)
        );
    }

    #[test]
    fn strong_fragments_keep_keywords_as_leaves() {
        let (dg, _) = bibliography();
        let terminals = dg
            .terminals_for(&["enumeration", "steiner", "alice"])
            .unwrap();
        let mut count = 0;
        strong_k_fragments(&dg, &["enumeration", "steiner", "alice"], &mut |edges| {
            count += 1;
            assert!(steiner_core::verify::is_minimal_terminal_steiner_tree(
                &dg.graph, &terminals, edges
            ));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert!(count >= 1);
    }

    #[test]
    fn directed_fragments_over_all_roots() {
        let mut dg = DirectedDataGraph::new();
        let hub1 = dg.add_node(&[]);
        let hub2 = dg.add_node(&[]);
        let k1 = dg.add_node(&["x"]);
        let k2 = dg.add_node(&["y"]);
        for hub in [hub1, hub2] {
            dg.add_arc(hub, k1).unwrap();
            dg.add_arc(hub, k2).unwrap();
        }
        let mut fragments = Vec::new();
        directed_k_fragments(&dg, &["x", "y"], &mut |f| {
            fragments.push(f.clone());
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(fragments.len(), 2, "one fragment per hub");
        let roots: BTreeSet<VertexId> = fragments.iter().map(|f| f.root).collect();
        assert_eq!(roots, [hub1, hub2].into_iter().collect());
        for f in &fragments {
            assert!(steiner_core::verify::is_minimal_directed_steiner_subgraph(
                &dg.graph,
                f.root,
                &dg.terminals_for(&["x", "y"]).unwrap(),
                &f.arcs
            ));
        }
    }

    #[test]
    fn unknown_keyword_errors() {
        let (dg, _) = bibliography();
        assert!(k_fragments(&dg, &["nonexistent"], &mut |_| ControlFlow::Continue(())).is_err());
    }
}
