//! Keyword search over data graphs: K-fragment enumeration.
//!
//! Kimelfeld & Sagiv [25, 26] motivated minimal Steiner enumeration with
//! keyword search: a *data graph* has structural nodes and keyword nodes,
//! and the answers to a keyword query `K` are the **K-fragments** —
//! subtrees containing all keyword nodes for `K` with no proper subtree
//! doing so. In graph terms (paper §1):
//!
//! | keyword-search notion | Steiner notion | enumerator |
//! |---|---|---|
//! | undirected K-fragment | minimal Steiner tree | [`fragments::k_fragments`] |
//! | strong K-fragment | minimal terminal Steiner tree | [`fragments::strong_k_fragments`] |
//! | directed K-fragment | minimal directed Steiner tree | [`fragments::directed_k_fragments`] |
//!
//! [`ranking`] adds the "top-k smallest answers" post-processing that
//! keyword search systems want (the paper's companion work \[25\] does this
//! in approximate weight order; we collect-and-rank exactly).

#![deny(unsafe_code)]

pub mod data_graph;
pub mod fragments;
pub mod ranking;

pub use data_graph::{DataGraph, DirectedDataGraph};
