//! Ranking: the "top-k smallest answers" post-processing of keyword
//! search.
//!
//! The enumerators emit answers in enumeration order, not size order
//! (Kimelfeld & Sagiv's companion work \[25\] enumerates in *approximate*
//! weight order). For the moderate answer counts keyword search keeps, an
//! exact ranking is practical: stream the enumeration through a bounded
//! leaderboard of the `k` smallest answers seen, optionally stopping
//! after a scan budget.
//!
//! Since the result-cache PR the leaderboard holds [`SolutionId`]s into
//! a hash-consing [`SolutionInterner`] instead of owned vectors: a
//! scanned answer is copied at most once (when it enters the board;
//! candidates that lose the cut against the current worst are rejected
//! without allocating), and answers seen again — across stitched-together
//! runs sharing one interner via [`smallest_k_ids`] — intern to one arena
//! slice and rank once.

use std::ops::ControlFlow;
use steiner_core::intern::{SolutionId, SolutionInterner};
use steiner_graph::EdgeId;

/// Collects the `k` smallest solutions (by edge count, ties broken
/// lexicographically) from a push enumeration, scanning at most
/// `scan_limit` solutions if a limit is given. Returns answers sorted
/// smallest-first.
///
/// Convenience wrapper over [`smallest_k_ids`] with a private interner;
/// use that function directly to keep the answers interned.
pub fn smallest_k(
    k: usize,
    scan_limit: Option<u64>,
    run: impl FnOnce(&mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>),
) -> Vec<Vec<EdgeId>> {
    let mut interner = SolutionInterner::new();
    let ids = smallest_k_ids(&mut interner, k, scan_limit, run);
    ids.into_iter()
        .map(|id| interner.resolve(id).to_vec())
        .collect()
}

/// As [`smallest_k`], but ranks into a caller-supplied
/// [`SolutionInterner`] and returns the winners as [`SolutionId`]s
/// (smallest-first), each holding one reference the caller now owns.
///
/// Rejected candidates never touch the arena: a scanned answer is
/// compared (by length, then lexicographically against the interned
/// slice) to the current worst of a full leaderboard first, and only
/// admitted answers are interned. Answers dropped from the board later
/// have their reference released again, so a long scan leaves at most
/// `k` solutions (plus whatever else the caller interned) live.
pub fn smallest_k_ids(
    interner: &mut SolutionInterner<EdgeId>,
    k: usize,
    scan_limit: Option<u64>,
    run: impl FnOnce(&mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>),
) -> Vec<SolutionId> {
    // Sorted by (len, lex slice), smallest first; `k` is moderate in
    // keyword search, so insertion keeps exactness without a heap.
    let mut best: Vec<(usize, SolutionId)> = Vec::with_capacity(k + 1);
    let mut scanned = 0u64;
    run(&mut |edges| {
        scanned += 1;
        if k > 0 {
            let admit = if best.len() < k {
                true
            } else {
                let (worst_len, worst_id) = *best.last().expect("board is full");
                (edges.len(), edges) < (worst_len, interner.resolve(worst_id))
            };
            if admit {
                let id = interner.intern(edges);
                let already_ranked = best.iter().any(|&(_, b)| b == id);
                if already_ranked {
                    // A duplicate across stitched runs: hash-consing
                    // found it, drop the extra reference.
                    interner.release(id);
                } else {
                    let pos = best
                        .partition_point(|&(l, b)| (l, interner.resolve(b)) < (edges.len(), edges));
                    best.insert(pos, (edges.len(), id));
                    if best.len() > k {
                        let (_, evicted) = best.pop().expect("board overflowed");
                        interner.release(evicted);
                    }
                }
            }
        }
        match scan_limit {
            Some(limit) if scanned >= limit => ControlFlow::Break(()),
            _ => ControlFlow::Continue(()),
        }
    });
    best.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn fake_run(sizes: &[usize]) -> impl FnOnce(&mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>) + '_ {
        move |sink| {
            for (i, &s) in sizes.iter().enumerate() {
                let edges: Vec<EdgeId> = (0..s).map(|j| EdgeId::new(i * 100 + j)).collect();
                if sink(&edges).is_break() {
                    return;
                }
            }
        }
    }

    #[test]
    fn keeps_the_smallest() {
        let got = smallest_k(2, None, fake_run(&[5, 2, 4, 1, 3]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 1);
        assert_eq!(got[1].len(), 2);
    }

    #[test]
    fn scan_limit_stops_early() {
        let got = smallest_k(3, Some(2), fake_run(&[5, 2, 4, 1]));
        assert_eq!(got.len(), 2, "only the first two were scanned");
        assert_eq!(got[0].len(), 2);
        assert_eq!(got[1].len(), 5);
    }

    #[test]
    fn k_zero_collects_nothing() {
        let got = smallest_k(0, None, fake_run(&[1, 2]));
        assert!(got.is_empty());
    }

    #[test]
    fn fewer_answers_than_k() {
        let got = smallest_k(10, None, fake_run(&[3, 1]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 1);
    }

    #[test]
    fn losers_do_not_accumulate_in_the_interner() {
        let mut interner = SolutionInterner::new();
        // 100 answers of growing size; only the 3 smallest may stay live.
        let sizes: Vec<usize> = (1..=100).collect();
        let ids = smallest_k_ids(&mut interner, 3, None, fake_run(&sizes));
        assert_eq!(ids.len(), 3);
        assert_eq!(interner.len(), 3, "evicted and rejected answers are dead");
        let lens: Vec<usize> = ids.iter().map(|&id| interner.resolve(id).len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_across_runs_rank_once() {
        let mut interner = SolutionInterner::new();
        let mut seen: Vec<Vec<EdgeId>> = Vec::new();
        for _ in 0..2 {
            // The same three answers scanned twice (two stitched runs).
            let ids = smallest_k_ids(&mut interner, 5, None, |sink| {
                for s in [2usize, 3, 4] {
                    let edges: Vec<EdgeId> = (0..s).map(EdgeId::new).collect();
                    if sink(&edges).is_break() {
                        return;
                    }
                }
            });
            seen = ids
                .into_iter()
                .map(|id| interner.resolve(id).to_vec())
                .collect();
        }
        assert_eq!(seen.len(), 3, "duplicates collapse instead of repeating");
        assert!(interner.dedup_hits() >= 3, "second run hash-consed");
    }

    #[test]
    fn end_to_end_on_a_real_enumeration() {
        // Theta chain: many Steiner trees, all of the same size here, so
        // ranking falls back to lexicographic order deterministically.
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [steiner_graph::VertexId(0), steiner_graph::VertexId(3)];
        let got = smallest_k(5, None, |sink| {
            steiner_core::Enumeration::new(steiner_core::SteinerTree::new(&g, &w))
                .for_each(|edges| sink(edges))
                .unwrap();
        });
        assert_eq!(got.len(), 5);
        for pair in got.windows(2) {
            assert!(pair[0] <= pair[1], "sorted output");
        }
    }
}
