//! Ranking: the "top-k smallest answers" post-processing of keyword
//! search.
//!
//! The enumerators emit answers in enumeration order, not size order
//! (Kimelfeld & Sagiv's companion work \[25\] enumerates in *approximate*
//! weight order). For the moderate answer counts keyword search keeps, an
//! exact ranking is practical: stream the enumeration through a bounded
//! max-heap, keeping the `k` smallest answers seen, optionally stopping
//! after a scan budget.

use std::collections::BinaryHeap;
use std::ops::ControlFlow;
use steiner_graph::EdgeId;

/// A ranked answer: its size, then its (sorted) edge set as tiebreak.
type Ranked = (usize, Vec<EdgeId>);

/// Collects the `k` smallest solutions (by edge count, ties broken
/// lexicographically) from a push enumeration, scanning at most
/// `scan_limit` solutions if a limit is given. Returns answers sorted
/// smallest-first.
pub fn smallest_k(
    k: usize,
    scan_limit: Option<u64>,
    run: impl FnOnce(&mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>),
) -> Vec<Vec<EdgeId>> {
    let mut heap: BinaryHeap<Ranked> = BinaryHeap::with_capacity(k + 1);
    let mut scanned = 0u64;
    run(&mut |edges| {
        scanned += 1;
        if k > 0 {
            let item: Ranked = (edges.len(), edges.to_vec());
            if heap.len() < k {
                heap.push(item);
            } else if let Some(top) = heap.peek() {
                if item < *top {
                    heap.pop();
                    heap.push(item);
                }
            }
        }
        match scan_limit {
            Some(limit) if scanned >= limit => ControlFlow::Break(()),
            _ => ControlFlow::Continue(()),
        }
    });
    let mut out: Vec<Ranked> = heap.into_vec();
    out.sort_unstable();
    out.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn fake_run(sizes: &[usize]) -> impl FnOnce(&mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>) + '_ {
        move |sink| {
            for (i, &s) in sizes.iter().enumerate() {
                let edges: Vec<EdgeId> = (0..s).map(|j| EdgeId::new(i * 100 + j)).collect();
                if sink(&edges).is_break() {
                    return;
                }
            }
        }
    }

    #[test]
    fn keeps_the_smallest() {
        let got = smallest_k(2, None, fake_run(&[5, 2, 4, 1, 3]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 1);
        assert_eq!(got[1].len(), 2);
    }

    #[test]
    fn scan_limit_stops_early() {
        let got = smallest_k(3, Some(2), fake_run(&[5, 2, 4, 1]));
        assert_eq!(got.len(), 2, "only the first two were scanned");
        assert_eq!(got[0].len(), 2);
        assert_eq!(got[1].len(), 5);
    }

    #[test]
    fn k_zero_collects_nothing() {
        let got = smallest_k(0, None, fake_run(&[1, 2]));
        assert!(got.is_empty());
    }

    #[test]
    fn fewer_answers_than_k() {
        let got = smallest_k(10, None, fake_run(&[3, 1]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 1);
    }

    #[test]
    fn end_to_end_on_a_real_enumeration() {
        // Theta chain: many Steiner trees, all of the same size here, so
        // ranking falls back to lexicographic order deterministically.
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [steiner_graph::VertexId(0), steiner_graph::VertexId(3)];
        let got = smallest_k(5, None, |sink| {
            steiner_core::Enumeration::new(steiner_core::SteinerTree::new(&g, &w))
                .for_each(|edges| sink(edges))
                .unwrap();
        });
        assert_eq!(got.len(), 5);
        for pair in got.windows(2) {
            assert!(pair[0] <= pair[1], "sorted output");
        }
    }
}
