//! Data graphs: graphs whose nodes may carry keywords.

use std::collections::HashMap;
use steiner_graph::{DiGraph, EdgeId, GraphError, UndirectedGraph, VertexId};

/// An undirected data graph: an [`UndirectedGraph`] whose nodes carry zero
/// or more keywords. Nodes without keywords are *structural*.
#[derive(Clone, Debug, Default)]
pub struct DataGraph {
    /// The underlying graph.
    pub graph: UndirectedGraph,
    /// Keywords per node.
    labels: Vec<Vec<String>>,
    /// Keyword → nodes carrying it.
    index: HashMap<String, Vec<VertexId>>,
}

impl DataGraph {
    /// Creates an empty data graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    /// Adds a node carrying the given keywords (empty for structural
    /// nodes) and returns its id.
    pub fn add_node(&mut self, keywords: &[&str]) -> VertexId {
        let v = self.graph.add_vertex();
        self.labels
            .push(keywords.iter().map(|k| k.to_string()).collect());
        for k in keywords {
            self.index.entry(k.to_string()).or_default().push(v);
        }
        v
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        self.graph.add_edge(u, v)
    }

    /// Keywords of a node.
    pub fn keywords_of(&self, v: VertexId) -> &[String] {
        &self.labels[v.index()]
    }

    /// The nodes carrying a keyword (empty if unknown).
    pub fn keyword_nodes(&self, keyword: &str) -> &[VertexId] {
        self.index.get(keyword).map_or(&[], |v| v.as_slice())
    }

    /// All keyword nodes for a query: the union of nodes of each keyword —
    /// exactly the node set a K-fragment must contain. Errors if some
    /// keyword occurs nowhere.
    pub fn terminals_for(&self, keywords: &[&str]) -> Result<Vec<VertexId>, GraphError> {
        let mut terminals = Vec::new();
        for &k in keywords {
            let nodes = self.keyword_nodes(k);
            if nodes.is_empty() {
                return Err(GraphError::Precondition {
                    message: format!("keyword {k:?} occurs at no node"),
                });
            }
            terminals.extend_from_slice(nodes);
        }
        terminals.sort_unstable();
        terminals.dedup();
        Ok(terminals)
    }
}

/// A directed data graph (for directed K-fragments).
#[derive(Clone, Debug, Default)]
pub struct DirectedDataGraph {
    /// The underlying digraph.
    pub graph: DiGraph,
    labels: Vec<Vec<String>>,
    index: HashMap<String, Vec<VertexId>>,
}

impl DirectedDataGraph {
    /// Creates an empty directed data graph.
    pub fn new() -> Self {
        DirectedDataGraph::default()
    }

    /// Adds a node carrying the given keywords and returns its id.
    pub fn add_node(&mut self, keywords: &[&str]) -> VertexId {
        let v = self.graph.add_vertex();
        self.labels
            .push(keywords.iter().map(|k| k.to_string()).collect());
        for k in keywords {
            self.index.entry(k.to_string()).or_default().push(v);
        }
        v
    }

    /// Adds an arc.
    pub fn add_arc(
        &mut self,
        tail: VertexId,
        head: VertexId,
    ) -> Result<steiner_graph::ArcId, GraphError> {
        self.graph.add_arc(tail, head)
    }

    /// Keywords of a node.
    pub fn keywords_of(&self, v: VertexId) -> &[String] {
        &self.labels[v.index()]
    }

    /// The nodes carrying a keyword.
    pub fn keyword_nodes(&self, keyword: &str) -> &[VertexId] {
        self.index.get(keyword).map_or(&[], |v| v.as_slice())
    }

    /// All keyword nodes for a query (see [`DataGraph::terminals_for`]).
    pub fn terminals_for(&self, keywords: &[&str]) -> Result<Vec<VertexId>, GraphError> {
        let mut terminals = Vec::new();
        for &k in keywords {
            let nodes = self.keyword_nodes(k);
            if nodes.is_empty() {
                return Err(GraphError::Precondition {
                    message: format!("keyword {k:?} occurs at no node"),
                });
            }
            terminals.extend_from_slice(nodes);
        }
        terminals.sort_unstable();
        terminals.dedup();
        Ok(terminals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_indexing() {
        let mut dg = DataGraph::new();
        let a = dg.add_node(&["db"]);
        let b = dg.add_node(&[]);
        let c = dg.add_node(&["db", "graph"]);
        dg.add_edge(a, b).unwrap();
        dg.add_edge(b, c).unwrap();
        assert_eq!(dg.keyword_nodes("db"), &[a, c]);
        assert_eq!(dg.keyword_nodes("graph"), &[c]);
        assert!(dg.keyword_nodes("missing").is_empty());
        assert_eq!(dg.keywords_of(b), &[] as &[String]);
    }

    #[test]
    fn terminals_union_and_dedup() {
        let mut dg = DataGraph::new();
        let a = dg.add_node(&["x", "y"]);
        let b = dg.add_node(&["y"]);
        let t = dg.terminals_for(&["x", "y"]).unwrap();
        assert_eq!(t, vec![a, b]);
    }

    #[test]
    fn missing_keyword_is_an_error() {
        let dg = DataGraph::new();
        assert!(dg.terminals_for(&["nope"]).is_err());
    }

    #[test]
    fn directed_data_graph_basics() {
        let mut dg = DirectedDataGraph::new();
        let a = dg.add_node(&["root"]);
        let b = dg.add_node(&["kw"]);
        dg.add_arc(a, b).unwrap();
        assert_eq!(dg.terminals_for(&["kw"]).unwrap(), vec![b]);
        assert_eq!(dg.keywords_of(a), &["root".to_string()]);
        assert_eq!(dg.keyword_nodes("kw"), &[b]);
    }
}
