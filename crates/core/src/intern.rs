//! Hash-consed interning of emitted solutions.
//!
//! The four enumerators emit every solution as a **sorted id slice**, and
//! the engine's zero-allocation sink path hands that slice to the consumer
//! without retaining it. Consumers that *do* retain solutions — the
//! keyword-search ranking layer, the [`crate::cache`] result cache,
//! anything serving repeated queries — previously each copied every slice
//! into an owned `Vec`, so `s` consumers of the same stream paid `s`
//! copies of every solution.
//!
//! This module provides the materialize-once/reuse-many alternative (the
//! same economics BDD-based Steiner enumeration exploits by sharing
//! sub-solution structure): a [`SolutionInterner`] **deduplicates** sorted
//! id slices into one flat arena and hands out stable, `Copy`able
//! [`SolutionId`] handles. Re-emitting an interned solution is O(1)
//! ([`SolutionInterner::resolve`] returns the arena slice directly), and
//! interning an already-known slice allocates nothing.
//!
//! Lifecycle is reference-counted: [`SolutionInterner::intern`] and
//! [`SolutionInterner::acquire`] take a reference,
//! [`SolutionInterner::release`] drops one, and a solution whose count
//! reaches zero becomes *dead* — its id may be reused and its arena bytes
//! are reclaimed by the next [`SolutionInterner::compact`]. Live ids are
//! **stable**: compaction never renumbers or moves a live solution's id.
//!
//! [`SolutionSet`] wraps the interner in a shared, clonable, thread-safe
//! handle — the form the [`Enumeration`](crate::solver::Enumeration)
//! builder's `with_interning` front-end and the sharded merge point use.
//!
//! ```
//! use steiner_core::intern::SolutionInterner;
//! use steiner_graph::EdgeId;
//!
//! let mut interner = SolutionInterner::new();
//! let a = interner.intern(&[EdgeId(0), EdgeId(2)]);
//! let b = interner.intern(&[EdgeId(1)]);
//! let a2 = interner.intern(&[EdgeId(0), EdgeId(2)]); // hash-cons hit
//! assert_eq!(a, a2);
//! assert_eq!(interner.resolve(a), &[EdgeId(0), EdgeId(2)]);
//! assert_eq!(interner.resolve(b), &[EdgeId(1)]);
//! assert_eq!(interner.len(), 2);
//! assert_eq!(interner.dedup_hits(), 1);
//! ```

use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Stable handle to one interned solution inside a [`SolutionInterner`].
///
/// Ids are dense small integers, so consumers can use them as map keys or
/// array indices. An id stays valid — and keeps resolving to the identical
/// slice — as long as the solution's reference count is positive; after
/// the last [`release`](SolutionInterner::release) the id may be reused
/// for a different solution.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SolutionId(u32);

impl SolutionId {
    /// The underlying dense index, for direct use as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned solution: a range of the flat arena plus its refcount.
struct Slot {
    start: u32,
    len: u32,
    /// Reference count; 0 means the slot is dead (id queued for reuse).
    refs: u32,
    /// Cached hash of the items, so table rebuilds never re-hash slices.
    hash: u64,
}

/// Marker for a deleted hash-table entry (distinct from `EMPTY` so probe
/// chains survive deletions until the next rebuild).
const TOMBSTONE: u32 = u32::MAX;
/// Marker for a never-used hash-table entry.
const EMPTY: u32 = 0;

/// A hash-consing arena over sorted solution slices: structurally equal
/// slices intern to the same [`SolutionId`], stored once.
///
/// Single-threaded core; see [`SolutionSet`] for the shared wrapper. See
/// the [module documentation](self) for an example and the lifecycle
/// rules.
pub struct SolutionInterner<Item> {
    /// All live (and not-yet-compacted dead) solutions, back to back.
    flat: Vec<Item>,
    slots: Vec<Slot>,
    /// Open-addressing table of `slot index + 1` (`EMPTY` = never used,
    /// `TOMBSTONE` = deleted). Capacity is a power of two.
    table: Vec<u32>,
    /// Live entries in `table` (excludes tombstones).
    live: usize,
    /// Tombstones in `table`.
    tombstones: usize,
    /// Dead slot indices available for reuse.
    free: Vec<u32>,
    /// Items owned by dead slots, reclaimable by [`Self::compact`].
    dead_items: usize,
    dedup_hits: u64,
}

impl<Item> Default for SolutionInterner<Item> {
    fn default() -> Self {
        SolutionInterner {
            flat: Vec::new(),
            slots: Vec::new(),
            table: Vec::new(),
            live: 0,
            tombstones: 0,
            free: Vec::new(),
            dead_items: 0,
            dedup_hits: 0,
        }
    }
}

/// One stable hash for a solution slice (used for the table and for query
/// fingerprints; not cryptographic).
fn hash_items<Item: Hash>(items: &[Item]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    items.hash(&mut h);
    h.finish()
}

impl<Item: Copy + Eq + Hash> SolutionInterner<Item> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner preallocated for about `solutions` solutions of
    /// `items` total items.
    pub fn with_capacity(solutions: usize, items: usize) -> Self {
        let mut s = Self::new();
        s.flat.reserve(items);
        s.slots.reserve(solutions);
        s.rebuild_table((solutions * 2).next_power_of_two().max(16));
        s
    }

    /// Number of live (reference-counted) solutions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live solutions are interned.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Bytes of item payload held by **live** solutions.
    pub fn bytes(&self) -> u64 {
        ((self.flat.len() - self.dead_items) * std::mem::size_of::<Item>()) as u64
    }

    /// Bytes of item payload currently held in the arena, dead ranges
    /// included (the figure [`Self::compact`] shrinks toward
    /// [`Self::bytes`]).
    pub fn arena_bytes(&self) -> u64 {
        (self.flat.len() * std::mem::size_of::<Item>()) as u64
    }

    /// How many [`Self::intern`] calls found their slice already present
    /// — the work the hash-consing layer avoided re-materializing.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Interns `items`, returning the id of the arena copy and taking one
    /// reference. Structurally equal slices (same items, same order)
    /// always return the same id, so callers should pass solutions in the
    /// engine's canonical sorted form.
    pub fn intern(&mut self, items: &[Item]) -> SolutionId {
        let hash = hash_items(items);
        if self.table.is_empty() || (self.live + self.tombstones + 1) * 8 > self.table.len() * 7 {
            // Size by the *live* count, not the old capacity: sustained
            // intern/release churn (an LRU cache at its byte cap) piles
            // up tombstones without growing `live`, and rebuilding to
            // 4×live clears them while keeping the table bounded by the
            // live population instead of by total interns ever.
            self.rebuild_table(((self.live + 1) * 4).max(16));
        }
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        let mut first_tombstone = None;
        loop {
            match self.table[i] {
                EMPTY => break,
                TOMBSTONE => {
                    first_tombstone.get_or_insert(i);
                }
                enc => {
                    let slot = &self.slots[(enc - 1) as usize];
                    if slot.refs > 0 && slot.hash == hash && self.slice_of(slot) == items {
                        let id = SolutionId(enc - 1);
                        self.slots[(enc - 1) as usize].refs += 1;
                        self.dedup_hits += 1;
                        return id;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        // Not present: append to the arena, reusing a dead slot id if any.
        // Offsets are u32: fail loudly at the 2^32-item arena boundary
        // instead of silently wrapping into another solution's range.
        assert!(
            self.flat.len() + items.len() <= u32::MAX as usize,
            "SolutionInterner arena exceeds u32 offsets ({} items); \
             compact() or evict before interning more",
            self.flat.len(),
        );
        let start = self.flat.len() as u32;
        self.flat.extend_from_slice(items);
        let slot = Slot {
            start,
            len: items.len() as u32,
            refs: 1,
            hash,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        let dest = first_tombstone.unwrap_or(i);
        if self.table[dest] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.table[dest] = idx + 1;
        self.live += 1;
        SolutionId(idx)
    }

    /// The interned slice for `id` — O(1), no copy.
    ///
    /// # Panics
    /// Panics if `id` is dead (released to a zero reference count).
    pub fn resolve(&self, id: SolutionId) -> &[Item] {
        let slot = &self.slots[id.index()];
        assert!(slot.refs > 0, "resolve of a dead SolutionId");
        self.slice_of(slot)
    }

    /// Takes an additional reference on `id`.
    ///
    /// # Panics
    /// Panics if `id` is dead.
    pub fn acquire(&mut self, id: SolutionId) {
        let slot = &mut self.slots[id.index()];
        assert!(slot.refs > 0, "acquire of a dead SolutionId");
        slot.refs += 1;
    }

    /// Drops one reference on `id`. Returns `true` when this was the last
    /// reference: the id is dead, queued for reuse, and its bytes become
    /// reclaimable by [`Self::compact`].
    ///
    /// # Panics
    /// Panics if `id` is already dead.
    pub fn release(&mut self, id: SolutionId) -> bool {
        let slot = &mut self.slots[id.index()];
        assert!(slot.refs > 0, "release of a dead SolutionId");
        slot.refs -= 1;
        if slot.refs > 0 {
            return false;
        }
        self.dead_items += slot.len as usize;
        let hash = slot.hash;
        self.remove_from_table(hash, id);
        self.free.push(id.0);
        self.live -= 1;
        true
    }

    /// Reclaims the arena space of dead solutions by sliding live ranges
    /// down in place. Live ids are untouched (compaction rewrites slot
    /// *offsets*, never slot *indices*). O(arena + live·log live) time,
    /// one temporary index allocation of live-slot size.
    pub fn compact(&mut self) {
        if self.dead_items == 0 {
            return;
        }
        // Collect live slots in arena order, then slide each range left.
        let mut order: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&i| self.slots[i as usize].refs > 0)
            .collect();
        order.sort_unstable_by_key(|&i| self.slots[i as usize].start);
        let mut write = 0usize;
        for idx in order {
            let slot = &mut self.slots[idx as usize];
            let (start, len) = (slot.start as usize, slot.len as usize);
            slot.start = write as u32;
            self.flat.copy_within(start..start + len, write);
            write += len;
        }
        self.flat.truncate(write);
        self.dead_items = 0;
    }

    /// The share of arena bytes owned by dead solutions, in `[0, 1]` —
    /// callers typically [`Self::compact`] when this crosses a threshold.
    pub fn dead_fraction(&self) -> f64 {
        if self.flat.is_empty() {
            0.0
        } else {
            self.dead_items as f64 / self.flat.len() as f64
        }
    }

    fn slice_of(&self, slot: &Slot) -> &[Item] {
        &self.flat[slot.start as usize..(slot.start + slot.len) as usize]
    }

    fn remove_from_table(&mut self, hash: u64, id: SolutionId) {
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.table[i] {
                EMPTY => unreachable!("interned id missing from the table"),
                enc if enc != TOMBSTONE && enc - 1 == id.0 => {
                    self.table[i] = TOMBSTONE;
                    self.tombstones += 1;
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn rebuild_table(&mut self, capacity: usize) {
        let capacity = capacity.next_power_of_two().max(16);
        self.table.clear();
        self.table.resize(capacity, EMPTY);
        self.tombstones = 0;
        let mask = capacity - 1;
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.refs == 0 {
                continue;
            }
            let mut i = (slot.hash as usize) & mask;
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = idx as u32 + 1;
        }
    }
}

/// A shared, clonable, thread-safe [`SolutionInterner`] handle — what
/// [`Enumeration::with_interning`](crate::solver::Enumeration::with_interning)
/// takes, and what lets a sharded run intern at the merge point while
/// other threads resolve.
///
/// Cloning is cheap (an [`Arc`] bump); all clones view the same arena.
///
/// ```
/// use steiner_core::intern::SolutionSet;
/// use steiner_graph::EdgeId;
///
/// let set: SolutionSet<EdgeId> = SolutionSet::new();
/// let id = set.intern(&[EdgeId(3), EdgeId(5)]);
/// assert_eq!(set.resolve_owned(id), vec![EdgeId(3), EdgeId(5)]);
/// assert_eq!(set.len(), 1);
/// ```
pub struct SolutionSet<Item> {
    inner: Arc<Mutex<SolutionInterner<Item>>>,
}

impl<Item> Clone for SolutionSet<Item> {
    fn clone(&self) -> Self {
        SolutionSet {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Item> Default for SolutionSet<Item> {
    fn default() -> Self {
        SolutionSet {
            inner: Arc::new(Mutex::new(SolutionInterner::default())),
        }
    }
}

impl<Item: Copy + Eq + Hash> SolutionSet<Item> {
    /// An empty shared interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `items` (see [`SolutionInterner::intern`]).
    pub fn intern(&self, items: &[Item]) -> SolutionId {
        self.lock().intern(items)
    }

    /// An owned copy of the interned slice for `id`.
    pub fn resolve_owned(&self, id: SolutionId) -> Vec<Item> {
        self.lock().resolve(id).to_vec()
    }

    /// Runs `f` with shared access to the underlying interner — the
    /// zero-copy way to read many interned slices under one lock.
    pub fn with<R>(&self, f: impl FnOnce(&SolutionInterner<Item>) -> R) -> R {
        f(&self.lock())
    }

    /// Runs `f` with exclusive access to the underlying interner (for
    /// batch `acquire`/`release`/`compact` sequences under one lock).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut SolutionInterner<Item>) -> R) -> R {
        f(&mut self.lock())
    }

    /// Number of live interned solutions.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no live solutions are interned.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Bytes of item payload held by live solutions.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes()
    }

    /// Total hash-cons hits so far (see [`SolutionInterner::dedup_hits`]).
    pub fn dedup_hits(&self) -> u64 {
        self.lock().dedup_hits()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SolutionInterner<Item>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::EdgeId;

    fn ids(range: std::ops::Range<u32>) -> Vec<EdgeId> {
        range.map(EdgeId).collect()
    }

    #[test]
    fn interning_dedups_and_resolves() {
        let mut s = SolutionInterner::new();
        let a = s.intern(&ids(0..3));
        let b = s.intern(&ids(3..5));
        assert_ne!(a, b);
        assert_eq!(s.intern(&ids(0..3)), a);
        assert_eq!(s.intern(&ids(3..5)), b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dedup_hits(), 2);
        assert_eq!(s.resolve(a), &ids(0..3)[..]);
        assert_eq!(s.resolve(b), &ids(3..5)[..]);
    }

    #[test]
    fn order_matters_for_identity() {
        // The engine emits sorted slices; distinct orders are distinct
        // (the interner is exact, not set-semantic).
        let mut s = SolutionInterner::new();
        let a = s.intern(&[EdgeId(1), EdgeId(2)]);
        let b = s.intern(&[EdgeId(2), EdgeId(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_solution_is_internable() {
        // One-terminal Steiner instances emit the empty tree.
        let mut s = SolutionInterner::new();
        let a = s.intern(&[] as &[EdgeId]);
        assert_eq!(s.intern(&[] as &[EdgeId]), a);
        assert_eq!(s.resolve(a), &[] as &[EdgeId]);
    }

    #[test]
    fn refcounts_free_and_reuse_ids() {
        let mut s = SolutionInterner::new();
        let a = s.intern(&ids(0..4));
        let _b = s.intern(&ids(4..6));
        s.acquire(a); // refs = 2
        assert!(!s.release(a));
        assert!(s.release(a), "second release kills the solution");
        assert_eq!(s.len(), 1);
        // The dead slice is really gone: re-interning allocates anew (and
        // may reuse the dead id).
        let c = s.intern(&ids(0..4));
        assert_eq!(c, a, "dead id is reused for the next interned solution");
        assert_eq!(s.resolve(c), &ids(0..4)[..]);
    }

    #[test]
    fn compact_reclaims_dead_bytes_and_keeps_live_ids_stable() {
        let mut s = SolutionInterner::new();
        let keep1 = s.intern(&ids(0..5));
        let drop1 = s.intern(&ids(5..9));
        let keep2 = s.intern(&ids(9..12));
        let drop2 = s.intern(&ids(12..20));
        let before = s.bytes();
        s.release(drop1);
        s.release(drop2);
        assert_eq!(s.bytes(), before - 12 * 4, "live bytes shrink on release");
        assert!(s.arena_bytes() > s.bytes(), "arena still holds dead ranges");
        assert!(s.dead_fraction() > 0.5);
        s.compact();
        assert_eq!(s.arena_bytes(), s.bytes(), "compaction reclaims the gap");
        assert_eq!(s.resolve(keep1), &ids(0..5)[..]);
        assert_eq!(s.resolve(keep2), &ids(9..12)[..]);
        // And the table still finds the compacted slices.
        assert_eq!(s.intern(&ids(0..5)), keep1);
        assert_eq!(s.intern(&ids(9..12)), keep2);
    }

    #[test]
    #[should_panic(expected = "dead SolutionId")]
    fn resolving_a_dead_id_panics() {
        let mut s = SolutionInterner::new();
        let a = s.intern(&ids(0..2));
        s.release(a);
        let _ = s.resolve(a);
    }

    #[test]
    fn many_solutions_survive_table_growth() {
        let mut s = SolutionInterner::new();
        let handles: Vec<(SolutionId, Vec<EdgeId>)> = (0..500)
            .map(|i| {
                let sol = ids(i..i + 1 + (i % 7));
                (s.intern(&sol), sol)
            })
            .collect();
        assert_eq!(s.len(), 500);
        for (id, sol) in &handles {
            assert_eq!(s.resolve(*id), &sol[..]);
            assert_eq!(s.intern(sol), *id, "rehash keeps hash-consing exact");
        }
    }

    #[test]
    fn heavy_churn_with_tombstones_stays_consistent() {
        // Interleave intern/release so the table accumulates tombstones
        // across several rebuilds; identity must never be lost.
        let mut s = SolutionInterner::new();
        let mut live: Vec<(SolutionId, Vec<EdgeId>)> = Vec::new();
        for round in 0u32..50 {
            for i in 0..20 {
                let sol = ids(round * 20 + i..round * 20 + i + 3);
                live.push((s.intern(&sol), sol));
            }
            // Release every other live solution.
            let mut keep = Vec::new();
            for (j, (id, sol)) in live.drain(..).enumerate() {
                if j % 2 == 0 {
                    s.release(id);
                } else {
                    keep.push((id, sol));
                }
            }
            live = keep;
            if s.dead_fraction() > 0.4 {
                s.compact();
            }
        }
        assert_eq!(s.len(), live.len());
        for (id, sol) in &live {
            assert_eq!(s.resolve(*id), &sol[..]);
        }
    }

    #[test]
    fn churn_does_not_grow_the_table_unboundedly() {
        // LRU-style workload: tens of thousands of intern/release cycles
        // while at most 8 solutions are live. The table must stay sized
        // by the live population, not by the total interns ever seen.
        let mut s = SolutionInterner::new();
        let mut live: std::collections::VecDeque<SolutionId> = std::collections::VecDeque::new();
        for i in 0u32..20_000 {
            live.push_back(s.intern(&ids(i..i + 4)));
            if live.len() > 8 {
                let old = live.pop_front().unwrap();
                s.release(old);
            }
            if s.dead_fraction() > 0.5 {
                s.compact();
            }
        }
        assert_eq!(s.len(), 8);
        assert!(
            s.table.len() <= 64,
            "table stays O(live), got {} slots",
            s.table.len()
        );
        for &id in &live {
            assert_eq!(s.resolve(id).len(), 4);
        }
    }

    #[test]
    fn shared_set_is_clonable_and_consistent() {
        let set: SolutionSet<EdgeId> = SolutionSet::new();
        let clone = set.clone();
        let a = set.intern(&ids(0..3));
        assert_eq!(clone.intern(&ids(0..3)), a, "clones share the arena");
        assert_eq!(clone.len(), 1);
        assert_eq!(clone.dedup_hits(), 1);
        assert!(clone.bytes() > 0);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let set = set.clone();
                std::thread::spawn(move || set.intern(&ids(t..t + 2)))
            })
            .collect();
        for t in threads {
            let id = t.join().unwrap();
            assert_eq!(set.resolve_owned(id).len(), 2);
        }
    }
}
