//! Exponential-time reference enumerators (test oracles).
//!
//! Each function enumerates *all* subsets of edges/arcs of a small graph
//! and keeps those passing the corresponding [`crate::verify`] predicate.
//! They are the ground truth for the property tests of the fast
//! enumerators. Guarded against accidental use on large inputs.

use crate::verify;
use std::collections::BTreeSet;
use steiner_graph::{ArcId, DiGraph, EdgeId, UndirectedGraph, VertexId};

/// Maximum number of edges the brute-force enumerators accept.
pub const MAX_BRUTE_EDGES: usize = 22;

fn subset_edges(mask: u32, m: usize) -> Vec<EdgeId> {
    (0..m)
        .filter(|i| mask & (1 << i) != 0)
        .map(EdgeId::new)
        .collect()
}

fn subset_arcs(mask: u32, m: usize) -> Vec<ArcId> {
    (0..m)
        .filter(|i| mask & (1 << i) != 0)
        .map(ArcId::new)
        .collect()
}

/// All minimal Steiner trees of `(g, terminals)` as sorted edge sets.
pub fn minimal_steiner_trees(g: &UndirectedGraph, terminals: &[VertexId]) -> BTreeSet<Vec<EdgeId>> {
    let m = g.num_edges();
    assert!(
        m <= MAX_BRUTE_EDGES,
        "brute force limited to {MAX_BRUTE_EDGES} edges"
    );
    let mut out = BTreeSet::new();
    for mask in 0..(1u32 << m) {
        let edges = subset_edges(mask, m);
        if verify::is_minimal_steiner_tree(g, terminals, &edges) {
            out.insert(edges);
        }
    }
    out
}

/// All minimal terminal Steiner trees of `(g, terminals)`.
pub fn minimal_terminal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
) -> BTreeSet<Vec<EdgeId>> {
    let m = g.num_edges();
    assert!(
        m <= MAX_BRUTE_EDGES,
        "brute force limited to {MAX_BRUTE_EDGES} edges"
    );
    let mut out = BTreeSet::new();
    for mask in 0..(1u32 << m) {
        let edges = subset_edges(mask, m);
        if verify::is_minimal_terminal_steiner_tree(g, terminals, &edges) {
            out.insert(edges);
        }
    }
    out
}

/// All minimal Steiner forests of `(g, sets)`.
pub fn minimal_steiner_forests(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
) -> BTreeSet<Vec<EdgeId>> {
    let m = g.num_edges();
    assert!(
        m <= MAX_BRUTE_EDGES,
        "brute force limited to {MAX_BRUTE_EDGES} edges"
    );
    let mut out = BTreeSet::new();
    for mask in 0..(1u32 << m) {
        let edges = subset_edges(mask, m);
        if verify::is_minimal_steiner_forest(g, sets, &edges) {
            out.insert(edges);
        }
    }
    out
}

/// All minimal directed Steiner subgraphs of `(d, terminals, root)` as
/// sorted arc sets. By Proposition 32 these are exactly the minimal
/// directed Steiner trees.
pub fn minimal_directed_steiner_trees(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
) -> BTreeSet<Vec<ArcId>> {
    let m = d.num_arcs();
    assert!(
        m <= MAX_BRUTE_EDGES,
        "brute force limited to {MAX_BRUTE_EDGES} arcs"
    );
    let mut out = BTreeSet::new();
    for mask in 0..(1u32 << m) {
        let arcs = subset_arcs(mask, m);
        if verify::is_minimal_directed_steiner_subgraph(d, root, terminals, &arcs) {
            out.insert(arcs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_steiner_trees() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        let sols = minimal_steiner_trees(&g, &w);
        // Minimal Steiner trees joining 0 and 1: edge {0,1} and path 0-2-1.
        let expected: BTreeSet<Vec<EdgeId>> = [vec![EdgeId(0)], vec![EdgeId(1), EdgeId(2)]]
            .into_iter()
            .collect();
        assert_eq!(sols, expected);
    }

    #[test]
    fn triangle_all_terminals() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1), VertexId(2)];
        let sols = minimal_steiner_trees(&g, &w);
        // Spanning trees of the triangle: any two edges.
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn single_terminal_empty_tree() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        let sols = minimal_steiner_trees(&g, &[VertexId(0)]);
        let expected: BTreeSet<Vec<EdgeId>> = [vec![]].into_iter().collect();
        assert_eq!(sols, expected);
    }

    #[test]
    fn terminal_steiner_trees_exclude_internal_terminals() {
        // Star: center 0, leaves 1, 2, 3. Terminals {1, 2}: path 1-0-2.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let sols = minimal_terminal_steiner_trees(&g, &[VertexId(1), VertexId(2)]);
        let expected: BTreeSet<Vec<EdgeId>> = [vec![EdgeId(0), EdgeId(1)]].into_iter().collect();
        assert_eq!(sols, expected);
    }

    #[test]
    fn forests_on_disjoint_pairs() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(2), VertexId(3)],
        ];
        let sols = minimal_steiner_forests(&g, &sets);
        let expected: BTreeSet<Vec<EdgeId>> = [vec![EdgeId(0), EdgeId(2)]].into_iter().collect();
        assert_eq!(sols, expected);
    }

    #[test]
    fn directed_diamond() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let sols = minimal_directed_steiner_trees(&d, VertexId(0), &[VertexId(3)]);
        let expected: BTreeSet<Vec<ArcId>> = [vec![ArcId(0), ArcId(2)], vec![ArcId(1), ArcId(3)]]
            .into_iter()
            .collect();
        assert_eq!(sols, expected);
    }
}
