//! Minimum (optimum-size) Steiner trees — the Table 1 baseline row
//! "Minimum Steiner Tree \[10\]".
//!
//! The paper's Table 1 contrasts *minimal* enumeration (this work) with
//! prior algorithms that enumerate all *minimum* Steiner trees (Dourado,
//! de Oliveira, Protti \[10\]: O(n) delay after exponential-in-t
//! preprocessing). This module provides the practical equivalent:
//!
//! * [`minimum_steiner_tree_size`] — the optimum size via the classical
//!   Dreyfus–Wagner dynamic program (O(3ᵗ·n + 2ᵗ·n·(n+m)) for unweighted
//!   graphs), the same exponential-in-t preprocessing family as \[10\];
//! * [`enumerate_minimum_steiner_trees`] — all minimum Steiner trees, by
//!   filtering the minimal-tree enumeration at the optimum size (every
//!   minimum Steiner tree is a minimal one, so the filter is complete).
//!   Total time is that of the minimal enumeration; the per-solution
//!   *delay* is not bounded (reproducing \[10\]'s delay bound would need
//!   its full DP-graph machinery, which the paper itself does not use).

use crate::improved::SteinerTree;
use crate::queue::DirectSink;
use crate::simple::normalize_terminals;
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::traversal::bfs;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

/// Maximum number of terminals the Dreyfus–Wagner DP accepts (3ᵗ blowup).
pub const MAX_DW_TERMINALS: usize = 14;

/// The number of edges of a minimum Steiner tree of `(g, terminals)`, or
/// `None` when the terminals are not connected. Unweighted Dreyfus–Wagner.
///
/// Degenerate cases: zero or one terminal → `Some(0)`.
pub fn minimum_steiner_tree_size(g: &UndirectedGraph, terminals: &[VertexId]) -> Option<usize> {
    let terminals = normalize_terminals(terminals);
    let t = terminals.len();
    if t <= 1 {
        return Some(0);
    }
    assert!(
        t <= MAX_DW_TERMINALS,
        "Dreyfus–Wagner limited to {MAX_DW_TERMINALS} terminals"
    );
    let n = g.num_vertices();
    const INF: u32 = u32::MAX / 4;
    // All-terminal-sources BFS distances: dist[i][v] from terminal i.
    let dist: Vec<Vec<u32>> = terminals
        .iter()
        .map(|&w| {
            let f = bfs(g, &[w], None);
            f.dist
                .iter()
                .map(|&d| if d == u32::MAX { INF } else { d })
                .collect()
        })
        .collect();
    // Pairwise vertex distances are needed for the relaxation step; we run
    // one BFS per vertex (O(n(n+m)), the dominant preprocessing cost).
    let vdist: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let f = bfs(g, &[VertexId::new(v)], None);
            f.dist
                .iter()
                .map(|&d| if d == u32::MAX { INF } else { d })
                .collect()
        })
        .collect();
    // dp[mask][v]: minimum edges of a tree connecting {terminals in mask} ∪ {v}.
    let full: usize = (1 << (t - 1)) - 1; // masks over terminals 1..t, rooted at terminal 0
    let mut dp = vec![vec![INF; n]; full + 1];
    for (i, row) in dist.iter().enumerate().skip(1) {
        let mask = 1usize << (i - 1);
        dp[mask].copy_from_slice(row);
    }
    for mask in 1..=full {
        if mask.count_ones() >= 2 {
            // Merge two subtrees at v.
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask ^ sub;
                if sub < other {
                    // Each split considered once.
                    sub = (sub - 1) & mask;
                    continue;
                }
                // Three disjoint rows of `dp` are touched (sub, other,
                // mask), which an iterator can't express cleanly.
                #[allow(clippy::needless_range_loop)]
                for v in 0..n {
                    let merged = dp[sub][v].saturating_add(dp[other][v]);
                    let slot = &mut dp[mask][v];
                    if merged < *slot {
                        *slot = merged;
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        // Relax through the metric closure: dp[mask][v] ≤ dp[mask][u] + d(u, v).
        for v in 0..n {
            let mut best = dp[mask][v];
            for u in 0..n {
                let c = dp[mask][u].saturating_add(vdist[u][v]);
                if c < best {
                    best = c;
                }
            }
            dp[mask][v] = best;
        }
    }
    let answer = dp[full][terminals[0].index()];
    if answer >= INF {
        None
    } else {
        Some(answer as usize)
    }
}

/// Enumerates all **minimum** Steiner trees of `(g, terminals)` (sorted
/// edge sets of optimum cardinality), by running the minimal-tree
/// enumerator and keeping the optimum-size solutions. Returns the optimum
/// size alongside the enumeration statistics, or `None` when no Steiner
/// tree exists.
pub fn enumerate_minimum_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> Option<(usize, EnumStats)> {
    let opt = minimum_steiner_tree_size(g, terminals)?;
    let mut filtered = |edges: &[EdgeId]| {
        if edges.len() == opt {
            sink(edges)
        } else {
            ControlFlow::Continue(())
        }
    };
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    let mut direct = DirectSink {
        sink: &mut filtered,
    };
    let stats = run_sink_lenient(&mut problem, &mut direct);
    Some((opt, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn brute_minimum(
        g: &UndirectedGraph,
        w: &[VertexId],
    ) -> Option<(usize, BTreeSet<Vec<EdgeId>>)> {
        let all = brute::minimal_steiner_trees(g, w);
        let opt = all.iter().map(|t| t.len()).min()?;
        let min_trees = all.into_iter().filter(|t| t.len() == opt).collect();
        Some((opt, min_trees))
    }

    #[test]
    fn triangle_minimum_is_direct_edge() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        assert_eq!(minimum_steiner_tree_size(&g, &w), Some(1));
        let mut got = BTreeSet::new();
        enumerate_minimum_steiner_trees(&g, &w, &mut |e| {
            got.insert(e.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got.len(), 1);
        assert!(got.contains(&vec![EdgeId(0)]));
    }

    #[test]
    fn star_steiner_point_is_used() {
        // Terminals on three leaves of a star: minimum uses the center,
        // size 3.
        let g = steiner_graph::generators::star(4);
        let w = [VertexId(1), VertexId(2), VertexId(3)];
        assert_eq!(minimum_steiner_tree_size(&g, &w), Some(3));
    }

    #[test]
    fn disconnected_terminals_have_no_minimum() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            minimum_steiner_tree_size(&g, &[VertexId(0), VertexId(2)]),
            None
        );
        assert!(
            enumerate_minimum_steiner_trees(&g, &[VertexId(0), VertexId(2)], &mut |_| {
                ControlFlow::Continue(())
            })
            .is_none()
        );
    }

    #[test]
    fn degenerate_terminal_counts() {
        let g = steiner_graph::generators::path(4);
        assert_eq!(minimum_steiner_tree_size(&g, &[]), Some(0));
        assert_eq!(minimum_steiner_tree_size(&g, &[VertexId(2)]), Some(0));
    }

    #[test]
    fn grid_minimum_count() {
        // 2x3 grid, terminals at corners 0 and 5: distance 3, several
        // shortest routes.
        let g = steiner_graph::generators::grid(2, 3);
        let w = [VertexId(0), VertexId(5)];
        let (opt, trees) = brute_minimum(&g, &w).unwrap();
        assert_eq!(minimum_steiner_tree_size(&g, &w), Some(opt));
        let mut got = BTreeSet::new();
        enumerate_minimum_steiner_trees(&g, &w, &mut |e| {
            got.insert(e.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got, trees);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x317);
        for case in 0..40 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..4)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (opt, trees) = brute_minimum(&g, &w).unwrap();
            assert_eq!(
                minimum_steiner_tree_size(&g, &w),
                Some(opt),
                "graph {g:?} terminals {w:?}"
            );
            let mut got = BTreeSet::new();
            enumerate_minimum_steiner_trees(&g, &w, &mut |e| {
                got.insert(e.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(got, trees, "graph {g:?} terminals {w:?}");
        }
    }

    #[test]
    fn minimum_size_never_exceeds_any_minimal_tree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x318);
        for _ in 0..20 {
            let n = 4 + rng.gen_range(0..5usize);
            let g = steiner_graph::generators::random_connected_graph(n, n + 2, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let opt = minimum_steiner_tree_size(&g, &w).unwrap();
            crate::solver::Enumeration::new(SteinerTree::new(&g, &w))
                .for_each(|e| {
                    assert!(e.len() >= opt);
                    ControlFlow::Continue(())
                })
                .unwrap();
        }
    }
}
