//! Minimal directed Steiner tree enumeration (§5.2, Theorems 34 & 36),
//! exposed as the [`DirectedSteinerTree`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! A partial solution is a directed tree `T` rooted at `r` whose leaves are
//! all terminals; children attach one directed `V(T)`-`w` path (Lemma 33
//! guarantees extendibility). The improved node rule works in the
//! contracted multigraph `D′ = D/E(T)` with super-vertex `r_T`:
//!
//! 1. build a DFS tree `T′` of `D′` from `r_T` and its postorder `≺`;
//! 2. prune `T′` to the minimal directed Steiner tree `T*` spanning the
//!    missing terminals;
//! 3. **Lemma 35**: another minimal directed Steiner tree exists iff some
//!    `v, u ∈ V(T*)` with `u ≺ v` admit a directed `v`-`u` path in
//!    `D′ − E(T*)`. The paper's descending-postorder sweep finds such a
//!    pair (or rules it out) in O(n + m): BFS from the largest remaining
//!    vertex, stop on hitting an undeleted `T*` vertex, otherwise delete
//!    everything reached and continue.
//! 4. On a witness `(v, u)`: any terminal below `u` in `T*` has ≥ 2 valid
//!    paths — branch on it. Otherwise `T + T*` is the unique completion:
//!    emit it as a leaf.

use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use std::borrow::Cow;
use std::ops::ControlFlow;
use steiner_graph::connectivity::reachable_from;
use steiner_graph::contraction::{contract_vertex_set, ContractedDigraph};
use steiner_graph::traversal::di_dfs_postorder;
use steiner_graph::{ArcId, DiGraph, VertexId};
use steiner_paths::stsets::DiSourceSetInstance;

/// The minimal directed Steiner tree problem (§5.2): find all
/// inclusion-minimal out-trees of `d` rooted at `root` spanning
/// `terminals`.
///
/// The root is dropped from `terminals` if present (it is trivially
/// reached), so `terminals == [root]` yields the single empty tree as the
/// unique solution. A literally empty terminal list is reported as
/// [`SteinerError::EmptyInstance`].
///
/// ```
/// use steiner_core::{DirectedSteinerTree, Enumeration};
/// use steiner_graph::{DiGraph, VertexId};
///
/// // Diamond: two arc-disjoint ways from the root 0 to terminal 3.
/// let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let trees = Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(3)]))
///     .collect_vec()
///     .unwrap();
/// assert_eq!(trees.len(), 2);
/// assert!(trees.iter().all(|t| t.len() == 2));
/// ```
pub struct DirectedSteinerTree<'g> {
    d: Cow<'g, DiGraph>,
    root: VertexId,
    terminals: Vec<VertexId>,
    stats: EnumStats,
    search: Option<DirectedSearch>,
}

/// Mutable search state installed by `prepare`.
struct DirectedSearch {
    terminals: Vec<VertexId>,
    is_terminal: Vec<bool>,
    in_tree: Vec<bool>,
    tree_vertices: Vec<VertexId>,
    tree_arcs: Vec<ArcId>,
    missing: usize,
}

impl<'g> DirectedSteinerTree<'g> {
    /// A problem instance borrowing the digraph.
    pub fn new(d: &'g DiGraph, root: VertexId, terminals: &[VertexId]) -> Self {
        DirectedSteinerTree {
            d: Cow::Borrowed(d),
            root,
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// A problem instance owning the digraph.
    pub fn from_graph(
        d: DiGraph,
        root: VertexId,
        terminals: &[VertexId],
    ) -> DirectedSteinerTree<'static> {
        DirectedSteinerTree {
            d: Cow::Owned(d),
            root,
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// Clones the borrowed digraph (if any) so the instance becomes
    /// `'static` for the iterator front-end.
    pub fn into_owned(self) -> DirectedSteinerTree<'static> {
        DirectedSteinerTree {
            d: Cow::Owned(self.d.into_owned()),
            root: self.root,
            terminals: self.terminals,
            stats: self.stats,
            search: self.search,
        }
    }
}

/// Outcome of the per-node Lemma 35 analysis in the contracted graph.
enum NodeAnalysis {
    /// A terminal with ≥ 2 valid paths to branch on.
    Branch(VertexId),
    /// The unique completion's extra arcs (original ids), to append to
    /// `E(T)`.
    Unique(Vec<ArcId>),
}

/// Lemma 35 analysis of the contracted instance.
fn analyze(
    c: &ContractedDigraph,
    terminals: &[VertexId],
    in_tree: &[bool],
    work: &mut u64,
) -> NodeAnalysis {
    let cn = c.graph.num_vertices();
    let cm = c.graph.num_arcs();
    *work += (cn + cm) as u64;
    let dfs = di_dfs_postorder(&c.graph, c.super_vertex, None);
    // T*: prune the DFS tree to the missing terminals. While marking,
    // remember for every T* vertex a terminal in its subtree.
    let mut in_tstar_vertex = vec![false; cn];
    let mut in_tstar_arc = vec![false; cm];
    let mut term_rep: Vec<Option<VertexId>> = vec![None; cn];
    let mut tstar_vertices: Vec<VertexId> = Vec::new();
    let mut tstar_arcs: Vec<ArcId> = Vec::new();
    for &w in terminals {
        if in_tree[w.index()] {
            continue;
        }
        let mut cur = c.vertex_map[w.index()];
        while !in_tstar_vertex[cur.index()] {
            *work += 1;
            in_tstar_vertex[cur.index()] = true;
            term_rep[cur.index()] = Some(w);
            tstar_vertices.push(cur);
            if cur == c.super_vertex {
                break;
            }
            let pa = dfs.parent_arc[cur.index()]
                .expect("terminals are reachable from the root (preprocessing)");
            in_tstar_arc[pa.index()] = true;
            tstar_arcs.push(pa);
            cur = dfs.parent[cur.index()].expect("non-root has a parent");
        }
    }
    // Descending-postorder sweep over V(T*).
    tstar_vertices.sort_unstable_by_key(|v| std::cmp::Reverse(dfs.postorder[v.index()]));
    let mut deleted = vec![false; cn];
    let mut round: Vec<VertexId> = Vec::new();
    for &v in &tstar_vertices {
        if deleted[v.index()] {
            continue;
        }
        round.clear();
        round.push(v);
        let mut head = 0;
        let mut witness: Option<VertexId> = None;
        let mut in_round = vec![false; cn];
        in_round[v.index()] = true;
        'bfs: while head < round.len() {
            let x = round[head];
            head += 1;
            for (y, a) in c.graph.out_neighbors(x) {
                *work += 1;
                if in_tstar_arc[a.index()] || deleted[y.index()] || in_round[y.index()] {
                    continue;
                }
                if in_tstar_vertex[y.index()] {
                    witness = Some(y);
                    break 'bfs;
                }
                in_round[y.index()] = true;
                round.push(y);
            }
        }
        if let Some(u) = witness {
            let w = term_rep[u.index()].expect("every T* vertex has a terminal below");
            return NodeAnalysis::Branch(w);
        }
        for &x in &round {
            deleted[x.index()] = true;
        }
    }
    NodeAnalysis::Unique(tstar_arcs.iter().map(|a| c.orig_arc[a.index()]).collect())
}

impl MinimalSteinerProblem for DirectedSteinerTree<'_> {
    type Item = ArcId;
    type Branch = VertexId;

    const NAME: &'static str = "minimal directed Steiner tree";

    fn validate(&self) -> Result<(), SteinerError> {
        let n = self.d.num_vertices();
        if self.root.index() >= n {
            return Err(SteinerError::RootOutOfRange {
                root: self.root,
                num_vertices: n,
            });
        }
        crate::problem::validate_terminal_list(&self.terminals, n)
    }

    fn prepare(&mut self) -> Result<Prepared<ArcId>, SteinerError> {
        self.validate()?;
        let d = &*self.d;
        let mut terminals: Vec<VertexId> = self
            .terminals
            .iter()
            .copied()
            .filter(|&w| w != self.root)
            .collect();
        terminals.sort_unstable();
        self.stats.preprocessing_work = (d.num_vertices() + d.num_arcs()) as u64;
        let reach = reachable_from(d, self.root, None);
        if let Some(&w) = terminals.iter().find(|w| !reach[w.index()]) {
            return Err(SteinerError::UnreachableTerminal(w));
        }
        if terminals.is_empty() {
            // The empty tree {root} is the unique solution.
            return Ok(Prepared::Single(Vec::new()));
        }
        let n = d.num_vertices();
        let mut is_terminal = vec![false; n];
        for &w in &terminals {
            is_terminal[w.index()] = true;
        }
        let mut in_tree = vec![false; n];
        in_tree[self.root.index()] = true;
        let missing = terminals.len();
        self.search = Some(DirectedSearch {
            terminals,
            is_terminal,
            in_tree,
            tree_vertices: vec![self.root],
            tree_arcs: Vec::new(),
            missing,
        });
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.d.num_vertices(), self.d.num_arcs())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self) -> NodeStep<ArcId, VertexId> {
        let d: &DiGraph = &self.d;
        let stats = &mut self.stats;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        if search.missing == 0 {
            return NodeStep::Complete;
        }
        let c = contract_vertex_set(d, &search.in_tree);
        stats.work += (d.num_vertices() + d.num_arcs()) as u64;
        match analyze(&c, &search.terminals, &search.in_tree, &mut stats.work) {
            NodeAnalysis::Branch(w) => NodeStep::Branch(w),
            NodeAnalysis::Unique(extra) => {
                let mut arcs = search.tree_arcs.clone();
                arcs.extend_from_slice(&extra);
                NodeStep::Unique(arcs)
            }
        }
    }

    fn solution(&self, out: &mut Vec<ArcId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        out.extend_from_slice(&search.tree_arcs);
    }

    fn branch(
        &mut self,
        w: VertexId,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.d.num_vertices() + self.d.num_arcs()) as u64;
        let inst = {
            let search = self
                .search
                .as_ref()
                .expect("prepare() runs before the search");
            DiSourceSetInstance::new(&self.d, &search.in_tree, None)
        };
        self.stats.work += per_child;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let _pstats = inst.enumerate(w, &mut |p| {
            children += 1;
            self.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let arcs = p.arcs.to_vec();
            let search = self.search.as_mut().expect("search state");
            // Extend T.
            for &v in &verts[1..] {
                debug_assert!(!search.in_tree[v.index()]);
                search.in_tree[v.index()] = true;
                search.tree_vertices.push(v);
                if search.is_terminal[v.index()] {
                    search.missing -= 1;
                }
            }
            let arc_base = search.tree_arcs.len();
            search.tree_arcs.extend_from_slice(&arcs);
            let f = child(self);
            // Retract.
            let search = self.search.as_mut().expect("search state");
            search.tree_arcs.truncate(arc_base);
            for &v in verts[1..].iter().rev() {
                search.tree_vertices.pop();
                search.in_tree[v.index()] = false;
                if search.is_terminal[v.index()] {
                    search.missing += 1;
                }
            }
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 35 witness guarantees two valid paths"
        );
        (children, flow)
    }
}

/// Enumerates all minimal directed Steiner trees of `(d, terminals, root)`
/// through an arbitrary [`SolutionSink`].
///
/// The root is dropped from `terminals` if present (it is trivially
/// reached). With no (other) terminals the single empty tree is emitted.
/// If some terminal is unreachable from the root there are no solutions.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals))` with a custom sink"
)]
pub fn enumerate_minimal_directed_steiner_trees_with(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<ArcId>,
) -> EnumStats {
    let mut terminals = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();
    // The historical contract panicked on an out-of-range root (indexing
    // inside the reachability sweep) even with no terminals; keep that on
    // the early-return path too.
    assert!(
        root.index() < d.num_vertices(),
        "root {root} out of range (digraph has {} vertices)",
        d.num_vertices()
    );
    if terminals.is_empty() || terminals == [root] {
        // Historical lenient contract: the empty tree is the unique
        // solution when no terminal besides the root is requested.
        let mut stats = EnumStats::default();
        stats.preprocessing_work = (d.num_vertices() + d.num_arcs()) as u64;
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    let mut problem = DirectedSteinerTree::new(d, root, &terminals);
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal directed Steiner trees with amortized O(n + m)
/// time per solution (Theorem 36), emitting directly.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).for_each(sink)`"
)]
pub fn enumerate_minimal_directed_steiner_trees(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    #[allow(deprecated)]
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay with O(n²) space (Theorem 36).
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_directed_steiner_trees_queued(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(d.num_vertices(), d.num_arcs()));
    let mut queue = OutputQueue::new(config, sink);
    #[allow(deprecated)]
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;
    use std::collections::BTreeSet;

    fn collect(d: &DiGraph, r: VertexId, w: &[VertexId]) -> BTreeSet<Vec<ArcId>> {
        let mut out = BTreeSet::new();
        Enumeration::new(DirectedSteinerTree::new(d, r, w))
            .for_each(|arcs| {
                assert!(out.insert(arcs.to_vec()), "duplicate solution {arcs:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        out
    }

    #[test]
    fn diamond_two_trees() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(
            got,
            brute::minimal_directed_steiner_trees(&d, VertexId(0), &[VertexId(3)])
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn chain_unique_tree() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn branching_terminals_share_prefixes() {
        // Root 0 -> {1, 2}; 1 -> 3, 2 -> 3; terminals {1, 3}.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = [VertexId(1), VertexId(3)];
        let got = collect(&d, VertexId(0), &w);
        assert_eq!(
            got,
            brute::minimal_directed_steiner_trees(&d, VertexId(0), &w)
        );
    }

    #[test]
    fn unreachable_terminal_is_an_error() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
        let err = Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(2)]))
            .run()
            .unwrap_err();
        assert_eq!(err, SteinerError::UnreachableTerminal(VertexId(2)));
    }

    #[test]
    fn no_terminals_gives_empty_tree_via_shim() {
        #![allow(deprecated)]
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let mut got = BTreeSet::new();
        enumerate_minimal_directed_steiner_trees(&d, VertexId(0), &[], &mut |arcs| {
            got.insert(arcs.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn root_in_terminals_is_dropped() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(0), VertexId(1)]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_dags() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1a6);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
            let (d, root) = steiner_graph::generators::random_rooted_dag(n, m, &mut rng);
            if d.num_arcs() > brute::MAX_BRUTE_EDGES {
                continue;
            }
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            assert_eq!(
                collect(&d, root, &w),
                brute::minimal_directed_steiner_trees(&d, root, &w),
                "digraph {d:?} root {root} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_digraphs_with_cycles() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc1c1e);
        for case in 0..60 {
            let n = 3 + case % 4;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1));
            let d = steiner_graph::generators::random_digraph(n, m.min(20), &mut rng);
            let root = VertexId(0);
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            let mut got = BTreeSet::new();
            let run = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).for_each(|arcs| {
                assert!(got.insert(arcs.to_vec()), "duplicate solution {arcs:?}");
                ControlFlow::Continue(())
            });
            let oracle = brute::minimal_directed_steiner_trees(&d, root, &w);
            match run {
                Ok(_) => {}
                // Random digraphs can leave a terminal unreachable: the
                // strict API reports it, the oracle has no solutions.
                Err(SteinerError::UnreachableTerminal(_)) => assert!(oracle.is_empty()),
                Err(e) => panic!("unexpected error {e} on digraph {d:?}"),
            }
            assert_eq!(got, oracle, "digraph {d:?} root {root} terminals {w:?}");
        }
    }

    #[test]
    fn outputs_verify_minimal() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let mut count = 0;
        Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .for_each(|arcs| {
                count += 1;
                assert!(crate::verify::is_minimal_directed_steiner_subgraph(
                    &d, root, &w, arcs
                ));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(count > 1);
    }

    #[test]
    fn queued_matches_direct() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let direct = collect(&d, root, &w);
        let mut queued = BTreeSet::new();
        Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .with_default_queue()
            .for_each(|arcs| {
                assert!(queued.insert(arcs.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn iterator_front_end_matches_direct() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let direct = collect(&d, root, &w);
        let iterated: BTreeSet<Vec<ArcId>> =
            Enumeration::new(DirectedSteinerTree::from_graph(d.clone(), root, &w))
                .into_iter()
                .unwrap()
                .collect();
        assert_eq!(direct, iterated);
    }
}
