//! Minimal directed Steiner tree enumeration (§5.2, Theorems 34 & 36),
//! exposed as the [`DirectedSteinerTree`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! A partial solution is a directed tree `T` rooted at `r` whose leaves are
//! all terminals; children attach one directed `V(T)`-`w` path (Lemma 33
//! guarantees extendibility). The improved node rule works in the
//! contracted multigraph `D′ = D/E(T)` with super-vertex `r_T`:
//!
//! 1. build a DFS tree `T′` of `D′` from `r_T` and its postorder `≺`;
//! 2. prune `T′` to the minimal directed Steiner tree `T*` spanning the
//!    missing terminals;
//! 3. **Lemma 35**: another minimal directed Steiner tree exists iff some
//!    `v, u ∈ V(T*)` with `u ≺ v` admit a directed `v`-`u` path in
//!    `D′ − E(T*)`. The paper's descending-postorder sweep finds such a
//!    pair (or rules it out) in O(n + m): BFS from the largest remaining
//!    vertex, stop on hitting an undeleted `T*` vertex, otherwise delete
//!    everything reached and continue.
//! 4. On a witness `(v, u)`: any terminal below `u` in `T*` has ≥ 2 valid
//!    paths — branch on it. Otherwise `T + T*` is the unique completion:
//!    emit it as a leaf.

use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError, SubtreeRecord};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use crate::trail::{FrameLog, ScratchUsage};
use std::borrow::Cow;
use std::ops::ControlFlow;
use std::sync::Arc;
use steiner_graph::connectivity::reachable_from;
use steiner_graph::csr::grow;
use steiner_graph::spanning::{DynamicSpanning, SpanMark};
use steiner_graph::{ArcId, CsrDigraph, DiGraph, VertexId};
use steiner_paths::enumerate::{EnumerateOptions, PathScratch};
use steiner_paths::stsets::enumerate_source_set_paths_csr;

/// The minimal directed Steiner tree problem (§5.2): find all
/// inclusion-minimal out-trees of `d` rooted at `root` spanning
/// `terminals`.
///
/// The root is dropped from `terminals` if present (it is trivially
/// reached), so `terminals == [root]` yields the single empty tree as the
/// unique solution. A literally empty terminal list is reported as
/// [`SteinerError::EmptyInstance`].
///
/// ```
/// use steiner_core::{DirectedSteinerTree, Enumeration};
/// use steiner_graph::{DiGraph, VertexId};
///
/// // Diamond: two arc-disjoint ways from the root 0 to terminal 3.
/// let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let trees = Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(3)]))
///     .collect_vec()
///     .unwrap();
/// assert_eq!(trees.len(), 2);
/// assert!(trees.iter().all(|t| t.len() == 2));
/// ```
pub struct DirectedSteinerTree<'g> {
    d: Cow<'g, DiGraph>,
    root: VertexId,
    terminals: Vec<VertexId>,
    stats: EnumStats,
    search: Option<DirectedSearch>,
    level_cache_cap: Option<usize>,
    incremental: bool,
    packed: bool,
}

/// The typed checkpoint frame of one descent: tree-vertex and tree-arc
/// stack lengths plus the connectivity layer's mark.
struct DirFrame {
    added: usize,
    arc_base: usize,
    span: SpanMark,
}

/// Mutable search state installed by `prepare`. All hot-path buffers are
/// preallocated; `classify`/`branch` never allocate.
struct DirectedSearch {
    terminals: Vec<VertexId>,
    is_terminal: Vec<bool>,
    in_tree: Vec<bool>,
    tree_vertices: Vec<VertexId>,
    tree_arcs: Vec<ArcId>,
    missing: usize,
    /// Flat CSR of `D` (arc ids preserved; built once, shared with the
    /// nested branch levels).
    csr: Arc<CsrDigraph>,
    /// Reusable `D/E(T)` contraction (rebuilt in place per node).
    con: ContractionScratch,
    /// Reusable Lemma-35 analysis buffers.
    ana: AnalyzeScratch,
    /// Incremental connectivity over the unique-in-arc skeleton: arcs
    /// whose head has in-degree 1 in `D` are on **every** path to that
    /// head, so a missing terminal reached from `V(T)` along them has a
    /// unique valid path (the forced chain); a node whose missing
    /// terminals are all reached is a Unique leaf without the per-node
    /// contraction + Lemma-35 sweep.
    span: DynamicSpanning,
    /// Typed checkpoint frames of the active descent (LIFO).
    frames: FrameLog<DirFrame>,
    /// One path-enumeration scratch per branch depth.
    pool: Vec<DirBranchScratch>,
    depth: usize,
    /// Per-level BFS cache preallocation cap for pool growth.
    level_cache_cap: usize,
    extra_allocs: u64,
    baseline_allocs: u64,
}

/// Per-branch-depth reusable path-enumeration state.
#[derive(Default)]
struct DirBranchScratch {
    path: PathScratch,
    boundary: Vec<(VertexId, ArcId)>,
    sources: Vec<VertexId>,
}

impl DirBranchScratch {
    fn preallocate(&mut self, n: usize, m: usize, level_cache_cap: usize) {
        self.path.preallocate_capped(n + 2, m + 2, level_cache_cap);
        if self.boundary.capacity() < m + 2 {
            self.boundary.reserve(m + 2 - self.boundary.capacity());
        }
        if self.sources.capacity() < n + 1 {
            self.sources.reserve(n + 1 - self.sources.capacity());
        }
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.path.alloc_events(),
            self.path.capacity_bytes()
                + (self.boundary.capacity() * std::mem::size_of::<(VertexId, ArcId)>()
                    + self.sources.capacity() * std::mem::size_of::<VertexId>())
                    as u64,
        )
    }
}

/// The contracted digraph `D′ = D/E(T)` in reusable out-CSR form: outside
/// vertices keep their relative order, the super-vertex `r_T` is appended
/// last, arcs inside `V(T)` are dropped, and every surviving arc remembers
/// its original id — the same semantics as
/// [`steiner_graph::contraction::contract_vertex_set`], without the per-node
/// allocations.
#[derive(Default)]
struct ContractionScratch {
    vertex_map: Vec<VertexId>,
    /// `(tail, head)` per contracted arc (dense contracted ids).
    arcs: Vec<(VertexId, VertexId)>,
    /// Original arc behind each contracted arc.
    orig_arc: Vec<ArcId>,
    out_off: Vec<u32>,
    out_adj: Vec<(VertexId, ArcId)>,
    super_vertex: VertexId,
    cn: usize,
    allocs: u64,
}

impl ContractionScratch {
    fn preallocate(&mut self, n: usize, m: usize) {
        grow(&mut self.vertex_map, n, VertexId(0), &mut self.allocs);
        grow(
            &mut self.arcs,
            m,
            (VertexId(0), VertexId(0)),
            &mut self.allocs,
        );
        grow(&mut self.orig_arc, m, ArcId(0), &mut self.allocs);
        grow(&mut self.out_off, n + 2, 0u32, &mut self.allocs);
        grow(
            &mut self.out_adj,
            m,
            (VertexId(0), ArcId(0)),
            &mut self.allocs,
        );
        self.allocs = 0;
    }

    fn rebuild(&mut self, d: &CsrDigraph, in_set: &[bool]) {
        let n = d.num_vertices();
        grow(&mut self.vertex_map, n, VertexId(0), &mut self.allocs);
        let mut outside = 0usize;
        for (v, &inside) in in_set.iter().enumerate() {
            if !inside {
                self.vertex_map[v] = VertexId::new(outside);
                outside += 1;
            }
        }
        let super_vertex = VertexId::new(outside);
        for (v, &inside) in in_set.iter().enumerate() {
            if inside {
                self.vertex_map[v] = super_vertex;
            }
        }
        self.super_vertex = super_vertex;
        self.cn = outside + 1;
        self.arcs.clear();
        self.orig_arc.clear();
        for i in 0..d.num_arcs() {
            let a = ArcId::new(i);
            let (t, h) = d.arc(a);
            let (nt, nh) = (self.vertex_map[t.index()], self.vertex_map[h.index()]);
            if nt == nh {
                continue;
            }
            if self.arcs.len() == self.arcs.capacity() {
                self.allocs += 1;
            }
            self.arcs.push((nt, nh));
            if self.orig_arc.len() == self.orig_arc.capacity() {
                self.allocs += 1;
            }
            self.orig_arc.push(a);
        }
        // Counting sort into the out-CSR (arc-id order per vertex).
        let cn = self.cn;
        grow(&mut self.out_off, cn + 1, 0u32, &mut self.allocs);
        for &(t, _) in &self.arcs {
            self.out_off[t.index() + 1] += 1;
        }
        for i in 0..cn {
            self.out_off[i + 1] += self.out_off[i];
        }
        grow(
            &mut self.out_adj,
            self.arcs.len(),
            (VertexId(0), ArcId(0)),
            &mut self.allocs,
        );
        for (i, &(t, h)) in self.arcs.iter().enumerate() {
            self.out_adj[self.out_off[t.index()] as usize] = (h, ArcId::new(i));
            self.out_off[t.index()] += 1;
        }
        for v in (1..=cn).rev() {
            self.out_off[v] = self.out_off[v - 1];
        }
        self.out_off[0] = 0;
    }

    #[inline]
    fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        &self.out_adj[self.out_off[v.index()] as usize..self.out_off[v.index() + 1] as usize]
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs,
            (self.vertex_map.capacity() * std::mem::size_of::<VertexId>()
                + self.arcs.capacity() * std::mem::size_of::<(VertexId, VertexId)>()
                + self.orig_arc.capacity() * std::mem::size_of::<ArcId>()
                + self.out_off.capacity() * std::mem::size_of::<u32>()
                + self.out_adj.capacity() * std::mem::size_of::<(VertexId, ArcId)>())
                as u64,
        )
    }
}

/// Reusable buffers for the Lemma-35 analysis.
#[derive(Default)]
struct AnalyzeScratch {
    // DFS tree of D′ from r_T with postorder.
    visited: Vec<bool>,
    parent: Vec<u32>,
    parent_arc: Vec<u32>,
    postorder: Vec<u32>,
    dfs_stack: Vec<(VertexId, u32)>,
    // T* marking.
    in_tstar_vertex: Vec<bool>,
    in_tstar_arc: Vec<bool>,
    term_rep: Vec<u32>,
    tstar_vertices: Vec<VertexId>,
    /// Contracted arc ids of `E(T*)`; translated via `orig_arc` at a
    /// unique leaf.
    tstar_arcs: Vec<ArcId>,
    // Descending-postorder sweep.
    deleted: Vec<bool>,
    round: Vec<VertexId>,
    round_stamp: Vec<u32>,
    round_epoch: u32,
    allocs: u64,
}

impl AnalyzeScratch {
    fn preallocate(&mut self, n: usize, m: usize) {
        grow(&mut self.visited, n + 1, false, &mut self.allocs);
        grow(&mut self.parent, n + 1, 0u32, &mut self.allocs);
        grow(&mut self.parent_arc, n + 1, 0u32, &mut self.allocs);
        grow(&mut self.postorder, n + 1, 0u32, &mut self.allocs);
        grow(
            &mut self.dfs_stack,
            n + 1,
            (VertexId(0), 0u32),
            &mut self.allocs,
        );
        grow(&mut self.in_tstar_vertex, n + 1, false, &mut self.allocs);
        grow(&mut self.in_tstar_arc, m, false, &mut self.allocs);
        grow(&mut self.term_rep, n + 1, 0u32, &mut self.allocs);
        grow(
            &mut self.tstar_vertices,
            n + 1,
            VertexId(0),
            &mut self.allocs,
        );
        grow(&mut self.tstar_arcs, n + 1, ArcId(0), &mut self.allocs);
        grow(&mut self.deleted, n + 1, false, &mut self.allocs);
        grow(&mut self.round, n + 1, VertexId(0), &mut self.allocs);
        grow(&mut self.round_stamp, n + 1, 0u32, &mut self.allocs);
        self.allocs = 0;
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs,
            ((self.visited.capacity()
                + self.in_tstar_vertex.capacity()
                + self.in_tstar_arc.capacity()
                + self.deleted.capacity())
                * std::mem::size_of::<bool>()
                + (self.parent.capacity()
                    + self.parent_arc.capacity()
                    + self.postorder.capacity()
                    + self.term_rep.capacity()
                    + self.round_stamp.capacity())
                    * std::mem::size_of::<u32>()
                + self.dfs_stack.capacity() * std::mem::size_of::<(VertexId, u32)>()
                + (self.tstar_vertices.capacity() + self.round.capacity())
                    * std::mem::size_of::<VertexId>()
                + self.tstar_arcs.capacity() * std::mem::size_of::<ArcId>()) as u64,
        )
    }
}

impl DirectedSearch {
    fn usage(&self) -> ScratchUsage {
        let pool: ScratchUsage = self.pool.iter().map(|b| b.usage()).sum();
        ScratchUsage::new(
            self.csr.alloc_events() + self.span.alloc_events(),
            self.csr.capacity_bytes() + self.span.capacity_bytes(),
        ) + self.frames.usage()
            + self.con.usage()
            + self.ana.usage()
            + pool
            + ScratchUsage::new(self.extra_allocs, 0)
    }
}

impl<'g> DirectedSteinerTree<'g> {
    /// A problem instance borrowing the digraph.
    pub fn new(d: &'g DiGraph, root: VertexId, terminals: &[VertexId]) -> Self {
        DirectedSteinerTree {
            d: Cow::Borrowed(d),
            root,
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// A problem instance owning the digraph.
    pub fn from_graph(
        d: DiGraph,
        root: VertexId,
        terminals: &[VertexId],
    ) -> DirectedSteinerTree<'static> {
        DirectedSteinerTree {
            d: Cow::Owned(d),
            root,
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// Clones the borrowed digraph (if any) so the instance becomes
    /// `'static` for the iterator front-end.
    pub fn into_owned(self) -> DirectedSteinerTree<'static> {
        DirectedSteinerTree {
            d: Cow::Owned(self.d.into_owned()),
            root: self.root,
            terminals: self.terminals,
            stats: self.stats,
            search: self.search,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        }
    }
}

/// Outcome of the per-node Lemma 35 analysis in the contracted graph.
enum NodeAnalysis {
    /// A terminal with ≥ 2 valid paths to branch on.
    Branch(VertexId),
    /// The unique completion: `E(T*)` was left in `scratch.tstar_arcs`
    /// (contracted ids, translated by the caller).
    Unique,
}

/// Lemma 35 analysis of the contracted instance, allocation-free over the
/// reusable `scratch`.
fn analyze(
    c: &ContractionScratch,
    terminals: &[VertexId],
    in_tree: &[bool],
    s: &mut AnalyzeScratch,
    work: &mut u64,
) -> NodeAnalysis {
    let cn = c.cn;
    let cm = c.arcs.len();
    *work += (cn + cm) as u64;
    const NONE: u32 = u32::MAX;
    // Iterative DFS from r_T with postorder (arcs in adjacency order).
    grow(&mut s.visited, cn, false, &mut s.allocs);
    grow(&mut s.parent, cn, NONE, &mut s.allocs);
    grow(&mut s.parent_arc, cn, NONE, &mut s.allocs);
    grow(&mut s.postorder, cn, NONE, &mut s.allocs);
    s.dfs_stack.clear();
    s.dfs_stack.push((c.super_vertex, 0));
    s.visited[c.super_vertex.index()] = true;
    let mut post_counter = 0u32;
    while let Some(&mut (u, ref mut next)) = s.dfs_stack.last_mut() {
        let out = c.out_adjacency(u).get(*next as usize).copied();
        match out {
            Some((v, a)) => {
                *next += 1;
                if !s.visited[v.index()] {
                    s.visited[v.index()] = true;
                    s.parent[v.index()] = u.0;
                    s.parent_arc[v.index()] = a.0;
                    s.dfs_stack.push((v, 0));
                }
            }
            None => {
                s.postorder[u.index()] = post_counter;
                post_counter += 1;
                s.dfs_stack.pop();
            }
        }
    }
    // T*: prune the DFS tree to the missing terminals. While marking,
    // remember for every T* vertex a terminal in its subtree.
    grow(&mut s.in_tstar_vertex, cn, false, &mut s.allocs);
    grow(&mut s.in_tstar_arc, cm, false, &mut s.allocs);
    grow(&mut s.term_rep, cn, NONE, &mut s.allocs);
    s.tstar_vertices.clear();
    s.tstar_arcs.clear();
    for &w in terminals {
        if in_tree[w.index()] {
            continue;
        }
        let mut cur = c.vertex_map[w.index()];
        while !s.in_tstar_vertex[cur.index()] {
            *work += 1;
            s.in_tstar_vertex[cur.index()] = true;
            s.term_rep[cur.index()] = w.0;
            s.tstar_vertices.push(cur);
            if cur == c.super_vertex {
                break;
            }
            let pa = s.parent_arc[cur.index()];
            debug_assert_ne!(pa, NONE, "terminals are reachable from the root");
            s.in_tstar_arc[pa as usize] = true;
            s.tstar_arcs.push(ArcId(pa));
            cur = VertexId(s.parent[cur.index()]);
        }
    }
    // Descending-postorder sweep over V(T*).
    let postorder = &s.postorder;
    s.tstar_vertices
        .sort_unstable_by_key(|v| std::cmp::Reverse(postorder[v.index()]));
    grow(&mut s.deleted, cn, false, &mut s.allocs);
    grow(&mut s.round_stamp, cn, 0u32, &mut s.allocs);
    s.round_epoch = 0;
    for ti in 0..s.tstar_vertices.len() {
        let v = s.tstar_vertices[ti];
        if s.deleted[v.index()] {
            continue;
        }
        s.round.clear();
        s.round.push(v);
        let mut head = 0;
        let mut witness: Option<VertexId> = None;
        s.round_epoch += 1;
        let ep = s.round_epoch;
        s.round_stamp[v.index()] = ep;
        'bfs: while head < s.round.len() {
            let x = s.round[head];
            head += 1;
            for &(y, a) in c.out_adjacency(x) {
                *work += 1;
                if s.in_tstar_arc[a.index()]
                    || s.deleted[y.index()]
                    || s.round_stamp[y.index()] == ep
                {
                    continue;
                }
                if s.in_tstar_vertex[y.index()] {
                    witness = Some(y);
                    break 'bfs;
                }
                s.round_stamp[y.index()] = ep;
                s.round.push(y);
            }
        }
        if let Some(u) = witness {
            let w = s.term_rep[u.index()];
            debug_assert_ne!(w, NONE, "every T* vertex has a terminal below");
            return NodeAnalysis::Branch(VertexId(w));
        }
        for &x in &s.round {
            s.deleted[x.index()] = true;
        }
    }
    NodeAnalysis::Unique
}

impl MinimalSteinerProblem for DirectedSteinerTree<'_> {
    type Item = ArcId;
    type Branch = VertexId;

    const NAME: &'static str = "minimal directed Steiner tree";

    fn split_root(&self, _shard: crate::problem::RootShard) -> Option<Self> {
        Some(DirectedSteinerTree {
            d: self.d.clone(),
            root: self.root,
            terminals: self.terminals.clone(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        })
    }

    fn set_level_cache_cap(&mut self, cap: usize) {
        self.level_cache_cap = Some(cap.max(1));
    }

    fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    fn set_packed_frontiers(&mut self, on: bool) {
        self.packed = on;
    }

    fn cache_key(&self) -> Option<crate::cache::CacheKey> {
        // `prepare` sorts the terminals: fingerprint the sorted form (see
        // `SteinerTree::cache_key`). The root is part of the query — the
        // same digraph and terminals with a different root is a
        // different stream.
        let mut sorted = self.terminals.clone();
        sorted.sort_unstable();
        let mut query = crate::cache::fingerprint_terminals(&sorted);
        query ^= (self.root.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Out-arborescences from the root stay inside the weak
        // components of root ∪ terminals, so those regions are the key.
        let regions = steiner_graph::RegionMap::of_digraph(&self.d)
            .signature_of(sorted.iter().copied().chain(std::iter::once(self.root)));
        Some(crate::cache::CacheKey {
            kind: Self::NAME,
            regions,
            query_fingerprint: query,
        })
    }

    fn validate(&self) -> Result<(), SteinerError> {
        let n = self.d.num_vertices();
        if self.root.index() >= n {
            return Err(SteinerError::RootOutOfRange {
                root: self.root,
                num_vertices: n,
            });
        }
        crate::problem::validate_terminal_list(&self.terminals, n)
    }

    fn prepare(&mut self) -> Result<Prepared<ArcId>, SteinerError> {
        self.validate()?;
        let d = &*self.d;
        let mut terminals: Vec<VertexId> = self
            .terminals
            .iter()
            .copied()
            .filter(|&w| w != self.root)
            .collect();
        terminals.sort_unstable();
        self.stats.preprocessing_work = (d.num_vertices() + d.num_arcs()) as u64;
        let reach = reachable_from(d, self.root, None);
        if let Some(&w) = terminals.iter().find(|w| !reach[w.index()]) {
            return Err(SteinerError::UnreachableTerminal(w));
        }
        if terminals.is_empty() {
            // The empty tree {root} is the unique solution.
            return Ok(Prepared::Single(Vec::new()));
        }
        let n = d.num_vertices();
        let mut is_terminal = vec![false; n];
        for &w in &terminals {
            is_terminal[w.index()] = true;
        }
        let mut in_tree = vec![false; n];
        in_tree[self.root.index()] = true;
        let missing = terminals.len();
        let m = d.num_arcs();
        // Build the flat CSR once and size every scratch buffer now, so
        // the search never allocates (asserted via `scratch_allocs`).
        let csr = Arc::new(CsrDigraph::from_digraph(d));
        // The forced-arc skeleton: arcs whose head has in-degree 1 lie on
        // every path to that head, so reach along them certifies unique
        // valid paths (see the `span` field docs). Built once; the root
        // is attached here.
        let mut span = DynamicSpanning::new();
        span.preallocate(n, m);
        span.begin_skeleton(n);
        for i in 0..m {
            let a = ArcId::new(i);
            let (t, h) = csr.arc(a);
            if csr.in_adjacency(h).len() == 1 {
                // Reversed: forced queries walk backward from a terminal
                // along unique in-arcs toward the partial tree.
                span.add_arc(h, t, i as u32);
            }
        }
        span.finish_skeleton();
        let mut frames = FrameLog::new();
        frames.preallocate(terminals.len() + 2);
        let mut con = ContractionScratch::default();
        con.preallocate(n, m);
        let mut ana = AnalyzeScratch::default();
        ana.preallocate(n, m);
        let level_cache_cap = self
            .level_cache_cap
            .unwrap_or(steiner_paths::enumerate::DEFAULT_LEVEL_CACHE_CAP);
        let mut pool = Vec::with_capacity(terminals.len() + 1);
        for _ in 0..terminals.len() + 1 {
            let mut bs = DirBranchScratch::default();
            bs.preallocate(n, m, level_cache_cap);
            pool.push(bs);
        }
        let mut tree_vertices = Vec::with_capacity(n + 1);
        tree_vertices.push(self.root);
        let mut search = DirectedSearch {
            terminals,
            is_terminal,
            in_tree,
            tree_vertices,
            tree_arcs: Vec::with_capacity(n + 1),
            missing,
            csr,
            con,
            ana,
            span,
            frames,
            pool,
            depth: 0,
            level_cache_cap,
            extra_allocs: 0,
            baseline_allocs: 0,
        };
        search.baseline_allocs = search.usage().allocs;
        self.search = Some(search);
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.d.num_vertices(), self.d.num_arcs())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self, out: &mut Vec<ArcId>) -> NodeStep<VertexId> {
        let incremental = self.incremental;
        let stats = &mut self.stats;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        if search.missing == 0 {
            return NodeStep::Complete;
        }
        if incremental {
            // Incremental fast path: a missing terminal reached over the
            // unique-in-arc skeleton has exactly one valid path (every
            // path to it must end with the forced chain from its first
            // V(T) vertex), so an all-reached node has a unique
            // completion — T plus the recorded chains — and no Lemma-35
            // sweep or contraction runs. Reach here is sufficient, not
            // necessary: an unreached node falls back to the exact
            // analysis, which may still conclude Unique.
            stats.work += search.terminals.len() as u64;
            let span = &mut search.span;
            let in_tree = &search.in_tree;
            let terminals = &search.terminals;
            out.extend_from_slice(&search.tree_arcs);
            let all_forced = span.collect_all_forced(
                terminals,
                |v| in_tree[v.index()],
                |a| out.push(ArcId::new(a as usize)),
            );
            if all_forced {
                stats.classify_incremental += 1;
                stats.work += out.len() as u64;
                #[cfg(debug_assertions)]
                {
                    // Cross-check against the fresh contraction +
                    // Lemma-35 analysis: it must also conclude Unique,
                    // with the same arc set.
                    let mut dummy = 0u64;
                    search.con.rebuild(&search.csr, &search.in_tree);
                    let verdict = analyze(
                        &search.con,
                        &search.terminals,
                        &search.in_tree,
                        &mut search.ana,
                        &mut dummy,
                    );
                    debug_assert!(
                        matches!(verdict, NodeAnalysis::Unique),
                        "incremental Unique verdict disagrees with the Lemma-35 sweep"
                    );
                    let mut got = out.clone();
                    got.sort_unstable();
                    let mut want: Vec<ArcId> = search
                        .tree_arcs
                        .iter()
                        .copied()
                        .chain(
                            search
                                .ana
                                .tstar_arcs
                                .iter()
                                .map(|a| search.con.orig_arc[a.index()]),
                        )
                        .collect();
                    want.sort_unstable();
                    debug_assert_eq!(
                        got, want,
                        "incremental unique completion differs from T + T*"
                    );
                }
                return NodeStep::Unique;
            }
            out.clear();
            stats.classify_rebuilds += 1;
        } else {
            stats.classify_rebuilds += 1;
        }
        search.con.rebuild(&search.csr, &search.in_tree);
        stats.work += (search.csr.num_vertices() + search.csr.num_arcs()) as u64;
        match analyze(
            &search.con,
            &search.terminals,
            &search.in_tree,
            &mut search.ana,
            &mut stats.work,
        ) {
            NodeAnalysis::Branch(w) => NodeStep::Branch(w),
            NodeAnalysis::Unique => {
                out.extend_from_slice(&search.tree_arcs);
                out.extend(
                    search
                        .ana
                        .tstar_arcs
                        .iter()
                        .map(|a| search.con.orig_arc[a.index()]),
                );
                NodeStep::Unique
            }
        }
    }

    fn solution(&self, out: &mut Vec<ArcId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        out.extend_from_slice(&search.tree_arcs);
    }

    fn seal_stats(&mut self) {
        if let Some(search) = &self.search {
            let usage = search.usage();
            self.stats.note_scratch(ScratchUsage::new(
                usage.allocs - search.baseline_allocs,
                usage.bytes,
            ));
            self.stats.note_connectivity(search.span.repair_stats());
        }
    }

    fn record_subtree(&self) -> Option<SubtreeRecord<ArcId>> {
        let search = self.search.as_ref()?;
        Some(SubtreeRecord {
            vertices: search.tree_vertices.clone(),
            items: search.tree_arcs.clone(),
            meta: 0,
        })
    }

    fn replay_subtree(
        &mut self,
        record: &SubtreeRecord<ArcId>,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.stats.work += (self.d.num_vertices() + self.d.num_arcs()) as u64;
        self.descend(&record.vertices, &record.items);
        let flow = child(self);
        self.retract_frame();
        flow
    }

    fn branch(
        &mut self,
        w: VertexId,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.d.num_vertices() + self.d.num_arcs()) as u64;
        self.stats.work += per_child;
        // Take this depth's scratch so the enumeration can borrow it while
        // the sink mutates `self`; snapshot V(T) as the source set.
        let (mut bs, csr, depth) = {
            let search = self
                .search
                .as_mut()
                .expect("prepare() runs before the search");
            let depth = search.depth;
            if search.pool.len() <= depth {
                search.extra_allocs += 1;
                let mut fresh = DirBranchScratch::default();
                fresh.preallocate(
                    search.csr.num_vertices(),
                    search.csr.num_arcs(),
                    search.level_cache_cap,
                );
                search.pool.push(fresh);
            }
            search.depth = depth + 1;
            let mut bs = std::mem::take(&mut search.pool[depth]);
            bs.sources.clear();
            bs.sources.extend_from_slice(&search.tree_vertices);
            // Same prepared CSR on every branch of this search: keep
            // the packed per-level BFS caches across branch nodes.
            bs.path.begin_same_graph(search.csr.num_vertices() + 1);
            (bs, Arc::clone(&search.csr), depth)
        };
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let DirBranchScratch {
            path,
            boundary,
            sources,
        } = &mut bs;
        let pstats = enumerate_source_set_paths_csr(
            &csr,
            sources,
            w,
            EnumerateOptions {
                packed_frontiers: self.packed,
                ..EnumerateOptions::default()
            },
            path,
            boundary,
            &mut |p| {
                children += 1;
                self.stats.work += per_child;
                self.descend(p.vertices, p.arcs);
                let f = child(self);
                self.retract_frame();
                if f.is_break() {
                    flow = ControlFlow::Break(());
                }
                f
            },
        );
        self.stats.path_gen_work += pstats.work;
        self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
        self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
        let search = self.search.as_mut().expect("search state");
        search.pool[depth] = bs;
        search.depth = depth;
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 35 witness guarantees two valid paths"
        );
        (children, flow)
    }
}

impl DirectedSteinerTree<'_> {
    /// The descend half of the branch protocol: extends the directed
    /// partial tree by one valid path (`path_vertices[0]` is already in
    /// `V(T)`), attaches the new vertices to the forced-arc skeleton, and
    /// pushes the combined typed frame. Shared by locally generated and
    /// replayed root children.
    fn descend(&mut self, path_vertices: &[VertexId], path_arcs: &[ArcId]) {
        let search = self.search.as_mut().expect("search state");
        let frame = DirFrame {
            added: path_vertices.len() - 1,
            arc_base: search.tree_arcs.len(),
            span: search.span.mark(),
        };
        for &v in &path_vertices[1..] {
            debug_assert!(!search.in_tree[v.index()]);
            search.in_tree[v.index()] = true;
            search.tree_vertices.push(v);
            if search.is_terminal[v.index()] {
                search.missing -= 1;
            }
        }
        search.tree_arcs.extend_from_slice(path_arcs);
        search.frames.push(frame);
    }

    /// The undo half: pops the innermost frame and restores every layer.
    fn retract_frame(&mut self) {
        let search = self.search.as_mut().expect("search state");
        let frame = search.frames.pop();
        search.span.undo_to(frame.span);
        search.tree_arcs.truncate(frame.arc_base);
        for _ in 0..frame.added {
            let v = search.tree_vertices.pop().expect("tree vertex stack");
            search.in_tree[v.index()] = false;
            if search.is_terminal[v.index()] {
                search.missing += 1;
            }
        }
    }
}

/// Enumerates all minimal directed Steiner trees of `(d, terminals, root)`
/// through an arbitrary [`SolutionSink`].
///
/// The root is dropped from `terminals` if present (it is trivially
/// reached). With no (other) terminals the single empty tree is emitted.
/// If some terminal is unreachable from the root there are no solutions.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `solver::run_with_sink(&mut DirectedSteinerTree::new(d, root, terminals), emitter)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals))` with a custom sink"
)]
pub fn enumerate_minimal_directed_steiner_trees_with(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<ArcId>,
) -> EnumStats {
    let mut terminals = terminals.to_vec();
    terminals.sort_unstable();
    terminals.dedup();
    // The historical contract panicked on an out-of-range root (indexing
    // inside the reachability sweep) even with no terminals; keep that on
    // the early-return path too.
    assert!(
        root.index() < d.num_vertices(),
        "root {root} out of range (digraph has {} vertices)",
        d.num_vertices()
    );
    if terminals.is_empty() || terminals == [root] {
        // Historical lenient contract: the empty tree is the unique
        // solution when no terminal besides the root is requested.
        let mut stats = EnumStats::default();
        stats.preprocessing_work = (d.num_vertices() + d.num_arcs()) as u64;
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    let mut problem = DirectedSteinerTree::new(d, root, &terminals);
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal directed Steiner trees with amortized O(n + m)
/// time per solution (Theorem 36), emitting directly.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).for_each(sink)`"
)]
pub fn enumerate_minimal_directed_steiner_trees(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    #[allow(deprecated)]
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay with O(n²) space (Theorem 36).
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).with_queue(config).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(DirectedSteinerTree::new(d, root, terminals)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_directed_steiner_trees_queued(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(d.num_vertices(), d.num_arcs()));
    let mut queue = OutputQueue::new(config, sink);
    #[allow(deprecated)]
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;
    use std::collections::BTreeSet;

    fn collect(d: &DiGraph, r: VertexId, w: &[VertexId]) -> BTreeSet<Vec<ArcId>> {
        let mut out = BTreeSet::new();
        Enumeration::new(DirectedSteinerTree::new(d, r, w))
            .for_each(|arcs| {
                assert!(out.insert(arcs.to_vec()), "duplicate solution {arcs:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        out
    }

    #[test]
    fn diamond_two_trees() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(
            got,
            brute::minimal_directed_steiner_trees(&d, VertexId(0), &[VertexId(3)])
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn chain_unique_tree() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn branching_terminals_share_prefixes() {
        // Root 0 -> {1, 2}; 1 -> 3, 2 -> 3; terminals {1, 3}.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = [VertexId(1), VertexId(3)];
        let got = collect(&d, VertexId(0), &w);
        assert_eq!(
            got,
            brute::minimal_directed_steiner_trees(&d, VertexId(0), &w)
        );
    }

    #[test]
    fn unreachable_terminal_is_an_error() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
        let err = Enumeration::new(DirectedSteinerTree::new(&d, VertexId(0), &[VertexId(2)]))
            .run()
            .unwrap_err();
        assert_eq!(err, SteinerError::UnreachableTerminal(VertexId(2)));
    }

    #[test]
    fn no_terminals_gives_empty_tree_via_shim() {
        #![allow(deprecated)]
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let mut got = BTreeSet::new();
        enumerate_minimal_directed_steiner_trees(&d, VertexId(0), &[], &mut |arcs| {
            got.insert(arcs.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn root_in_terminals_is_dropped() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(0), VertexId(1)]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_dags() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1a6);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
            let (d, root) = steiner_graph::generators::random_rooted_dag(n, m, &mut rng);
            if d.num_arcs() > brute::MAX_BRUTE_EDGES {
                continue;
            }
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            assert_eq!(
                collect(&d, root, &w),
                brute::minimal_directed_steiner_trees(&d, root, &w),
                "digraph {d:?} root {root} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_digraphs_with_cycles() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc1c1e);
        for case in 0..60 {
            let n = 3 + case % 4;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1));
            let d = steiner_graph::generators::random_digraph(n, m.min(20), &mut rng);
            let root = VertexId(0);
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            let mut got = BTreeSet::new();
            let run = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).for_each(|arcs| {
                assert!(got.insert(arcs.to_vec()), "duplicate solution {arcs:?}");
                ControlFlow::Continue(())
            });
            let oracle = brute::minimal_directed_steiner_trees(&d, root, &w);
            match run {
                Ok(_) => {}
                // Random digraphs can leave a terminal unreachable: the
                // strict API reports it, the oracle has no solutions.
                Err(SteinerError::UnreachableTerminal(_)) => assert!(oracle.is_empty()),
                Err(e) => panic!("unexpected error {e} on digraph {d:?}"),
            }
            assert_eq!(got, oracle, "digraph {d:?} root {root} terminals {w:?}");
        }
    }

    #[test]
    fn search_does_not_allocate_after_prepare() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 3);
        let w = [VertexId(7), VertexId(8), VertexId(9)];
        let (run, stats) = Enumeration::new(DirectedSteinerTree::new(&d, root, &w)).with_stats();
        run.run().unwrap();
        let stats = stats.get();
        assert!(stats.solutions > 0);
        assert_eq!(
            stats.scratch_allocs, 0,
            "the search must not allocate after prepare()"
        );
        assert!(stats.peak_scratch_bytes > 0, "scratch accounting is live");
    }

    #[test]
    fn outputs_verify_minimal() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let mut count = 0;
        Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .for_each(|arcs| {
                count += 1;
                assert!(crate::verify::is_minimal_directed_steiner_subgraph(
                    &d, root, &w, arcs
                ));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(count > 1);
    }

    #[test]
    fn queued_matches_direct() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let direct = collect(&d, root, &w);
        let mut queued = BTreeSet::new();
        Enumeration::new(DirectedSteinerTree::new(&d, root, &w))
            .with_default_queue()
            .for_each(|arcs| {
                assert!(queued.insert(arcs.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn iterator_front_end_matches_direct() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let direct = collect(&d, root, &w);
        let iterated: BTreeSet<Vec<ArcId>> =
            Enumeration::new(DirectedSteinerTree::from_graph(d, root, &w))
                .into_iter()
                .unwrap()
                .collect();
        assert_eq!(direct, iterated);
    }
}
