//! Minimal directed Steiner tree enumeration (§5.2, Theorems 34 & 36).
//!
//! A partial solution is a directed tree `T` rooted at `r` whose leaves are
//! all terminals; children attach one directed `V(T)`-`w` path (Lemma 33
//! guarantees extendibility). The improved node rule works in the
//! contracted multigraph `D′ = D/E(T)` with super-vertex `r_T`:
//!
//! 1. build a DFS tree `T′` of `D′` from `r_T` and its postorder `≺`;
//! 2. prune `T′` to the minimal directed Steiner tree `T*` spanning the
//!    missing terminals;
//! 3. **Lemma 35**: another minimal directed Steiner tree exists iff some
//!    `v, u ∈ V(T*)` with `u ≺ v` admit a directed `v`-`u` path in
//!    `D′ − E(T*)`. The paper's descending-postorder sweep finds such a
//!    pair (or rules it out) in O(n + m): BFS from the largest remaining
//!    vertex, stop on hitting an undeleted `T*` vertex, otherwise delete
//!    everything reached and continue.
//! 4. On a witness `(v, u)`: any terminal below `u` in `T*` has ≥ 2 valid
//!    paths — branch on it. Otherwise `T + T*` is the unique completion:
//!    emit it as a leaf.

use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::connectivity::reachable_from;
use steiner_graph::contraction::{contract_vertex_set, ContractedDigraph};
use steiner_graph::traversal::di_dfs_postorder;
use steiner_graph::{ArcId, DiGraph, VertexId};
use steiner_paths::stsets::DiSourceSetInstance;

struct DirectedEnumerator<'g, 'a> {
    d: &'g DiGraph,
    terminals: Vec<VertexId>,
    is_terminal: Vec<bool>,
    in_tree: Vec<bool>,
    tree_vertices: Vec<VertexId>,
    tree_arcs: Vec<ArcId>,
    missing: usize,
    stats: EnumStats,
    scratch: Vec<ArcId>,
    emitter: &'a mut dyn SolutionSink<ArcId>,
}

/// Outcome of the per-node analysis in the contracted graph.
enum NodeAnalysis {
    /// A terminal with ≥ 2 valid paths to branch on.
    Branch(VertexId),
    /// The unique completion's arcs (original ids), to append to `E(T)`.
    Unique(Vec<ArcId>),
}

impl DirectedEnumerator<'_, '_> {
    fn emit(&mut self, arcs: &[ArcId]) -> ControlFlow<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(arcs);
        scratch.sort_unstable();
        self.stats.note_emission();
        let flow = self.emitter.solution(&scratch, self.stats.work);
        self.scratch = scratch;
        flow
    }

    /// Lemma 35 analysis of the contracted instance.
    fn analyze(&mut self, c: &ContractedDigraph) -> NodeAnalysis {
        let cn = c.graph.num_vertices();
        let cm = c.graph.num_arcs();
        self.stats.work += (cn + cm) as u64;
        let dfs = di_dfs_postorder(&c.graph, c.super_vertex, None);
        // T*: prune the DFS tree to the missing terminals. While marking,
        // remember for every T* vertex a terminal in its subtree.
        let mut in_tstar_vertex = vec![false; cn];
        let mut in_tstar_arc = vec![false; cm];
        let mut term_rep: Vec<Option<VertexId>> = vec![None; cn];
        let mut tstar_vertices: Vec<VertexId> = Vec::new();
        let mut tstar_arcs: Vec<ArcId> = Vec::new();
        for &w in &self.terminals {
            if self.in_tree[w.index()] {
                continue;
            }
            let mut cur = c.vertex_map[w.index()];
            while !in_tstar_vertex[cur.index()] {
                self.stats.work += 1;
                in_tstar_vertex[cur.index()] = true;
                term_rep[cur.index()] = Some(w);
                tstar_vertices.push(cur);
                if cur == c.super_vertex {
                    break;
                }
                let pa = dfs.parent_arc[cur.index()]
                    .expect("terminals are reachable from the root (preprocessing)");
                in_tstar_arc[pa.index()] = true;
                tstar_arcs.push(pa);
                cur = dfs.parent[cur.index()].expect("non-root has a parent");
            }
        }
        // Descending-postorder sweep over V(T*).
        tstar_vertices.sort_unstable_by_key(|v| std::cmp::Reverse(dfs.postorder[v.index()]));
        let mut deleted = vec![false; cn];
        let mut round: Vec<VertexId> = Vec::new();
        for &v in &tstar_vertices {
            if deleted[v.index()] {
                continue;
            }
            round.clear();
            round.push(v);
            let mut head = 0;
            let mut witness: Option<VertexId> = None;
            let mut in_round = vec![false; cn];
            in_round[v.index()] = true;
            'bfs: while head < round.len() {
                let x = round[head];
                head += 1;
                for (y, a) in c.graph.out_neighbors(x) {
                    self.stats.work += 1;
                    if in_tstar_arc[a.index()] || deleted[y.index()] || in_round[y.index()] {
                        continue;
                    }
                    if in_tstar_vertex[y.index()] {
                        witness = Some(y);
                        break 'bfs;
                    }
                    in_round[y.index()] = true;
                    round.push(y);
                }
            }
            if let Some(u) = witness {
                let w = term_rep[u.index()].expect("every T* vertex has a terminal below");
                return NodeAnalysis::Branch(w);
            }
            for &x in &round {
                deleted[x.index()] = true;
            }
        }
        NodeAnalysis::Unique(tstar_arcs.iter().map(|a| c.orig_arc[a.index()]).collect())
    }

    fn recurse(&mut self, depth: u32) -> ControlFlow<()> {
        self.emitter.tick(self.stats.work)?;
        if self.missing == 0 {
            self.stats.note_node(0, depth);
            let arcs = self.tree_arcs.clone();
            return self.emit(&arcs);
        }
        let c = contract_vertex_set(self.d, &self.in_tree);
        self.stats.work += (self.d.num_vertices() + self.d.num_arcs()) as u64;
        match self.analyze(&c) {
            NodeAnalysis::Unique(extra) => {
                self.stats.note_node(0, depth);
                let mut arcs = self.tree_arcs.clone();
                arcs.extend_from_slice(&extra);
                self.emit(&arcs)
            }
            NodeAnalysis::Branch(w) => {
                let inst = DiSourceSetInstance::new(self.d, &self.in_tree, None);
                self.stats.work += (self.d.num_vertices() + self.d.num_arcs()) as u64;
                let mut children = 0u64;
                let mut flow = ControlFlow::Continue(());
                let per_child = (self.d.num_vertices() + self.d.num_arcs()) as u64;
                let _pstats = inst.enumerate(w, &mut |p| {
                    children += 1;
                    self.stats.work += per_child;
                    let verts = p.vertices.to_vec();
                    let arcs = p.arcs.to_vec();
                    // Extend T.
                    for &v in &verts[1..] {
                        debug_assert!(!self.in_tree[v.index()]);
                        self.in_tree[v.index()] = true;
                        self.tree_vertices.push(v);
                        if self.is_terminal[v.index()] {
                            self.missing -= 1;
                        }
                    }
                    let arc_base = self.tree_arcs.len();
                    self.tree_arcs.extend_from_slice(&arcs);
                    let f = self.recurse(depth + 1);
                    // Retract.
                    self.tree_arcs.truncate(arc_base);
                    for &v in verts[1..].iter().rev() {
                        self.tree_vertices.pop();
                        self.in_tree[v.index()] = false;
                        if self.is_terminal[v.index()] {
                            self.missing += 1;
                        }
                    }
                    if f.is_break() {
                        flow = ControlFlow::Break(());
                    }
                    f
                });
                self.stats.note_node(children, depth);
                debug_assert!(
                    children >= 2 || flow.is_break(),
                    "Lemma 35 witness guarantees two valid paths"
                );
                flow
            }
        }
    }
}

/// Enumerates all minimal directed Steiner trees of `(d, terminals, root)`
/// through an arbitrary [`SolutionSink`].
///
/// The root is dropped from `terminals` if present (it is trivially
/// reached). With no (other) terminals the single empty tree is emitted.
/// If some terminal is unreachable from the root there are no solutions.
pub fn enumerate_minimal_directed_steiner_trees_with(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<ArcId>,
) -> EnumStats {
    let mut terminals: Vec<VertexId> =
        terminals.iter().copied().filter(|&w| w != root).collect();
    terminals.sort_unstable();
    terminals.dedup();
    let mut stats = EnumStats::default();
    stats.preprocessing_work = (d.num_vertices() + d.num_arcs()) as u64;
    let reach = reachable_from(d, root, None);
    if terminals.iter().any(|w| !reach[w.index()]) {
        return stats;
    }
    if terminals.is_empty() {
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    let n = d.num_vertices();
    let mut is_terminal = vec![false; n];
    for &w in &terminals {
        is_terminal[w.index()] = true;
    }
    let mut in_tree = vec![false; n];
    in_tree[root.index()] = true;
    let missing = terminals.len();
    let mut e = DirectedEnumerator {
        d,
        terminals,
        is_terminal,
        in_tree,
        tree_vertices: vec![root],
        tree_arcs: Vec::new(),
        missing,
        stats,
        scratch: Vec::new(),
        emitter,
    };
    let flow = e.recurse(0);
    if flow.is_continue() {
        let _ = e.emitter.finish();
    }
    e.stats.note_end();
    e.stats
}

/// Enumerates all minimal directed Steiner trees with amortized O(n + m)
/// time per solution (Theorem 36), emitting directly.
///
/// ```
/// use steiner_core::directed::enumerate_minimal_directed_steiner_trees;
/// use steiner_graph::{DiGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// // Diamond: two arc-disjoint ways from the root 0 to terminal 3.
/// let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let mut count = 0;
/// enumerate_minimal_directed_steiner_trees(&d, VertexId(0), &[VertexId(3)], &mut |arcs| {
///     assert_eq!(arcs.len(), 2);
///     count += 1;
///     ControlFlow::Continue(())
/// });
/// assert_eq!(count, 2);
/// ```
pub fn enumerate_minimal_directed_steiner_trees(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay with O(n²) space (Theorem 36).
pub fn enumerate_minimal_directed_steiner_trees_queued(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[ArcId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(d.num_vertices(), d.num_arcs()));
    let mut queue = OutputQueue::new(config, sink);
    enumerate_minimal_directed_steiner_trees_with(d, root, terminals, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn collect(d: &DiGraph, r: VertexId, w: &[VertexId]) -> BTreeSet<Vec<ArcId>> {
        let mut out = BTreeSet::new();
        enumerate_minimal_directed_steiner_trees(d, r, w, &mut |arcs| {
            assert!(out.insert(arcs.to_vec()), "duplicate solution {arcs:?}");
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn diamond_two_trees() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(got, brute::minimal_directed_steiner_trees(&d, VertexId(0), &[VertexId(3)]));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn chain_unique_tree() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(3)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap().len(), 3);
    }

    #[test]
    fn branching_terminals_share_prefixes() {
        // Root 0 -> {1, 2}; 1 -> 3, 2 -> 3; terminals {1, 3}.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = [VertexId(1), VertexId(3)];
        let got = collect(&d, VertexId(0), &w);
        assert_eq!(got, brute::minimal_directed_steiner_trees(&d, VertexId(0), &w));
    }

    #[test]
    fn unreachable_terminal_no_solutions() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (2, 1)]).unwrap();
        assert!(collect(&d, VertexId(0), &[VertexId(2)]).is_empty());
    }

    #[test]
    fn no_terminals_gives_empty_tree() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let got = collect(&d, VertexId(0), &[]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn root_in_terminals_is_dropped() {
        let d = DiGraph::from_arcs(2, &[(0, 1)]).unwrap();
        let got = collect(&d, VertexId(0), &[VertexId(0), VertexId(1)]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_dags() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1a6);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1) / 2);
            let (d, root) = steiner_graph::generators::random_rooted_dag(n, m, &mut rng);
            if d.num_arcs() > brute::MAX_BRUTE_EDGES {
                continue;
            }
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            assert_eq!(
                collect(&d, root, &w),
                brute::minimal_directed_steiner_trees(&d, root, &w),
                "digraph {d:?} root {root} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_digraphs_with_cycles() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc1c1e);
        for case in 0..60 {
            let n = 3 + case % 4;
            let m = (n + rng.gen_range(0..6)).min(n * (n - 1));
            let d = steiner_graph::generators::random_digraph(n, m.min(20), &mut rng);
            let root = VertexId(0);
            let t = 1 + rng.gen_range(0..3usize).min(n - 1);
            let mut w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            w.retain(|&v| v != root);
            if w.is_empty() {
                continue;
            }
            assert_eq!(
                collect(&d, root, &w),
                brute::minimal_directed_steiner_trees(&d, root, &w),
                "digraph {d:?} root {root} terminals {w:?}"
            );
        }
    }

    #[test]
    fn outputs_verify_minimal() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let mut count = 0;
        enumerate_minimal_directed_steiner_trees(&d, root, &w, &mut |arcs| {
            count += 1;
            assert!(crate::verify::is_minimal_directed_steiner_subgraph(&d, root, &w, arcs));
            ControlFlow::Continue(())
        });
        assert!(count > 1);
    }

    #[test]
    fn queued_matches_direct() {
        let (d, root) = steiner_graph::generators::layered_digraph(3, 2);
        let w = [VertexId(5), VertexId(6)];
        let direct = collect(&d, root, &w);
        let mut queued = BTreeSet::new();
        enumerate_minimal_directed_steiner_trees_queued(&d, root, &w, None, &mut |arcs| {
            assert!(queued.insert(arcs.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(direct, queued);
    }
}
