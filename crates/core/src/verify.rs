//! Validity and minimality checkers for every solution kind.
//!
//! These encode the paper's characterisations (Propositions 3, 26 and 32,
//! Lemma 21) and are used by unit tests, property tests, examples and the
//! benchmark harness to validate every emitted solution.

use std::collections::VecDeque;
use steiner_graph::{ArcId, DiGraph, EdgeId, UndirectedGraph, VertexId};

/// Whether `edges` forms a (possibly empty) tree: acyclic and connected on
/// its spanned vertices. The empty edge set counts as a tree.
pub fn is_tree(g: &UndirectedGraph, edges: &[EdgeId]) -> bool {
    if edges.is_empty() {
        return true;
    }
    let verts = g.edge_set_vertices(edges);
    // A connected graph with |V| - 1 edges is a tree; check connectivity by
    // BFS over the edge subset.
    if edges.len() + 1 != verts.len() {
        return false;
    }
    connected_in_edge_set(g, edges, &verts)
}

fn connected_in_edge_set(g: &UndirectedGraph, edges: &[EdgeId], verts: &[VertexId]) -> bool {
    if verts.is_empty() {
        return true;
    }
    let mut incident: std::collections::HashMap<VertexId, Vec<EdgeId>> =
        std::collections::HashMap::with_capacity(verts.len());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        incident.entry(u).or_default().push(e);
        incident.entry(v).or_default().push(e);
    }
    let mut seen: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(verts[0]);
    queue.push_back(verts[0]);
    while let Some(u) = queue.pop_front() {
        if let Some(inc) = incident.get(&u) {
            for &e in inc {
                let v = g.other_endpoint(e, u);
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
    }
    verts.iter().all(|v| seen.contains(v))
}

/// Degrees of the vertices spanned by `edges`, as (vertex, degree) pairs.
fn leaf_vertices(g: &UndirectedGraph, edges: &[EdgeId]) -> Vec<VertexId> {
    let deg = g.degrees_in_edge_set(edges);
    g.vertices().filter(|v| deg[v.index()] == 1).collect()
}

/// Whether `edges` is a Steiner tree of `(g, terminals)`: a tree containing
/// every terminal. Terminal sets of size ≤ 1 accept the empty tree.
pub fn is_steiner_tree(g: &UndirectedGraph, terminals: &[VertexId], edges: &[EdgeId]) -> bool {
    if !is_tree(g, edges) {
        return false;
    }
    if edges.is_empty() {
        return terminals.len() <= 1;
    }
    let verts = g.edge_set_vertices(edges);
    terminals.iter().all(|w| verts.binary_search(w).is_ok())
}

/// Proposition 3: a Steiner tree is minimal iff every leaf is a terminal.
pub fn is_minimal_steiner_tree(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    edges: &[EdgeId],
) -> bool {
    if !is_steiner_tree(g, terminals, edges) {
        return false;
    }
    let is_term = terminal_mask(g.num_vertices(), terminals);
    leaf_vertices(g, edges).iter().all(|v| is_term[v.index()])
}

/// Proposition 26: a minimal *terminal* Steiner tree is a tree in which
/// every terminal is a leaf and every leaf is a terminal.
pub fn is_minimal_terminal_steiner_tree(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    edges: &[EdgeId],
) -> bool {
    if terminals.len() < 2 || !is_steiner_tree(g, terminals, edges) || edges.is_empty() {
        return false;
    }
    let deg = g.degrees_in_edge_set(edges);
    if terminals.iter().any(|w| deg[w.index()] != 1) {
        return false;
    }
    let is_term = terminal_mask(g.num_vertices(), terminals);
    leaf_vertices(g, edges).iter().all(|v| is_term[v.index()])
}

/// Whether `edges` is a Steiner forest of `(g, sets)`: a forest in which
/// every pair of terminals within each set is connected.
pub fn is_steiner_forest(g: &UndirectedGraph, sets: &[Vec<VertexId>], edges: &[EdgeId]) -> bool {
    // Forest check: no cycles.
    let verts = g.edge_set_vertices(edges);
    let mut uf = steiner_graph::union_find::UnionFind::new(g.num_vertices());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        if !uf.union(u, v) {
            return false; // cycle
        }
    }
    let _ = verts;
    sets.iter()
        .all(|set| set.windows(2).all(|w| uf.same(w[0], w[1])))
}

/// Lemma 21: a Steiner forest is minimal iff deleting any edge disconnects
/// some required pair.
pub fn is_minimal_steiner_forest(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    edges: &[EdgeId],
) -> bool {
    if !is_steiner_forest(g, sets, edges) {
        return false;
    }
    for skip in 0..edges.len() {
        let rest: Vec<EdgeId> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &e)| e)
            .collect();
        if is_steiner_forest(g, sets, &rest) {
            return false;
        }
    }
    true
}

/// Whether `arcs` is a directed Steiner subgraph of `(d, terminals, root)`:
/// every terminal is reachable from the root through `arcs`.
pub fn is_directed_steiner_subgraph(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    arcs: &[ArcId],
) -> bool {
    let mut out: std::collections::HashMap<VertexId, Vec<VertexId>> =
        std::collections::HashMap::new();
    for &a in arcs {
        let (t, h) = d.arc(a);
        out.entry(t).or_default().push(h);
    }
    let mut seen: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        if let Some(heads) = out.get(&u) {
            for &h in heads {
                if seen.insert(h) {
                    queue.push_back(h);
                }
            }
        }
    }
    terminals.iter().all(|w| seen.contains(w))
}

/// Whether `arcs` is a *minimal* directed Steiner subgraph: deleting any
/// arc breaks some terminal's reachability. By Proposition 32 the minimal
/// subgraphs are exactly the directed Steiner trees whose leaves are all
/// terminals.
pub fn is_minimal_directed_steiner_subgraph(
    d: &DiGraph,
    root: VertexId,
    terminals: &[VertexId],
    arcs: &[ArcId],
) -> bool {
    if !is_directed_steiner_subgraph(d, root, terminals, arcs) {
        return false;
    }
    for skip in 0..arcs.len() {
        let rest: Vec<ArcId> = arcs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &a)| a)
            .collect();
        if is_directed_steiner_subgraph(d, root, terminals, &rest) {
            return false;
        }
    }
    true
}

fn terminal_mask(n: usize, terminals: &[VertexId]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &w in terminals {
        mask[w.index()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> UndirectedGraph {
        // 0-1, 1-2, 2-3, 3-0, 0-2.
        UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn tree_checks() {
        let g = square_with_diagonal();
        assert!(is_tree(&g, &[]));
        assert!(is_tree(&g, &[EdgeId(0), EdgeId(1)]));
        assert!(!is_tree(&g, &[EdgeId(0), EdgeId(1), EdgeId(4)]), "triangle");
        assert!(!is_tree(&g, &[EdgeId(0), EdgeId(2)]), "disconnected");
    }

    #[test]
    fn steiner_tree_checks() {
        let g = square_with_diagonal();
        let w = [VertexId(1), VertexId(3)];
        assert!(is_steiner_tree(&g, &w, &[EdgeId(0), EdgeId(3)]));
        assert!(is_minimal_steiner_tree(&g, &w, &[EdgeId(0), EdgeId(3)]));
        // Tree containing both terminals but with a non-terminal leaf... a
        // path 1-2-3 plus edge 0-2 dangling: leaf 0 is not a terminal.
        assert!(is_steiner_tree(&g, &w, &[EdgeId(1), EdgeId(2), EdgeId(4)]));
        assert!(!is_minimal_steiner_tree(
            &g,
            &w,
            &[EdgeId(1), EdgeId(2), EdgeId(4)]
        ));
    }

    #[test]
    fn degenerate_terminal_counts() {
        let g = square_with_diagonal();
        assert!(is_steiner_tree(&g, &[], &[]));
        assert!(is_steiner_tree(&g, &[VertexId(2)], &[]));
        assert!(!is_steiner_tree(&g, &[VertexId(1), VertexId(2)], &[]));
    }

    #[test]
    fn terminal_steiner_tree_checks() {
        // Path 1-0-2 with terminals {1, 2}: both leaves — minimal terminal ST.
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let w = [VertexId(1), VertexId(2)];
        assert!(is_minimal_terminal_steiner_tree(
            &g,
            &w,
            &[EdgeId(0), EdgeId(1)]
        ));
        // Terminal as internal vertex fails.
        let g2 = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w2 = [VertexId(0), VertexId(1)];
        assert!(!is_minimal_terminal_steiner_tree(
            &g2,
            &w2,
            &[EdgeId(0), EdgeId(1)]
        ));
        // But {0, 2} with 1 internal is fine.
        assert!(is_minimal_terminal_steiner_tree(
            &g2,
            &[VertexId(0), VertexId(2)],
            &[EdgeId(0), EdgeId(1)]
        ));
    }

    #[test]
    fn steiner_forest_checks() {
        // Path 0-1-2-3 and pairs {0,1}, {2,3}.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(2), VertexId(3)],
        ];
        assert!(is_steiner_forest(&g, &sets, &[EdgeId(0), EdgeId(2)]));
        assert!(is_minimal_steiner_forest(
            &g,
            &sets,
            &[EdgeId(0), EdgeId(2)]
        ));
        // The full path also satisfies the pairs but is not minimal.
        assert!(is_steiner_forest(
            &g,
            &sets,
            &[EdgeId(0), EdgeId(1), EdgeId(2)]
        ));
        assert!(!is_minimal_steiner_forest(
            &g,
            &sets,
            &[EdgeId(0), EdgeId(1), EdgeId(2)]
        ));
    }

    #[test]
    fn forest_rejects_cycles() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let sets = vec![vec![VertexId(0), VertexId(1)]];
        assert!(!is_steiner_forest(
            &g,
            &sets,
            &[EdgeId(0), EdgeId(1), EdgeId(2)]
        ));
    }

    #[test]
    fn directed_steiner_checks() {
        // r=0 -> 1 -> 2; terminal {2}.
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let w = [VertexId(2)];
        assert!(is_directed_steiner_subgraph(
            &d,
            VertexId(0),
            &w,
            &[ArcId(2)]
        ));
        assert!(is_minimal_directed_steiner_subgraph(
            &d,
            VertexId(0),
            &w,
            &[ArcId(2)]
        ));
        assert!(is_minimal_directed_steiner_subgraph(
            &d,
            VertexId(0),
            &w,
            &[ArcId(0), ArcId(1)]
        ));
        assert!(!is_minimal_directed_steiner_subgraph(
            &d,
            VertexId(0),
            &w,
            &[ArcId(0), ArcId(1), ArcId(2)]
        ));
        assert!(!is_directed_steiner_subgraph(
            &d,
            VertexId(0),
            &w,
            &[ArcId(0)]
        ));
    }
}
