//! Versioned, checksummed persistence for [`ResultCache`](crate::cache::ResultCache) contents — the
//! warm-restart format of the service layer.
//!
//! A snapshot captures a cache's **entries** (query keys and their
//! delivered streams) together with the deduplicated solution payload of
//! its interner arena, so a restarted process answers repeated queries as
//! cache hits without re-running a single search. The format is:
//!
//! * **self-describing** — a magic tag, a format version, and the item
//!   type ([`EdgeId`] vs [`ArcId`]) lead the file; readers reject
//!   anything they do not understand with a typed [`SnapshotError`]
//!   (never a silently wrong replay);
//! * **checksummed** — an FNV-1a 64 digest over the payload detects
//!   corruption byte-for-byte (the hash is fixed by this module, not by
//!   the standard library's randomized hasher, so snapshots verify
//!   across processes);
//! * **fingerprint-checked** — every entry carries the graph fingerprint
//!   it was recorded against, and [`ResultCache::restore`](crate::cache::ResultCache::restore) can demand
//!   that it match the serving graph ([`SnapshotError::GraphMismatch`]);
//! * **deduplicated** — structurally equal solutions are written once
//!   and referenced by index, preserving the arena's hash-consing on
//!   disk;
//! * **deterministic** — entries are sorted by key before encoding, so
//!   equal cache contents produce equal bytes.
//!
//! Problem kinds are stored as strings and matched back to `&'static
//! str` names at restore time against a caller-provided list (usually
//! [`paper_problem_kinds`]), because [`CacheKey`](crate::cache::CacheKey)'s `kind` field borrows
//! the problems' compile-time `NAME` constants.
//!
//! ```
//! use steiner_core::cache::ResultCache;
//! use steiner_core::snapshot::paper_problem_kinds;
//! use steiner_core::{Enumeration, SteinerTree};
//! use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let w = [VertexId(0), VertexId(2)];
//! let cache: ResultCache<EdgeId> = ResultCache::new();
//! let cold = Enumeration::new(SteinerTree::new(&g, &w))
//!     .cached(&cache)
//!     .collect_vec()
//!     .unwrap();
//!
//! // ... process restarts: only the bytes survive ...
//! let bytes = cache.snapshot();
//! let warm: ResultCache<EdgeId> = ResultCache::new();
//! warm.restore(&bytes, &paper_problem_kinds(), None).unwrap();
//!
//! // The restarted cache serves the repeat as a hit.
//! let replayed = Enumeration::new(SteinerTree::new(&g, &w))
//!     .cached(&warm)
//!     .collect_vec()
//!     .unwrap();
//! assert_eq!(replayed, cold);
//! assert_eq!(warm.stats().hits, 1);
//! ```

use std::fmt;
use steiner_graph::{ArcId, EdgeId, VertexId};

/// Leading magic of every snapshot ("STeiner SNapshot").
pub(crate) const MAGIC: [u8; 4] = *b"STSN";

/// Current format version. Readers reject anything newer *or older* with
/// [`SnapshotError::VersionSkew`] instead of guessing: version 2 replaced
/// the per-entry whole-graph fingerprint with an epoch-qualified region
/// signature, so v1 entries cannot be validated against a mutable graph.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot was rejected. Every variant is a *refusal to serve
/// wrong answers*: a cache restored from a bad snapshot would replay
/// corrupted or mismatched streams as if they were correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes are not a snapshot, or are structurally truncated /
    /// inconsistent (bad magic, counts pointing past the end, indices
    /// out of range, trailing garbage). The payload names the first
    /// structural check that failed.
    Corrupted(&'static str),
    /// The snapshot declares a format version this build does not read —
    /// either newer (written by a later build) or older (v1 blobs carry
    /// whole-graph fingerprints that cannot be checked region-by-region).
    VersionSkew {
        /// The version found in the snapshot header.
        stored: u32,
        /// The single version this build reads ([`SNAPSHOT_VERSION`]).
        supported: u32,
    },
    /// The payload checksum does not match — the bytes were damaged
    /// after writing.
    ChecksumMismatch,
    /// The snapshot stores a different item type than the restoring
    /// cache (e.g. an [`ArcId`] snapshot read into an [`EdgeId`] cache).
    ItemKindMismatch {
        /// The item tag found in the snapshot header.
        stored: u32,
        /// The restoring cache's item tag.
        expected: u32,
    },
    /// An entry's problem kind is not among the names the caller
    /// recognizes — the snapshot was written by a build with problems
    /// this one does not serve.
    UnknownProblemKind(String),
    /// An entry was recorded against a different graph than the one the
    /// restoring engine serves, and the caller demanded a match.
    GraphMismatch {
        /// The graph fingerprint stored with the entry.
        stored: u64,
        /// The fingerprint of the serving graph.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupted(what) => write!(f, "corrupted snapshot: {what}"),
            SnapshotError::VersionSkew { stored, supported } => {
                write!(
                    f,
                    "snapshot version skew: stored version {stored}, this build reads {supported}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::ItemKindMismatch { stored, expected } => {
                write!(
                    f,
                    "snapshot stores item kind {stored}, cache expects {expected}"
                )
            }
            SnapshotError::UnknownProblemKind(kind) => {
                write!(f, "snapshot entry for unknown problem kind {kind:?}")
            }
            SnapshotError::GraphMismatch { stored, expected } => {
                write!(
                    f,
                    "snapshot recorded against graph {stored:#018x}, serving graph is {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Item types a [`ResultCache`](crate::cache::ResultCache) snapshot can carry. The tag discriminates
/// them in the header so an arc snapshot can never restore into an edge
/// cache; the raw form is the id's dense `u32`.
pub trait SnapshotItem: Copy {
    /// Header tag for this item type (stable across versions).
    const TAG: u32;
    /// The id's dense index, as written to the snapshot.
    fn to_raw(self) -> u32;
    /// Rebuilds the id from its dense index.
    fn from_raw(raw: u32) -> Self;
}

impl SnapshotItem for EdgeId {
    const TAG: u32 = 1;
    fn to_raw(self) -> u32 {
        self.0
    }
    fn from_raw(raw: u32) -> Self {
        EdgeId(raw)
    }
}

impl SnapshotItem for ArcId {
    const TAG: u32 = 2;
    fn to_raw(self) -> u32 {
        self.0
    }
    fn from_raw(raw: u32) -> Self {
        ArcId(raw)
    }
}

impl SnapshotItem for VertexId {
    const TAG: u32 = 3;
    fn to_raw(self) -> u32 {
        self.0
    }
    fn from_raw(raw: u32) -> Self {
        VertexId(raw)
    }
}

/// The kind names of the four paper problems, in a fixed order — the
/// usual `kinds` argument to [`ResultCache::restore`](crate::cache::ResultCache::restore). (Restore only
/// needs the names *present in the snapshot* to appear; passing all four
/// is always safe, for either item type.)
pub fn paper_problem_kinds() -> [&'static str; 4] {
    use crate::problem::MinimalSteinerProblem;
    [
        <crate::improved::SteinerTree as MinimalSteinerProblem>::NAME,
        <crate::forest::SteinerForest as MinimalSteinerProblem>::NAME,
        <crate::terminal::TerminalSteinerTree as MinimalSteinerProblem>::NAME,
        <crate::directed::DirectedSteinerTree as MinimalSteinerProblem>::NAME,
    ]
}

/// FNV-1a 64 over `bytes` — a fixed, dependency-free digest (unlike
/// `DefaultHasher`, whose keys are randomized per process) so snapshots
/// written by one process verify in another.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Little-endian payload writer.
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian payload reader; every read is bounds-checked and fails
/// with [`SnapshotError::Corrupted`] rather than panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Corrupted("payload truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupted("kind name is not UTF-8"))
    }

    /// Asserts the payload is fully consumed — trailing bytes mean the
    /// counts and the length disagree.
    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupted("trailing bytes after payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters; a silent
        // change here would invalidate every existing snapshot.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut w = Writer::new();
        w.u32(7);
        w.str("steiner");
        let buf = w.buf;
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.str().unwrap(), "steiner");
        r.finish().unwrap();

        let mut truncated = Reader::new(&buf[..buf.len() - 1]);
        assert_eq!(truncated.u32().unwrap(), 7);
        assert_eq!(
            truncated.str(),
            Err(SnapshotError::Corrupted("payload truncated"))
        );

        let mut r = Reader::new(&buf);
        let _ = r.u32().unwrap();
        assert_eq!(
            r.finish(),
            Err(SnapshotError::Corrupted("trailing bytes after payload"))
        );
    }

    #[test]
    fn item_tags_are_distinct_and_round_trip() {
        assert_ne!(EdgeId::TAG, ArcId::TAG);
        assert_ne!(EdgeId::TAG, VertexId::TAG);
        assert_eq!(EdgeId::from_raw(EdgeId(9).to_raw()), EdgeId(9));
        assert_eq!(ArcId::from_raw(ArcId(3).to_raw()), ArcId(3));
        assert_eq!(VertexId::from_raw(VertexId(5).to_raw()), VertexId(5));
    }

    #[test]
    fn error_messages_are_informative() {
        for (err, needle) in [
            (SnapshotError::Corrupted("bad magic"), "bad magic"),
            (
                SnapshotError::VersionSkew {
                    stored: 9,
                    supported: SNAPSHOT_VERSION,
                },
                "9",
            ),
            (SnapshotError::ChecksumMismatch, "checksum"),
            (
                SnapshotError::ItemKindMismatch {
                    stored: 2,
                    expected: 1,
                },
                "item kind 2",
            ),
            (
                SnapshotError::UnknownProblemKind("mystery".into()),
                "mystery",
            ),
            (
                SnapshotError::GraphMismatch {
                    stored: 1,
                    expected: 2,
                },
                "graph",
            ),
        ] {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
