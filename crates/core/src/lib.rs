//! Minimal Steiner enumeration — §4 and §5 of *Linear-Delay Enumeration
//! for Minimal Steiner Problems* (PODS 2022).
//!
//! This crate implements the paper's primary contribution:
//!
//! | Problem | Simple (poly-delay) | Improved (amortized / linear delay) |
//! |---|---|---|
//! | minimal Steiner trees (§4) | [`simple::enumerate_minimal_steiner_trees_simple`] | [`improved::enumerate_minimal_steiner_trees`] |
//! | minimal Steiner forests (§5) | — | [`forest::enumerate_minimal_steiner_forests`] |
//! | minimal terminal Steiner trees (§5.1) | — | [`terminal::enumerate_minimal_terminal_steiner_trees`] |
//! | minimal directed Steiner trees (§5.2) | — | [`directed::enumerate_minimal_directed_steiner_trees`] |
//!
//! All enumerators follow the same branching scheme (Algorithm 3): grow a
//! partial solution by one valid path per child, where the paths come from
//! the linear-delay enumerator of `steiner-paths`. The "improved"
//! enumerators additionally guarantee that **every internal node of the
//! enumeration tree has at least two children** (via the bridge
//! characterisations of Lemmas 16, 24, 30 and the Lemma 35 reachability
//! sweep), which yields amortized O(n + m) time per solution; the
//! [`queue::OutputQueue`] (Uno's output-queue method, Theorem 20) converts
//! that into a worst-case delay bound.
//!
//! Solutions are reported as **sorted edge-id (or arc-id) slices**;
//! [`verify`] provides validity/minimality checkers and [`brute`] provides
//! exponential-time reference enumerators used as test oracles.

pub mod brute;
pub mod directed;
pub mod forest;
pub mod improved;
pub mod minimum;
pub mod partial;
pub mod queue;
pub mod simple;
pub mod stats;
pub mod terminal;
pub mod verify;

pub use queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
pub use stats::EnumStats;

/// A sink receiving each solution as a sorted slice of edge ids (arc ids
/// for the directed problem). Return [`std::ops::ControlFlow::Break`] to
/// stop the enumeration.
pub type EdgeSetSink<'a> =
    dyn FnMut(&[steiner_graph::EdgeId]) -> std::ops::ControlFlow<()> + 'a;
