//! Minimal Steiner enumeration — §4 and §5 of *Linear-Delay Enumeration
//! for Minimal Steiner Problems* (PODS 2022).
//!
//! # The unified solver API
//!
//! All four of the paper's problems implement one trait,
//! [`MinimalSteinerProblem`] — the Algorithm-3 contract (validity check,
//! minimal completion with uniqueness certificate, branching-vertex
//! selection) — and run through one generic engine behind the
//! [`Enumeration`] builder:
//!
//! | Problem | Problem type | Paper |
//! |---|---|---|
//! | minimal Steiner trees | [`SteinerTree`] | §4, Theorems 17 & 20 |
//! | minimal Steiner forests | [`SteinerForest`] | §5, Theorems 23 & 25 |
//! | minimal terminal Steiner trees | [`TerminalSteinerTree`] | §5.1, Theorems 29 & 31 |
//! | minimal directed Steiner trees | [`DirectedSteinerTree`] | §5.2, Theorems 34 & 36 |
//!
//! ```
//! use steiner_core::{Enumeration, SteinerTree};
//! use steiner_graph::{UndirectedGraph, VertexId};
//! use std::ops::ControlFlow;
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let problem = SteinerTree::new(&g, &[VertexId(0), VertexId(2)]);
//! let stats = Enumeration::new(problem)
//!     .for_each(|tree| {
//!         assert_eq!(tree.len(), 2); // each solution is one side of the square
//!         ControlFlow::Continue(())
//!     })
//!     .unwrap();
//! assert_eq!(stats.solutions, 2);
//! ```
//!
//! The builder offers three interchangeable front-ends — a push sink
//! ([`Enumeration::for_each`]), a pull [`Iterator`]
//! ([`Enumeration::into_iter`]), and early termination
//! ([`Enumeration::with_limit`] or a sink returning
//! [`ControlFlow::Break`](std::ops::ControlFlow::Break)) — plus the
//! Theorem-20 output queue ([`Enumeration::with_queue`]) that converts the
//! amortized O(n + m) bound into a worst-case delay bound, and a sharded
//! parallel mode ([`Enumeration::with_threads`]) that splits the root's
//! children across worker threads while keeping the delivered stream
//! identical to the sequential one. Invalid instances surface as typed
//! [`SteinerError`]s.
//!
//! # Algorithmic guarantees
//!
//! All enumerators follow the same branching scheme (Algorithm 3): grow a
//! partial solution by one valid path per child, where the paths come from
//! the linear-delay enumerator of `steiner-paths`. The engine-driven
//! problem types guarantee that **every internal node of the enumeration
//! tree has at least two children** (via the bridge characterisations of
//! Lemmas 16, 24, 30 and the Lemma 35 reachability sweep), which yields
//! amortized O(n + m) time per solution; the [`queue::OutputQueue`]
//! (Uno's output-queue method, Theorem 20) converts that into a worst-case
//! delay bound.
//!
//! Solutions are reported as **sorted edge-id (or arc-id) slices**;
//! [`verify`] provides validity/minimality checkers and [`brute`] provides
//! exponential-time reference enumerators used as test oracles.
//! [`simple`] keeps the paper's Algorithm 2 baseline, and [`minimum`] the
//! Table 1 minimum-Steiner-tree comparison row.
//!
//! # Serving repeated traffic
//!
//! Two layers turn the single-run engine into a service for repeated
//! queries: [`intern`] hash-conses emitted solutions into a shared arena
//! (dedup across runs and consumers, O(1) re-emission via stable
//! [`SolutionId`]s), and [`cache`] keys complete enumerations by
//! `(problem kind, graph fingerprint, query, limit)` so an identical
//! query replays from the store instead of re-running Algorithm 3. Both
//! are opt-in builder front-ends ([`Enumeration::with_interning`],
//! [`Enumeration::cached`]) that compose with threads, limits, and the
//! output queue without changing a byte of the delivered stream. For
//! long-lived serving, [`snapshot`] persists a cache's entries and
//! deduplicated payload in a versioned, checksummed format
//! ([`ResultCache::snapshot`] / [`ResultCache::restore`]) so a restarted
//! engine answers warm, and [`Enumeration::with_deadline`] bounds a
//! query's wall-clock time with typed
//! [`SteinerError::DeadlineExceeded`] abort semantics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod brute;
pub mod cache;
pub mod directed;
pub mod forest;
pub mod improved;
pub mod intern;
pub mod minimum;
pub mod partial;
pub mod problem;
pub mod queue;
pub mod simple;
pub mod snapshot;
pub mod solver;
pub mod stats;
pub mod steal;
pub mod terminal;
pub mod trail;
pub mod verify;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use directed::DirectedSteinerTree;
pub use forest::SteinerForest;
pub use improved::SteinerTree;
pub use intern::{SolutionId, SolutionInterner, SolutionSet};
pub use problem::{MinimalSteinerProblem, NodeStep, Prepared, RootShard, SteinerError};
pub use queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
pub use snapshot::{SnapshotError, SnapshotItem};
pub use solver::{Enumeration, Solutions, StatsHandle};
pub use stats::EnumStats;
pub use steal::{StealObserver, StealRule, StealSchedule};
pub use terminal::TerminalSteinerTree;
pub use trail::{ScratchUsage, Trail, TrailMark};

/// A sink receiving each solution as a sorted slice of edge ids (arc ids
/// for the directed problem). Return [`std::ops::ControlFlow::Break`] to
/// stop the enumeration.
pub type EdgeSetSink<'a> = dyn FnMut(&[steiner_graph::EdgeId]) -> std::ops::ControlFlow<()> + 'a;
