//! Enumeration statistics.
//!
//! Besides solution counts, the enumerators report the *shape* of their
//! enumeration tree — the quantity Figure 1 of the paper illustrates and
//! Theorems 17/20 rely on: in the improved enumerators every internal node
//! has at least two children, so internal nodes never outnumber leaves and
//! amortized work per solution is O(n + m).

/// Counters describing one enumeration run.
///
/// Returned by every [`Enumeration`](crate::solver::Enumeration)
/// front-end (and readable mid-run through a
/// [`StatsHandle`](crate::solver::StatsHandle)):
///
/// ```
/// use steiner_core::{Enumeration, SteinerTree};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let stats = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
///     .run()
///     .unwrap();
/// assert_eq!(stats.solutions, 2);
/// assert_eq!(stats.deficient_internal_nodes, 0); // the ≥2-children invariant
/// assert!(stats.max_emission_gap <= stats.work); // gaps live on the work clock
/// assert_eq!(stats.cache_hits + stats.cache_misses, 0); // no cache attached
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Solutions handed to the sink.
    pub solutions: u64,
    /// Work units (≈ vertices + arcs touched) spent after preprocessing.
    pub work: u64,
    /// Work units spent in preprocessing (before the first branching).
    pub preprocessing_work: u64,
    /// Nodes of the enumeration tree that were expanded.
    pub nodes: u64,
    /// Internal (branching) nodes.
    pub internal_nodes: u64,
    /// Leaf nodes (each emits exactly one solution).
    pub leaf_nodes: u64,
    /// Internal nodes that produced fewer than two children — the improved
    /// enumerators must keep this at zero (Theorem 17's invariant), except
    /// for the documented root special case of the terminal variant.
    pub deficient_internal_nodes: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u32,
    /// Maximum work-unit gap between two consecutive emissions (the
    /// empirical delay in work units).
    pub max_emission_gap: u64,
    /// Heap allocations performed by the search *after* `prepare()`
    /// returned: buffer-growth events recorded by the reusable scratch
    /// structures (trail, CSR rebuilds, path-enumerator arenas). The
    /// improved enumerators keep this at **zero** on warm instances —
    /// the testable form of the "no allocator traffic in `recurse`"
    /// claim.
    pub scratch_allocs: u64,
    /// Bytes of scratch capacity owned by the search state at the end of
    /// the run (peak, since scratch buffers only grow).
    pub peak_scratch_bytes: u64,
    /// Result-cache hits: 1 when this run was served from a
    /// [`ResultCache`](crate::cache::ResultCache) instead of the engine
    /// (then `work` is 0 — no search ran), 0 otherwise. Sums under
    /// [`Self::merge`], so aggregated stats count hits across runs.
    pub cache_hits: u64,
    /// Result-cache misses: 1 when a `cached()` run had to run the
    /// engine (its stream was then recorded), 0 otherwise.
    pub cache_misses: u64,
    /// Bytes of live hash-consed solution payload in the attached
    /// interner or result cache **after** this run — a gauge, not a
    /// per-run delta (0 when the run used neither).
    pub interned_bytes: u64,
    /// [`ResultCache`](crate::cache::ResultCache) entries evicted (LRU)
    /// by this run's recording — the cache pressure *this query* caused.
    /// Sums under [`Self::merge`], so aggregated (e.g. per-tenant) stats
    /// report total evictions attributable to the aggregate.
    pub evicted_entries: u64,
    /// Shared-arena compactions triggered by this run's cache traffic
    /// (storing its recording, or rolling an aborted one back). Sums
    /// under [`Self::merge`].
    pub compactions: u64,
    /// Cache entries that survived a graph mutation because their
    /// region signature did not intersect the touched regions. Recorded
    /// by the service layer's mutation path; sums under [`Self::merge`].
    pub entries_retained: u64,
    /// Cache entries reclaimed by a graph mutation because their
    /// region signature intersected the touched regions. Sums under
    /// [`Self::merge`].
    pub entries_invalidated: u64,
    /// `classify` calls answered from the incremental connectivity layer
    /// (trail-backed [`DynamicSpanning`](steiner_graph::spanning::DynamicSpanning)
    /// reads) instead of a fresh spanning-growth / contraction pass.
    pub classify_incremental: u64,
    /// `classify` calls that fell back to a full per-node recomputation
    /// (spanning growth, contraction rebuild, Lemma-11/35 sweep). The
    /// incremental engines drive this toward zero on leaf-heavy
    /// workloads; with incremental classification disabled every
    /// non-trivial classify counts here.
    pub classify_rebuilds: u64,
    /// Vertices explored by the incremental layer's forced-path queries
    /// (`DynamicSpanning`'s early-exit BFS from a missing terminal
    /// toward the partial solution) across the run — the O(affected
    /// component) cost the layer pays instead of the per-node O(n + m)
    /// passes.
    pub connectivity_repairs: u64,
    /// Largest single forced-path query (vertices explored by one BFS)
    /// — a gauge for the worst-case affected-component size, merged by
    /// maximum across shards.
    pub max_repair_span: u64,
    /// Subtrees this run handed to the steal pool (work-stealing sharded
    /// front-end): each is one branch child whose execution migrated to
    /// an idle worker (or, when the coordinator had to keep the merge
    /// moving, was replayed inline by the coordinator itself). Counted by
    /// the *spawning* worker at hand-off time; sums under [`Self::merge`].
    pub subtrees_stolen: u64,
    /// Steal offers rejected because the pool's bounded pending deque was
    /// full (the subtree was then executed locally, exactly as without
    /// stealing). Sums under [`Self::merge`].
    pub steal_failures: u64,
    /// Work units spent inside the path-generation core (`steiner-paths`'
    /// `E-STP`/`F-STP` enumerator) across all branch-node calls — a
    /// subset of [`Self::work`], surfaced so the size-sweep bench can
    /// report the path-generation share directly. Sums under
    /// [`Self::merge`]. Note the packed and reference path generators
    /// count slightly different unit totals for the same stream (a
    /// served cache hit skips the BFS work a recomputation would count),
    /// so this figure is comparable within one mode, not across modes.
    pub path_gen_work: u64,
    /// Per-level `F-STP` reverse-BFS trees served from the packed
    /// signature cache instead of recomputed (see
    /// [`with_packed_frontiers`](crate::Enumeration::with_packed_frontiers)).
    /// Zero when packed frontiers are disabled. Sums under [`Self::merge`].
    pub fstp_cache_hits: u64,
    /// Per-level `F-STP` reverse-BFS recomputations under packed
    /// frontiers (signature mismatch or cold level). Zero when packed
    /// frontiers are disabled. Sums under [`Self::merge`].
    pub fstp_cache_misses: u64,
    /// Work units at the last emission (internal bookkeeping for the gap).
    last_emission_work: u64,
    /// Whether anything was emitted yet (the first gap counts from zero).
    emitted_any: bool,
}

impl EnumStats {
    /// The statistics of a run served entirely from a
    /// [`ResultCache`](crate::cache::ResultCache): `delivered` solutions,
    /// one cache hit, no engine work.
    pub(crate) fn for_cache_hit(delivered: u64, interned_bytes: u64) -> Self {
        EnumStats {
            solutions: delivered,
            cache_hits: 1,
            interned_bytes,
            ..EnumStats::default()
        }
    }

    /// Notes an emission at the current work counter, updating the gap
    /// statistics.
    pub fn note_emission(&mut self) {
        let now = self.work;
        let gap = now - self.last_emission_work;
        if gap > self.max_emission_gap {
            self.max_emission_gap = gap;
        }
        self.last_emission_work = now;
        self.emitted_any = true;
        self.solutions += 1;
    }

    /// Notes the end of the enumeration (the trailing gap also counts, per
    /// the paper's delay definition).
    pub fn note_end(&mut self) {
        let gap = self.work - self.last_emission_work;
        if self.emitted_any && gap > self.max_emission_gap {
            self.max_emission_gap = gap;
        }
    }

    /// Records the search's scratch accounting (see
    /// [`crate::trail::ScratchUsage`]); called by the problems'
    /// `seal_stats` when a run finishes.
    pub fn note_scratch(&mut self, usage: crate::trail::ScratchUsage) {
        self.scratch_allocs = usage.allocs;
        if usage.bytes > self.peak_scratch_bytes {
            self.peak_scratch_bytes = usage.bytes;
        }
    }

    /// Folds another run's counters into this one — the aggregation rule
    /// of the sharded front-end
    /// ([`Enumeration::with_threads`](crate::solver::Enumeration::with_threads)):
    /// additive counters sum (each worker's work, nodes, and allocations
    /// are real costs paid on some thread; `peak_scratch_bytes` sums
    /// because every worker owns its own scratch heaps), extrema take the
    /// maximum. Note two sharding artifacts: the root node is expanded
    /// once *per worker*, so `nodes` counts it `k` times, and each
    /// worker's `max_emission_gap` is measured against its own work
    /// clock (the sharded driver overrides the merged value with the
    /// user-visible delivery gap).
    pub fn merge(&mut self, other: &EnumStats) {
        self.solutions += other.solutions;
        self.work += other.work;
        self.preprocessing_work += other.preprocessing_work;
        self.nodes += other.nodes;
        self.internal_nodes += other.internal_nodes;
        self.leaf_nodes += other.leaf_nodes;
        self.deficient_internal_nodes += other.deficient_internal_nodes;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.max_emission_gap = self.max_emission_gap.max(other.max_emission_gap);
        self.scratch_allocs += other.scratch_allocs;
        self.peak_scratch_bytes += other.peak_scratch_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        // A gauge over a shared arena, not a per-run cost: take the max.
        self.interned_bytes = self.interned_bytes.max(other.interned_bytes);
        // Cache pressure is attributable per run: sum it.
        self.evicted_entries += other.evicted_entries;
        self.compactions += other.compactions;
        // Mutation-time invalidation accounting is additive per batch.
        self.entries_retained += other.entries_retained;
        self.entries_invalidated += other.entries_invalidated;
        // Incremental-classification passes and repair work are real
        // per-thread costs: sum them. The repair span is a gauge.
        self.classify_incremental += other.classify_incremental;
        self.classify_rebuilds += other.classify_rebuilds;
        self.connectivity_repairs += other.connectivity_repairs;
        self.max_repair_span = self.max_repair_span.max(other.max_repair_span);
        // Steal accounting is per-event and attributable to exactly one
        // worker: sum both the hand-offs and the rejected offers.
        self.subtrees_stolen += other.subtrees_stolen;
        self.steal_failures += other.steal_failures;
        // Path-generation accounting is per-call and additive.
        self.path_gen_work += other.path_gen_work;
        self.fstp_cache_hits += other.fstp_cache_hits;
        self.fstp_cache_misses += other.fstp_cache_misses;
        self.emitted_any |= other.emitted_any;
    }

    /// Folds one incremental-connectivity snapshot (the cumulative
    /// counters of a [`DynamicSpanning`](steiner_graph::spanning::DynamicSpanning),
    /// as returned by its `repair_stats`) into this run's statistics.
    pub fn note_connectivity(&mut self, repair: (u64, u64, u64)) {
        let (_queries, explored, max_explored) = repair;
        self.connectivity_repairs = explored;
        self.max_repair_span = self.max_repair_span.max(max_explored);
    }

    /// Records one expanded node with its child count and depth.
    pub fn note_node(&mut self, children: u64, depth: u32) {
        self.nodes += 1;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
        if children == 0 {
            self.leaf_nodes += 1;
        } else {
            self.internal_nodes += 1;
            if children < 2 {
                self.deficient_internal_nodes += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_gaps_track_work() {
        let mut s = EnumStats {
            work: 10,
            ..Default::default()
        };
        let _ = &mut s;
        s.note_emission();
        s.work = 25;
        s.note_emission();
        s.work = 30;
        s.note_end();
        assert_eq!(s.solutions, 2);
        assert_eq!(s.max_emission_gap, 15);
    }

    #[test]
    fn trailing_gap_counts() {
        let mut s = EnumStats {
            work: 5,
            ..Default::default()
        };
        let _ = &mut s;
        s.note_emission();
        s.work = 105;
        s.note_end();
        assert_eq!(s.max_emission_gap, 100);
    }

    #[test]
    fn merge_sums_counters_and_maxes_extrema() {
        let mut a = EnumStats {
            work: 100,
            ..Default::default()
        };
        a.note_emission();
        a.note_node(3, 2);
        let mut b = EnumStats {
            work: 40,
            preprocessing_work: 7,
            scratch_allocs: 2,
            peak_scratch_bytes: 64,
            cache_hits: 1,
            cache_misses: 2,
            interned_bytes: 96,
            evicted_entries: 3,
            compactions: 1,
            ..Default::default()
        };
        b.note_emission();
        b.note_emission();
        b.note_node(0, 5);
        a.merge(&b);
        assert_eq!(a.solutions, 3);
        assert_eq!(a.work, 140);
        assert_eq!(a.preprocessing_work, 7);
        assert_eq!(a.nodes, 2);
        assert_eq!(a.internal_nodes, 1);
        assert_eq!(a.leaf_nodes, 1);
        assert_eq!(a.max_depth, 5);
        assert_eq!(a.max_emission_gap, 100, "extrema take the max");
        assert_eq!(a.scratch_allocs, 2);
        assert_eq!(a.peak_scratch_bytes, 64);
        assert_eq!(a.cache_hits, 1, "cache counters sum");
        assert_eq!(a.cache_misses, 2);
        assert_eq!(a.interned_bytes, 96, "the shared-arena gauge takes the max");
        assert_eq!(a.evicted_entries, 3, "cache pressure sums");
        assert_eq!(a.compactions, 1);
    }

    #[test]
    fn merge_folds_cache_pressure() {
        // Per-run pressure counters are additive costs: each eviction and
        // each compaction happened exactly once, on some run's behalf.
        let mut a = EnumStats {
            evicted_entries: 2,
            compactions: 1,
            ..Default::default()
        };
        let b = EnumStats {
            evicted_entries: 5,
            compactions: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.evicted_entries, 7);
        assert_eq!(a.compactions, 4);
        // Merging an idle run changes nothing.
        let before = a;
        a.merge(&EnumStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_folds_incremental_counters() {
        // Passes and repair work sum (each worker paid them on its own
        // thread); the repair span is a gauge and takes the max.
        let a0 = EnumStats {
            classify_incremental: 10,
            classify_rebuilds: 2,
            connectivity_repairs: 40,
            max_repair_span: 7,
            ..Default::default()
        };
        let b = EnumStats {
            classify_incremental: 5,
            classify_rebuilds: 0,
            connectivity_repairs: 9,
            max_repair_span: 31,
            ..Default::default()
        };
        let mut a = a0;
        a.merge(&b);
        assert_eq!(a.classify_incremental, 15, "passes sum");
        assert_eq!(a.classify_rebuilds, 2, "rebuilds sum");
        assert_eq!(a.connectivity_repairs, 49, "repair work sums");
        assert_eq!(a.max_repair_span, 31, "the span gauge takes the max");
        // The fold is order-insensitive for these counters.
        let mut c = b;
        c.merge(&a0);
        assert_eq!(c.classify_incremental, a.classify_incremental);
        assert_eq!(c.classify_rebuilds, a.classify_rebuilds);
        assert_eq!(c.connectivity_repairs, a.connectivity_repairs);
        assert_eq!(c.max_repair_span, a.max_repair_span);
        // Merging a default (idle worker) changes nothing.
        let mut d = a;
        d.merge(&EnumStats::default());
        assert_eq!(d, a);
    }

    #[test]
    fn merge_folds_steal_counters() {
        // Every hand-off and every rejected offer happened exactly once,
        // on exactly one worker's behalf: the fold sums both.
        let a0 = EnumStats {
            subtrees_stolen: 4,
            steal_failures: 1,
            ..Default::default()
        };
        let b = EnumStats {
            subtrees_stolen: 3,
            steal_failures: 2,
            ..Default::default()
        };
        let mut a = a0;
        a.merge(&b);
        assert_eq!(a.subtrees_stolen, 7, "hand-offs sum");
        assert_eq!(a.steal_failures, 3, "rejected offers sum");
        // The fold is order-insensitive.
        let mut c = b;
        c.merge(&a0);
        assert_eq!(c.subtrees_stolen, a.subtrees_stolen);
        assert_eq!(c.steal_failures, a.steal_failures);
        // Merging an idle worker (no steal traffic) changes nothing.
        let before = a;
        a.merge(&EnumStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_folds_path_generation_counters() {
        let a0 = EnumStats {
            path_gen_work: 120,
            fstp_cache_hits: 5,
            fstp_cache_misses: 9,
            ..Default::default()
        };
        let b = EnumStats {
            path_gen_work: 30,
            fstp_cache_hits: 2,
            fstp_cache_misses: 1,
            ..Default::default()
        };
        let mut a = a0;
        a.merge(&b);
        assert_eq!(a.path_gen_work, 150, "path work sums");
        assert_eq!(a.fstp_cache_hits, 7, "hits sum");
        assert_eq!(a.fstp_cache_misses, 10, "misses sum");
        let mut c = b;
        c.merge(&a0);
        assert_eq!(c.path_gen_work, a.path_gen_work, "order-insensitive");
    }

    #[test]
    fn note_connectivity_snapshots_the_gauge() {
        let mut s = EnumStats::default();
        s.note_connectivity((3, 25, 11));
        assert_eq!(s.connectivity_repairs, 25);
        assert_eq!(s.max_repair_span, 11);
        // A later, larger snapshot replaces the cumulative counter but
        // the span stays a high-water mark.
        s.note_connectivity((5, 40, 6));
        assert_eq!(s.connectivity_repairs, 40);
        assert_eq!(s.max_repair_span, 11);
    }

    #[test]
    fn node_shape_counters() {
        let mut s = EnumStats::default();
        s.note_node(3, 0);
        s.note_node(0, 1);
        s.note_node(1, 1);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.internal_nodes, 2);
        assert_eq!(s.leaf_nodes, 1);
        assert_eq!(s.deficient_internal_nodes, 1);
        assert_eq!(s.max_depth, 1);
    }
}
