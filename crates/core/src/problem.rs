//! The [`MinimalSteinerProblem`] trait: the Algorithm-3 contract shared by
//! every minimal Steiner enumeration in the paper.
//!
//! §4–§5 instantiate one branching scheme four times (trees, forests,
//! terminal trees, directed trees). Each instantiation supplies the same
//! three ingredients:
//!
//! 1. a **validity check** — is the current partial solution already a
//!    solution? ([`NodeStep::Complete`]);
//! 2. a **minimal completion** with a uniqueness certificate — when only
//!    one minimal solution contains the partial one, emit it and close the
//!    node as a leaf ([`NodeStep::Unique`], the Lemma 16/24/30/35 tests);
//! 3. a **branching-vertex selection** — otherwise pick a branch target
//!    with at least two valid extensions ([`NodeStep::Branch`]).
//!
//! The generic engine in [`crate::solver`] drives any implementation
//! through the shared recursion, so all four problems (plus any future
//! variant) get the push, pull, queued, and limited front-ends from a
//! single code path.
//!
//! Instance preconditions are reported as typed [`SteinerError`]s instead
//! of the panics/silent-`false` mix of the original free functions.

use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::VertexId;

/// Invalid-instance conditions, reported by [`MinimalSteinerProblem::validate`]
/// and [`MinimalSteinerProblem::prepare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SteinerError {
    /// No terminals (or no terminal sets) were supplied.
    EmptyInstance,
    /// The same terminal appears twice in a terminal list.
    DuplicateTerminal(VertexId),
    /// A terminal id is not a vertex of the graph.
    TerminalOutOfRange {
        /// The offending terminal.
        terminal: VertexId,
        /// The number of vertices in the instance graph.
        num_vertices: usize,
    },
    /// The root id of a directed instance is not a vertex of the graph.
    RootOutOfRange {
        /// The offending root.
        root: VertexId,
        /// The number of vertices in the instance graph.
        num_vertices: usize,
    },
    /// A terminal set spans more than one connected component, so no
    /// solution exists. `set` is the index of the offending terminal set
    /// (always 0 for single-set problems).
    DisconnectedTerminals {
        /// Index of the terminal set that is not connected.
        set: usize,
    },
    /// Directed instances: a terminal is unreachable from the root.
    UnreachableTerminal(VertexId),
    /// The per-query deadline
    /// ([`Enumeration::with_deadline`](crate::solver::Enumeration::with_deadline))
    /// expired before the enumeration finished. Every solution delivered
    /// to the sink before the expiry is valid — the stream is a correct
    /// *prefix* of the full answer — but the run is incomplete, so it is
    /// never recorded in a [`ResultCache`](crate::cache::ResultCache)
    /// (the same rollback rule as a sink abort).
    DeadlineExceeded,
    /// An admission controller (the `steiner-service` engine) refused to
    /// enqueue the query: the submitting tenant's queue — or the engine's
    /// global in-flight pool — is full. The query never ran; resubmit
    /// after in-flight work drains.
    AdmissionRejected {
        /// Queries currently occupying the pool that rejected this one
        /// (the tenant's queued queries, or the engine-wide in-flight
        /// count — whichever cap was hit).
        in_flight: usize,
        /// The capacity of that pool.
        capacity: usize,
    },
    /// The query shape is not servable in this configuration — e.g. a
    /// directed Steiner query submitted to a service engine constructed
    /// without a directed graph view. The payload names the missing
    /// capability.
    Unsupported(&'static str),
}

impl std::fmt::Display for SteinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteinerError::EmptyInstance => write!(f, "the instance has no terminals"),
            SteinerError::DuplicateTerminal(w) => {
                write!(f, "terminal {w} appears more than once")
            }
            SteinerError::TerminalOutOfRange {
                terminal,
                num_vertices,
            } => {
                write!(
                    f,
                    "terminal {terminal} out of range (graph has {num_vertices} vertices)"
                )
            }
            SteinerError::RootOutOfRange { root, num_vertices } => {
                write!(
                    f,
                    "root {root} out of range (graph has {num_vertices} vertices)"
                )
            }
            SteinerError::DisconnectedTerminals { set } => {
                write!(f, "terminal set {set} spans multiple connected components")
            }
            SteinerError::UnreachableTerminal(w) => {
                write!(f, "terminal {w} is unreachable from the root")
            }
            SteinerError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded before the enumeration finished \
                     (the delivered stream is a valid prefix)"
                )
            }
            SteinerError::AdmissionRejected {
                in_flight,
                capacity,
            } => {
                write!(
                    f,
                    "admission rejected: {in_flight} queries in flight at capacity {capacity}"
                )
            }
            SteinerError::Unsupported(what) => {
                write!(f, "unsupported query: {what}")
            }
        }
    }
}

impl SteinerError {
    /// Whether this error describes a *valid* instance that simply has no
    /// solutions (empty, disconnected, or unreachable), as opposed to a
    /// malformed one (duplicate or out-of-range ids). The deprecated
    /// pre-0.2 entry points and the keyword-search layer treat the former
    /// as "enumerate nothing". The runtime conditions
    /// ([`Self::DeadlineExceeded`], [`Self::AdmissionRejected`],
    /// [`Self::Unsupported`]) are neither: the instance may well have
    /// solutions that were not (fully) delivered.
    pub fn means_no_solutions(&self) -> bool {
        matches!(
            self,
            SteinerError::EmptyInstance
                | SteinerError::DisconnectedTerminals { .. }
                | SteinerError::UnreachableTerminal(_)
        )
    }
}

impl std::error::Error for SteinerError {}

/// Outcome of [`MinimalSteinerProblem::prepare`]: what the engine should do
/// after validation and preprocessing succeed.
#[derive(Debug, Clone)]
pub enum Prepared<Item> {
    /// The instance is valid but has no solutions (e.g. a terminal Steiner
    /// instance with a single terminal, or no admissible component).
    Empty,
    /// The instance has exactly this one solution, found without search
    /// (e.g. a Steiner tree instance with one terminal: the empty tree).
    Single(Vec<Item>),
    /// Run the branching engine from the root node.
    Search,
}

/// The slice of the root node's children one worker of a sharded
/// enumeration owns: the children whose zero-based index `i` (in the
/// engine's deterministic child order) satisfies `i % modulus == index`.
///
/// Produced by [`Enumeration::with_threads`](crate::solver::Enumeration::with_threads)
/// and handed to [`MinimalSteinerProblem::split_root`] as a hint; the
/// engine itself applies the filter, so problems only need to return a
/// fresh instance copy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RootShard {
    /// This worker's residue class, `0 ≤ index < modulus`.
    pub index: u32,
    /// The number of workers the root's children are split across.
    pub modulus: u32,
}

impl RootShard {
    /// Whether root child `child` belongs to this shard.
    #[inline]
    pub fn owns(&self, child: u64) -> bool {
        child % self.modulus as u64 == self.index as u64
    }
}

/// A replayable checkpoint of one enumeration-tree node: the **absolute**
/// partial state its root-to-node descent applies to a freshly prepared
/// instance.
///
/// Produced by [`MinimalSteinerProblem::record_subtree`] from inside a
/// `branch` callback at any depth and consumed by
/// [`MinimalSteinerProblem::replay_subtree`] on another worker's freshly
/// prepared instance copy. Two consumers exist: the sharded front-end's
/// root child log (the root's child generation is recorded **once** and
/// replayed into each worker, instead of every worker re-enumerating all
/// root children only to descend into its own residue class), and the
/// work-stealing pool (a busy worker publishes a deep branch child as a
/// record; an idle worker — or the merge coordinator — replays it and
/// enumerates the subtree). Because the captured state is absolute, not a
/// delta against the recorder's stack, replay is a *single* descent
/// regardless of the recorded node's depth.
#[derive(Clone, Debug)]
pub struct SubtreeRecord<Item> {
    /// Path vertices of the partial solution, in application order
    /// (empty for problems whose state is item-only, like forests).
    pub vertices: Vec<VertexId>,
    /// Solution items (edges or arcs) of the partial solution.
    pub items: Vec<Item>,
    /// Problem-specific tag — the terminal variant stores the admissible
    /// component index the recorded node belongs to; other problems leave
    /// it 0.
    pub meta: u64,
}

/// The per-node analysis of Algorithm 3, as computed by
/// [`MinimalSteinerProblem::classify`].
#[derive(Debug, Clone)]
pub enum NodeStep<Branch> {
    /// The partial solution is itself a solution: emit it (via
    /// [`MinimalSteinerProblem::solution`]) and close the node as a leaf.
    Complete,
    /// Exactly one minimal solution contains the partial one — the
    /// uniqueness certificates of Lemmas 16/24/30/35. `classify` wrote the
    /// full solution into the engine's scratch buffer; the node closes as
    /// a leaf.
    Unique,
    /// At least two valid extensions exist for this branch target
    /// (a missing terminal, a disconnected pair, …): recurse per child.
    Branch(Branch),
}

/// The Algorithm-3 contract: everything the generic engine in
/// [`crate::solver`] needs to enumerate all minimal solutions of one
/// problem instance with amortized-linear time per solution.
///
/// Implementations hold the full instance *and* the mutable search state
/// (partial solution, scratch structures, [`EnumStats`]); the engine owns
/// the recursion, emission, queueing, and early termination. Code written
/// against the trait runs unchanged over all four problem types (and any
/// future variant):
///
/// ```
/// use steiner_core::{Enumeration, MinimalSteinerProblem, SteinerTree, TerminalSteinerTree};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// /// Counts solutions of any problem, naming it via the trait.
/// fn describe<P: MinimalSteinerProblem + Send>(p: P) -> String
/// where
///     P::Item: Send,
/// {
///     let n = Enumeration::new(p).count().unwrap_or(0);
///     format!("{}: {n} solutions", P::NAME)
/// }
///
/// let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let w = [VertexId(0), VertexId(1)];
/// assert_eq!(describe(SteinerTree::new(&g, &w)), "minimal Steiner tree: 2 solutions");
/// assert_eq!(
///     describe(TerminalSteinerTree::new(&g, &w)),
///     "minimal terminal Steiner tree: 2 solutions"
/// );
/// ```
pub trait MinimalSteinerProblem {
    /// Solution item: [`steiner_graph::EdgeId`] for the undirected
    /// problems, [`steiner_graph::ArcId`] for directed Steiner trees.
    /// Solutions are emitted as sorted `Item` slices. `Hash` lets the
    /// [`crate::intern`] layer hash-cons emitted solutions.
    type Item: Copy + Ord + std::hash::Hash + std::fmt::Debug;

    /// Branch target chosen by [`Self::classify`] and consumed by
    /// [`Self::branch`] — a missing terminal for the tree problems, a
    /// disconnected terminal pair for forests, or a problem-specific root
    /// marker.
    type Branch;

    /// Problem name for diagnostics and reports.
    const NAME: &'static str;

    /// Whether [`Self::solution`] already writes its items in ascending
    /// order. When `true`, the engine's `Complete` emission path skips
    /// its canonicalizing sort (the `Unique` path still sorts —
    /// [`Self::classify`] fills the buffer in discovery order). An
    /// implementation returning `true` must deliver sorted output from
    /// **every** branch of its `solution`.
    const SORTED_SOLUTIONS: bool = false;

    /// Checks the structural preconditions (terminal list shape, id
    /// ranges) without touching the graph structure. Cheap; called by
    /// [`Self::prepare`].
    fn validate(&self) -> Result<(), SteinerError>;

    /// Validates, preprocesses (connectivity, bridges, graph cleaning, …)
    /// and installs the root search state. Must be called exactly once,
    /// before any other search method.
    fn prepare(&mut self) -> Result<Prepared<Self::Item>, SteinerError>;

    /// `(n, m)` of the instance graph — sizes the default
    /// [`crate::queue::QueueConfig`] and the engine's work accounting.
    fn instance_size(&self) -> (usize, usize);

    /// The enumeration statistics recorded so far.
    fn stats(&self) -> &EnumStats;

    /// Mutable access for the engine's node/emission accounting.
    fn stats_mut(&mut self) -> &mut EnumStats;

    /// The Algorithm-3 node analysis: complete / unique completion /
    /// branch target (ingredients 1–3 above).
    ///
    /// `out` is the engine's reusable emission buffer (cleared before the
    /// call). A [`NodeStep::Unique`] answer writes the full solution into
    /// it — replacing the per-leaf `Vec` allocation of earlier revisions.
    fn classify(&mut self, out: &mut Vec<Self::Item>) -> NodeStep<Self::Branch>;

    /// Writes the current complete partial solution into `out`
    /// (unsorted; the engine sorts before emission). Only called when
    /// [`Self::classify`] returned [`NodeStep::Complete`].
    fn solution(&self, out: &mut Vec<Self::Item>);

    /// Called by the engine when the run finishes (normally or by early
    /// termination), before the statistics are published: fold scratch
    /// accounting ([`crate::trail::ScratchUsage`]) into `stats_mut()`.
    fn seal_stats(&mut self) {}

    /// Applies each valid extension for `at` in turn: extend the partial
    /// solution, invoke `child`, retract. Stops early when `child` breaks.
    /// Returns the number of children generated and the resulting flow.
    fn branch(
        &mut self,
        at: Self::Branch,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>)
    where
        Self: Sized;

    /// Produces an independent, unprepared copy of this instance for one
    /// worker of a sharded enumeration
    /// ([`Enumeration::with_threads`](crate::solver::Enumeration::with_threads)).
    ///
    /// The copy must carry the instance data (graph, terminals,
    /// configuration) but no search state: each worker calls `prepare` on
    /// its own copy, so preprocessing is deterministic per shard and the
    /// root's children come out in the same order on every worker. The
    /// `shard` value is a hint (the engine applies the child filter
    /// itself); implementations may use it for shard-aware preprocessing
    /// but are not required to store it.
    ///
    /// The default returns `None`, meaning the problem does not support
    /// sharding and `with_threads` falls back to the sequential engine.
    fn split_root(&self, shard: RootShard) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = shard;
        None
    }

    /// The instance's identity for the query-level result cache
    /// ([`Enumeration::cached`](crate::solver::Enumeration::cached)):
    /// problem kind plus fingerprints of the graph and the query
    /// parameters. Two instances with equal keys **must** enumerate
    /// identical solution streams.
    ///
    /// The default returns `None`, meaning the problem opts out of
    /// caching and `cached()` always runs the engine. Must be callable
    /// before [`Self::prepare`] (the builder keys the query before
    /// preprocessing). The four paper problems implement it with the
    /// [`crate::cache`] fingerprint helpers.
    fn cache_key(&self) -> Option<crate::cache::CacheKey> {
        None
    }

    /// Enables or disables the **incremental classification** fast paths
    /// ([`Enumeration::with_incremental`](crate::solver::Enumeration::with_incremental)).
    ///
    /// When enabled (the default for the four paper problems), `classify`
    /// reads trail-backed connectivity state
    /// ([`steiner_graph::spanning::DynamicSpanning`]) maintained across
    /// parent/child search-tree nodes instead of re-running a full
    /// spanning-growth or contraction pass per node; when disabled, every
    /// non-trivial node recomputes from scratch (the pre-incremental
    /// engine, kept as the conformance reference). **Both modes must
    /// deliver byte-identical solution streams** — the incremental layer
    /// only changes how the same verdicts are computed. Must be called
    /// before [`Self::prepare`]. The default ignores the hint.
    fn set_incremental(&mut self, on: bool) {
        let _ = on;
    }

    /// Enables or disables **word-packed path generation**
    /// ([`Enumeration::with_packed_frontiers`](crate::solver::Enumeration::with_packed_frontiers)).
    ///
    /// When enabled (the default for the four paper problems), the
    /// per-branch-node path enumerator runs its `F-STP` reverse BFS over
    /// `u64`-word bitsets, reuses cached per-level BFS trees across
    /// branch nodes whose removed-mask signature matches (counted in
    /// [`EnumStats::fstp_cache_hits`](crate::EnumStats::fstp_cache_hits)),
    /// and reconstructs all child paths of a branch node in one flat
    /// batch; when disabled, the per-vertex stamp/`Vec<bool>` reference
    /// enumerator runs instead. **Both modes must deliver byte-identical
    /// solution streams** — only the constant factor changes. Must be
    /// called before [`Self::prepare`]. The default ignores the hint.
    fn set_packed_frontiers(&mut self, on: bool) {
        let _ = on;
    }

    /// Captures the partial solution currently applied to the search
    /// state as a replayable [`SubtreeRecord`] — called from inside a
    /// `branch` callback at **any** depth: by the sharded front-end's
    /// root-child recording pass (depth 1) and by the work-stealing
    /// engine at arbitrary branch nodes. The captured state must be
    /// absolute (reproducible on a freshly prepared copy), not relative
    /// to the recorder's current descent.
    ///
    /// The default returns `None`, meaning the problem supports neither
    /// root-child replay nor work stealing: every shard worker
    /// regenerates the root's children itself (the pre-0.5 behavior) and
    /// subtrees never migrate.
    fn record_subtree(&self) -> Option<SubtreeRecord<Self::Item>> {
        None
    }

    /// Applies a recorded partial solution to a freshly prepared
    /// instance, invokes `child` on the resulting state, and retracts it
    /// — the replay half shared by the root child log and the
    /// work-stealing pool. Must leave the search state exactly as a
    /// locally generated descent to the recorded node would (the sharded
    /// and stolen streams are asserted byte-identical either way).
    ///
    /// Only called with records produced by [`Self::record_subtree`] on
    /// an identically prepared instance; the default therefore never
    /// runs.
    fn replay_subtree(
        &mut self,
        record: &SubtreeRecord<Self::Item>,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> ControlFlow<()>
    where
        Self: Sized,
    {
        let _ = (record, child);
        unreachable!("replay_subtree requires record_subtree support")
    }

    /// Caps the number of per-level path-enumeration BFS caches the
    /// problem preallocates in `prepare`
    /// ([`Enumeration::with_level_cache_cap`](crate::solver::Enumeration::with_level_cache_cap)).
    /// Levels beyond the cap are grown on demand (visible as
    /// [`EnumStats::scratch_allocs`](crate::stats::EnumStats)), so a
    /// small cap trades warm-up memory for growth events without
    /// changing results. Problems without a path-enumerator scratch
    /// ignore the hint.
    fn set_level_cache_cap(&mut self, cap: usize) {
        let _ = cap;
    }
}

/// Shared structural validation for the members of one terminal list or
/// set: all in range, no duplicates. (Emptiness is problem-specific:
/// forests allow empty sets.)
pub(crate) fn validate_terminal_members(
    terminals: &[VertexId],
    num_vertices: usize,
) -> Result<(), SteinerError> {
    for &w in terminals {
        if w.index() >= num_vertices {
            return Err(SteinerError::TerminalOutOfRange {
                terminal: w,
                num_vertices,
            });
        }
    }
    let mut sorted = terminals.to_vec();
    sorted.sort_unstable();
    for pair in sorted.windows(2) {
        if pair[0] == pair[1] {
            return Err(SteinerError::DuplicateTerminal(pair[0]));
        }
    }
    Ok(())
}

/// Shared structural validation for a list of terminals: non-empty, all in
/// range, no duplicates.
pub(crate) fn validate_terminal_list(
    terminals: &[VertexId],
    num_vertices: usize,
) -> Result<(), SteinerError> {
    if terminals.is_empty() {
        return Err(SteinerError::EmptyInstance);
    }
    validate_terminal_members(terminals, num_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let cases: Vec<(SteinerError, &str)> = vec![
            (SteinerError::EmptyInstance, "no terminals"),
            (SteinerError::DuplicateTerminal(VertexId(3)), "3"),
            (
                SteinerError::TerminalOutOfRange {
                    terminal: VertexId(9),
                    num_vertices: 4,
                },
                "9",
            ),
            (
                SteinerError::RootOutOfRange {
                    root: VertexId(7),
                    num_vertices: 2,
                },
                "7",
            ),
            (SteinerError::DisconnectedTerminals { set: 1 }, "set 1"),
            (SteinerError::UnreachableTerminal(VertexId(5)), "5"),
            (SteinerError::DeadlineExceeded, "deadline"),
            (
                SteinerError::AdmissionRejected {
                    in_flight: 8,
                    capacity: 8,
                },
                "8",
            ),
            (SteinerError::Unsupported("no directed view"), "directed"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
