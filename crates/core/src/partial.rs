//! Partial Steiner tree state.
//!
//! The paper's enumerators maintain a *partial Steiner tree* `T` (§4): a
//! tree all of whose leaves are terminals, grown one terminal-connecting
//! path at a time. This struct holds that state as a stack, supporting O(1)
//! amortized extension/retraction along a root-to-leaf walk of the
//! enumeration tree, exactly matching the paper's space accounting (the
//! global structures of Theorem 17's proof).

use steiner_graph::{EdgeId, VertexId};

/// A token recording what one [`PartialTree::extend_path`] call added, so
/// the exact state can be restored on backtrack.
#[derive(Copy, Clone, Debug)]
#[must_use = "pass the token back to retract()"]
pub struct Extension {
    added_vertices: usize,
    added_edges: usize,
}

/// The partial tree `T` (works for trees; the forest enumerator has its own
/// union–find-based state).
#[derive(Clone, Debug)]
pub struct PartialTree {
    /// `in_tree[v]` — whether `v ∈ V(T)`.
    pub in_tree: Vec<bool>,
    /// `V(T)` as a stack (insertion order).
    pub vertices: Vec<VertexId>,
    /// `E(T)` as a stack (insertion order).
    pub edges: Vec<EdgeId>,
    /// `is_terminal[v]` — whether `v ∈ W`.
    pub is_terminal: Vec<bool>,
    /// Number of terminals not yet in `T`.
    pub missing_terminals: usize,
}

impl PartialTree {
    /// Creates the root state `T = ({seed}, ∅)` (or the empty tree when
    /// `seed` is `None`, as the terminal variant's root requires).
    pub fn new(n: usize, terminals: &[VertexId], seed: Option<VertexId>) -> Self {
        let mut is_terminal = vec![false; n];
        for &w in terminals {
            is_terminal[w.index()] = true;
        }
        let mut t = PartialTree {
            in_tree: vec![false; n],
            vertices: Vec::new(),
            edges: Vec::new(),
            is_terminal,
            missing_terminals: terminals.len(),
        };
        if let Some(s) = seed {
            t.add_vertex(s);
        }
        t
    }

    fn add_vertex(&mut self, v: VertexId) {
        debug_assert!(!self.in_tree[v.index()]);
        self.in_tree[v.index()] = true;
        self.vertices.push(v);
        if self.is_terminal[v.index()] {
            self.missing_terminals -= 1;
        }
    }

    /// Extends `T` by a valid path. When `T` is nonempty,
    /// `path_vertices[0]` must already be in `T` (it is skipped); all other
    /// path vertices must be new. Returns the token for
    /// [`Self::retract`].
    pub fn extend_path(&mut self, path_vertices: &[VertexId], path_edges: &[EdgeId]) -> Extension {
        let start = if self.vertices.is_empty() {
            0
        } else {
            debug_assert!(
                self.in_tree[path_vertices[0].index()],
                "path must start inside T"
            );
            1
        };
        for &v in &path_vertices[start..] {
            self.add_vertex(v);
        }
        self.edges.extend_from_slice(path_edges);
        Extension {
            added_vertices: path_vertices.len() - start,
            added_edges: path_edges.len(),
        }
    }

    /// Undoes the matching [`Self::extend_path`] call (LIFO discipline).
    pub fn retract(&mut self, ext: Extension) {
        assert!(ext.added_edges <= self.edges.len(), "edge stack underflow");
        self.edges.truncate(self.edges.len() - ext.added_edges);
        assert!(
            ext.added_vertices <= self.vertices.len(),
            "vertex stack underflow"
        );
        let keep = self.vertices.len() - ext.added_vertices;
        for &v in &self.vertices[keep..] {
            self.in_tree[v.index()] = false;
            if self.is_terminal[v.index()] {
                self.missing_terminals += 1;
            }
        }
        self.vertices.truncate(keep);
    }

    /// Whether `T` already spans all terminals (and is thus a minimal
    /// Steiner tree by Proposition 3).
    pub fn complete(&self) -> bool {
        self.missing_terminals == 0
    }

    /// The smallest-id terminal not yet in `T`.
    pub fn first_missing_terminal(&self, terminals: &[VertexId]) -> Option<VertexId> {
        terminals.iter().copied().find(|w| !self.in_tree[w.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_and_retract_round_trip() {
        let terminals = [VertexId(0), VertexId(3)];
        let mut t = PartialTree::new(5, &terminals, Some(VertexId(0)));
        assert_eq!(t.missing_terminals, 1);
        let verts = [VertexId(0), VertexId(1), VertexId(3)];
        let edges = [EdgeId(0), EdgeId(1)];
        let ext = t.extend_path(&verts, &edges);
        assert!(t.complete());
        assert_eq!(t.edges.len(), 2);
        assert!(t.in_tree[1]);
        t.retract(ext);
        assert_eq!(t.missing_terminals, 1);
        assert!(!t.in_tree[1]);
        assert!(!t.in_tree[3]);
        assert_eq!(t.vertices, vec![VertexId(0)]);
        assert!(t.edges.is_empty());
    }

    #[test]
    fn seeding_an_empty_tree() {
        let terminals = [VertexId(1), VertexId(2)];
        let mut t = PartialTree::new(4, &terminals, None);
        assert!(t.vertices.is_empty());
        let verts = [VertexId(1), VertexId(0), VertexId(2)];
        let edges = [EdgeId(0), EdgeId(1)];
        let ext = t.extend_path(&verts, &edges);
        assert!(t.complete());
        t.retract(ext);
        assert!(t.vertices.is_empty());
        assert_eq!(t.missing_terminals, 2);
    }

    #[test]
    fn nested_extensions_restore_in_order() {
        let terminals = [VertexId(0), VertexId(2), VertexId(4)];
        let mut t = PartialTree::new(5, &terminals, Some(VertexId(0)));
        let e1 = t.extend_path(
            &[VertexId(0), VertexId(1), VertexId(2)],
            &[EdgeId(0), EdgeId(1)],
        );
        let e2 = t.extend_path(
            &[VertexId(2), VertexId(3), VertexId(4)],
            &[EdgeId(2), EdgeId(3)],
        );
        assert!(t.complete());
        t.retract(e2);
        assert_eq!(t.missing_terminals, 1);
        assert!(t.in_tree[2]);
        t.retract(e1);
        assert_eq!(t.missing_terminals, 2);
        assert_eq!(t.vertices, vec![VertexId(0)]);
    }

    #[test]
    fn first_missing_terminal_in_id_order() {
        let terminals = [VertexId(2), VertexId(4)];
        let t = PartialTree::new(6, &terminals, Some(VertexId(4)));
        assert_eq!(t.first_missing_terminal(&terminals), Some(VertexId(2)));
    }
}
