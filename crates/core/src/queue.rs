//! The output-queue method (Uno \[33\], Theorem 20 of the paper).
//!
//! The improved enumerators run in **amortized** O(n + m) time per solution
//! because their enumeration trees have at least as many leaves as internal
//! nodes. The delay, however, can still spike to Θ(|W|(n + m)) on a long
//! root-to-leaf descent. The paper fixes this by buffering the first `n`
//! solutions and thereafter releasing buffered solutions on a fixed
//! schedule tied to the traversal (rules R1–R3).
//!
//! We implement the schedule in its operational form (see DESIGN.md §9.2):
//! the enumerator reports *work units*; once the warm-up buffer is full,
//! the queue releases one solution every `budget` work units. Given the
//! amortized bound and the ≥2-children invariant, the buffer can never run
//! dry before the enumeration ends — the exact property Theorem 20 proves
//! for rules R1–R3 — and the maximum release gap is directly measurable.
//! Space: the buffer holds O(n) solutions of O(n) edges each, the paper's
//! O(n²) bound.
//!
//! Everything is generic over the solution item type (`EdgeId` for the
//! undirected problems, `ArcId` for directed Steiner trees).

use std::collections::VecDeque;
use std::ops::ControlFlow;

/// How enumerators hand solutions onward: either directly to the user sink
/// (amortized-time mode) or through an [`OutputQueue`] (linear-delay mode).
pub trait SolutionSink<Id: Copy> {
    /// A solution was found at work-counter value `work`.
    fn solution(&mut self, items: &[Id], work: u64) -> ControlFlow<()>;
    /// Periodic progress notification (called at least once per enumeration
    /// tree node).
    fn tick(&mut self, work: u64) -> ControlFlow<()> {
        let _ = work;
        ControlFlow::Continue(())
    }
    /// The enumeration finished; flush anything buffered.
    fn finish(&mut self) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// Pass-through sink: emits each solution the moment it is found.
pub struct DirectSink<'a, Id: Copy> {
    /// The user-facing sink.
    pub sink: &'a mut dyn FnMut(&[Id]) -> ControlFlow<()>,
}

impl<Id: Copy> SolutionSink<Id> for DirectSink<'_, Id> {
    fn solution(&mut self, items: &[Id], _work: u64) -> ControlFlow<()> {
        (self.sink)(items)
    }
}

/// Tuning for [`OutputQueue`].
#[derive(Copy, Clone, Debug)]
pub struct QueueConfig {
    /// Warm-up buffer size; the paper uses `n` (number of vertices).
    pub warmup: usize,
    /// Work units between releases; the paper uses Θ(n + m).
    pub budget: u64,
    /// Hard cap on buffered solutions — the paper's rule R3 outputs a
    /// solution directly once the queue holds `3n/2` of them, which is
    /// what keeps the space at O(n) solutions (O(n²) words).
    pub max_buffer: usize,
}

impl QueueConfig {
    /// The paper's parameters for a graph with `n` vertices and `m` edges:
    /// warm-up `n`, budget `c · (n + m)` with a small constant, buffer cap
    /// `3n/2` (rule R3).
    pub fn for_graph(n: usize, m: usize) -> Self {
        QueueConfig {
            warmup: n.max(1),
            budget: (4 * (n + m) as u64).max(1),
            max_buffer: (3 * n / 2).max(2),
        }
    }
}

/// The output queue: buffers solutions and releases them on the work-unit
/// schedule, bounding the delay between consecutive emissions.
pub struct OutputQueue<'a, Id: Copy> {
    sink: &'a mut dyn FnMut(&[Id]) -> ControlFlow<()>,
    config: QueueConfig,
    buffer: VecDeque<Vec<Id>>,
    last_release_work: u64,
    /// Total number of solutions pushed (for warm-up accounting).
    pushed: u64,
    /// Largest number of buffered solutions seen (space accounting).
    pub peak_buffered: usize,
}

impl<'a, Id: Copy> OutputQueue<'a, Id> {
    /// Wraps `sink` with the queue.
    pub fn new(config: QueueConfig, sink: &'a mut dyn FnMut(&[Id]) -> ControlFlow<()>) -> Self {
        OutputQueue {
            sink,
            config,
            buffer: VecDeque::new(),
            last_release_work: 0,
            pushed: 0,
            peak_buffered: 0,
        }
    }

    fn release_due(&mut self, work: u64) -> ControlFlow<()> {
        // Warm-up: hold the first `warmup` solutions entirely. After a
        // release the clock **snaps to the current work counter** — the
        // earlier `last_release_work += budget` schedule let a long
        // release-free branch build up credit and then burst several
        // solutions back to back, draining the buffer that exists to
        // guarantee the worst-case gap. At most one solution is released
        // per due check, so consecutive *scheduled* releases are always at
        // least `budget` work units apart.
        //
        // Note the contract precisely: the queue bounds the **maximum**
        // gap. When the enumerator produces faster than one solution per
        // `budget` (common under `QueueConfig::for_graph`, whose budget is
        // a conservative multiple of the amortized rate), the buffer fills
        // and rule R3 below sheds load by emitting directly — those
        // overflow emissions may be arbitrarily close together. That is
        // the paper's design (extra emissions only shrink gaps and keep
        // space at O(n) solutions); the minimum-gap property applies to
        // the scheduled path only.
        if self.pushed > self.config.warmup as u64
            && !self.buffer.is_empty()
            && work.saturating_sub(self.last_release_work) >= self.config.budget
        {
            let sol = self.buffer.pop_front().expect("nonempty buffer");
            self.last_release_work = work;
            (self.sink)(&sol)?;
        }
        ControlFlow::Continue(())
    }
}

impl<Id: Copy> SolutionSink<Id> for OutputQueue<'_, Id> {
    fn solution(&mut self, items: &[Id], work: u64) -> ControlFlow<()> {
        self.buffer.push_back(items.to_vec());
        self.pushed += 1;
        if self.buffer.len() > self.peak_buffered {
            self.peak_buffered = self.buffer.len();
        }
        if self.pushed == self.config.warmup as u64 + 1 {
            // Warm-up just ended; start the release clock now.
            self.last_release_work = work;
        }
        self.release_due(work)?;
        // Rule R3's overflow clause: never hold more than `max_buffer`
        // solutions — release the oldest immediately (an extra emission
        // can only shrink gaps, so the delay bound is unaffected).
        while self.buffer.len() > self.config.max_buffer {
            let sol = self.buffer.pop_front().expect("nonempty buffer");
            self.last_release_work = work;
            (self.sink)(&sol)?;
        }
        ControlFlow::Continue(())
    }

    fn tick(&mut self, work: u64) -> ControlFlow<()> {
        if self.pushed > self.config.warmup as u64 {
            self.release_due(work)?;
        }
        ControlFlow::Continue(())
    }

    fn finish(&mut self) -> ControlFlow<()> {
        while let Some(sol) = self.buffer.pop_front() {
            (self.sink)(&sol)?;
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::EdgeId;

    fn run_schedule(
        config: QueueConfig,
        events: &[(&str, u64)], // ("sol" | "tick" | "finish", work)
    ) -> Vec<usize> {
        // Returns, for each released solution, the index it was pushed with.
        let mut released = Vec::new();
        let mut sink = |edges: &[EdgeId]| {
            released.push(edges[0].index());
            ControlFlow::Continue(())
        };
        let mut q = OutputQueue::new(config, &mut sink);
        let mut next_id = 0usize;
        for &(kind, work) in events {
            match kind {
                "sol" => {
                    let _ = q.solution(&[EdgeId::new(next_id)], work);
                    next_id += 1;
                }
                "tick" => {
                    let _ = q.tick(work);
                }
                "finish" => {
                    let _ = q.finish();
                }
                _ => unreachable!(),
            }
        }
        released
    }

    #[test]
    fn warmup_holds_first_solutions() {
        let cfg = QueueConfig {
            warmup: 3,
            budget: 10,
            max_buffer: 100,
        };
        let released = run_schedule(cfg, &[("sol", 1), ("sol", 2), ("sol", 3), ("tick", 100)]);
        assert!(released.is_empty(), "still inside warm-up");
    }

    #[test]
    fn releases_on_budget_after_warmup() {
        let cfg = QueueConfig {
            warmup: 2,
            budget: 10,
            max_buffer: 100,
        };
        let released = run_schedule(
            cfg,
            &[
                ("sol", 0),
                ("sol", 0),
                ("sol", 5),   // warm-up ends here; clock starts at 5
                ("tick", 14), // 9 < 10: nothing
                ("tick", 15), // 10 elapsed: release #0
                ("tick", 25), // another 10: release #1
            ],
        );
        assert_eq!(released, vec![0, 1]);
    }

    #[test]
    fn finish_flushes_everything() {
        let cfg = QueueConfig {
            warmup: 5,
            budget: 1000,
            max_buffer: 100,
        };
        let released = run_schedule(cfg, &[("sol", 1), ("sol", 2), ("finish", 0)]);
        assert_eq!(released, vec![0, 1]);
    }

    #[test]
    fn accumulated_credit_does_not_burst() {
        // A long release-free stretch must NOT be repaid as a burst: one
        // release per due check, clock snapped to the current work.
        let cfg = QueueConfig {
            warmup: 1,
            budget: 10,
            max_buffer: 100,
        };
        let released = run_schedule(
            cfg,
            &[
                ("sol", 0),
                ("sol", 0),
                ("sol", 0),
                ("sol", 0),
                ("tick", 35), // 3 budgets elapsed — still a single release
                ("tick", 36), // 1 < budget since the snap: nothing
                ("tick", 45), // 10 elapsed: next release
            ],
        );
        assert_eq!(released, vec![0, 1]);
    }

    #[test]
    fn scheduled_releases_are_at_least_a_budget_apart() {
        // The worst-case-delay contract in its minimum-gap form: between
        // consecutive *scheduled* releases at least `budget` work units
        // elapse (warm-up-end flush and `finish` are exempt by design).
        let cfg = QueueConfig {
            warmup: 2,
            budget: 25,
            max_buffer: 1000,
        };
        let release_works: std::cell::RefCell<Vec<u64>> = std::cell::RefCell::new(Vec::new());
        let current_work = std::cell::Cell::new(0u64);
        {
            let mut sink = |_: &[EdgeId]| {
                release_works.borrow_mut().push(current_work.get());
                ControlFlow::Continue(())
            };
            let mut q = OutputQueue::new(cfg, &mut sink);
            let mut work = 0u64;
            // Emit solutions frequently, tick with irregular (sometimes
            // huge) work jumps to try to provoke a burst.
            for step in 0..200u64 {
                work += if step % 13 == 0 { 95 } else { 3 };
                current_work.set(work);
                if step % 4 == 0 {
                    let _ = q.solution(&[EdgeId::new(step as usize)], work);
                } else {
                    let _ = q.tick(work);
                }
            }
        }
        let release_works = release_works.into_inner();
        assert!(release_works.len() > 2, "schedule actually released");
        for pair in release_works.windows(2) {
            assert!(
                pair[1] - pair[0] >= cfg.budget,
                "releases at work {} and {} are closer than budget {}",
                pair[0],
                pair[1],
                cfg.budget
            );
        }
    }

    #[test]
    fn direct_sink_passes_through() {
        let mut got = Vec::new();
        let mut sink = |edges: &[EdgeId]| {
            got.push(edges.to_vec());
            ControlFlow::Continue(())
        };
        let mut direct = DirectSink { sink: &mut sink };
        let _ = direct.solution(&[EdgeId(7)], 0);
        let _ = direct.tick(5);
        let _ = SolutionSink::<EdgeId>::finish(&mut direct);
        assert_eq!(got, vec![vec![EdgeId(7)]]);
    }

    #[test]
    fn break_propagates() {
        let mut calls = 0;
        let mut sink = |_: &[EdgeId]| {
            calls += 1;
            ControlFlow::Break(())
        };
        let mut q = OutputQueue::new(
            QueueConfig {
                warmup: 0,
                budget: 1,
                max_buffer: 100,
            },
            &mut sink,
        );
        let _ = q.solution(&[EdgeId(0)], 0);
        let flow = q.solution(&[EdgeId(1)], 100);
        assert!(flow.is_break());
        assert!(calls >= 1);
    }
}
