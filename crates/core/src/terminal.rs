//! Minimal terminal Steiner tree enumeration (§5.1, Theorems 29 & 31).
//!
//! A terminal Steiner tree is a Steiner tree in which **every terminal is a
//! leaf** (Proposition 26 characterizes the minimal ones: every terminal is
//! a leaf *and* every leaf is a terminal). For |W| = 2 the problem is plain
//! `s`-`t` path enumeration. For |W| ≥ 3, Lemma 27 says solutions use no
//! terminal-terminal edge and live inside `G[C ∪ W]` for a single
//! component `C` of `G[V ∖ W]` with `W ⊆ N(C)` — so we
//!
//! 1. build a *cleaned* copy of `G` without terminal-terminal edges
//!    (remembering original edge ids for emission),
//! 2. enumerate each admissible component independently, and
//! 3. inside a component run the improved branching: per node, grow a
//!    minimal terminal completion `T′ ⊇ T` (a spanning tree of `C`
//!    containing `T ∩ C`, one leaf edge per missing terminal, then
//!    Proposition 26 pruning), scan `E(T′) ∖ E(T)` against the bridges of
//!    `G[C ∪ W]` (Lemma 30), and either branch on a terminal behind a
//!    non-bridge edge or emit the unique completion.
//!
//! The root of each component tree (case (1): the `w₀`-`w₁` paths of an
//! empty partial tree) may legitimately have one child; the paper treats
//! it as "linear-time preprocessing", and it is the one exception to the
//! ≥2-children invariant that the stats report.

use crate::improved::find_terminal_beyond;
use crate::partial::PartialTree;
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::simple::normalize_terminals;
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::bridges::bridges;
use steiner_graph::connectivity::connected_components;
use steiner_graph::spanning::{grow_spanning_tree, prune_leaves};
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
use steiner_paths::stsets::SourceSetInstance;
use steiner_paths::undirected::enumerate_st_paths;

/// `G` with all terminal-terminal edges removed, keeping original ids.
struct CleanedGraph {
    graph: UndirectedGraph,
    orig_edge: Vec<EdgeId>,
}

fn clean_graph(g: &UndirectedGraph, is_terminal: &[bool]) -> CleanedGraph {
    let mut graph = UndirectedGraph::with_capacity(g.num_vertices(), g.num_edges());
    let mut orig_edge = Vec::with_capacity(g.num_edges());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if is_terminal[u.index()] && is_terminal[v.index()] {
            continue; // Lemma 27: never part of a solution when |W| ≥ 3
        }
        graph.add_edge(u, v).expect("cleaned edge is valid");
        orig_edge.push(e);
    }
    CleanedGraph { graph, orig_edge }
}

struct TerminalEnumerator<'c, 'a> {
    gc: &'c UndirectedGraph,
    orig_edge: &'c [EdgeId],
    terminals: &'c [VertexId],
    /// `comp_mask[v]` — whether `v` belongs to the current component `C`.
    comp_mask: &'c [bool],
    /// Bridges of `G[C ∪ W]` (cleaned graph, masked) — fixed per component.
    bridge: Vec<bool>,
    t: PartialTree,
    edge_in_t: Vec<bool>,
    stats: EnumStats,
    scratch: Vec<EdgeId>,
    emitter: &'a mut dyn SolutionSink<EdgeId>,
}

impl TerminalEnumerator<'_, '_> {
    fn emit(&mut self, edges: &[EdgeId]) -> ControlFlow<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(edges.iter().map(|e| self.orig_edge[e.index()]));
        scratch.sort_unstable();
        self.stats.note_emission();
        let flow = self.emitter.solution(&scratch, self.stats.work);
        self.scratch = scratch;
        flow
    }

    /// A minimal terminal Steiner tree `T′ ⊇ T` (Lemma 28's construction).
    fn minimal_completion(&mut self) -> Vec<EdgeId> {
        let n = self.gc.num_vertices();
        self.stats.work += (n + self.gc.num_edges()) as u64;
        // Stage 1: span C from the non-terminal part of T.
        let seeds: Vec<VertexId> =
            self.t.vertices.iter().copied().filter(|v| self.comp_mask[v.index()]).collect();
        debug_assert!(!seeds.is_empty(), "a nonempty partial tree touches C");
        let grown = grow_spanning_tree(self.gc, &seeds, &self.t.edges, Some(self.comp_mask));
        let mut edges = grown.edges;
        // Stage 2: one leaf edge per missing terminal.
        for &w in self.terminals {
            if self.t.in_tree[w.index()] {
                continue;
            }
            let leaf_edge = self
                .gc
                .neighbors(w)
                .filter(|(v, _)| self.comp_mask[v.index()])
                .map(|(_, e)| e)
                .min()
                .expect("W ⊆ N(C) guarantees an attachment edge");
            edges.push(leaf_edge);
        }
        // Stage 3: prune non-terminal leaves (Proposition 26).
        let is_terminal = &self.t.is_terminal;
        let in_tree = &self.t.in_tree;
        prune_leaves(self.gc, &edges, |v| is_terminal[v.index()] || in_tree[v.index()])
    }

    /// Exact test: does `w` have at least two valid paths? A valid path is
    /// an `(V(T) ∖ W)`-`w` path inside `G[C ∪ {w}]`. We apply Lemma 16 to
    /// the graph augmented with a super-source wired to the source set by
    /// one parallel edge per boundary edge: the valid path is unique iff
    /// every edge of one super-source-to-`w` path is a bridge there.
    ///
    /// Note: this is stricter than the paper's Lemma 30 test (bridges of
    /// `G[C ∪ W]`). That test can report a spurious second path whose
    /// rerouting cycle passes through *another terminal* — which valid
    /// paths must avoid. See DESIGN.md §9.6 (erratum note).
    fn has_two_valid_paths(&mut self, w: VertexId) -> bool {
        let n = self.gc.num_vertices();
        self.stats.work += (n + self.gc.num_edges()) as u64;
        // Vertices 0..n are gc's; vertex n is the super-source.
        let mut aug = UndirectedGraph::new(n + 1);
        let super_source = VertexId::new(n);
        let in_c_or_w =
            |v: VertexId| self.comp_mask[v.index()] || v == w;
        let source = |v: VertexId| self.t.in_tree[v.index()] && self.comp_mask[v.index()];
        for e in self.gc.edges() {
            let (u, v) = self.gc.endpoints(e);
            match (source(u), source(v)) {
                (true, true) => {}
                (true, false) if in_c_or_w(v) => {
                    aug.add_edge(super_source, v).expect("augmented edge");
                }
                (false, true) if in_c_or_w(u) => {
                    aug.add_edge(super_source, u).expect("augmented edge");
                }
                (false, false) if in_c_or_w(u) && in_c_or_w(v) => {
                    aug.add_edge(u, v).expect("augmented edge");
                }
                _ => {}
            }
        }
        let forest = steiner_graph::traversal::bfs(&aug, &[super_source], None);
        if !forest.visited[w.index()] {
            return false; // no valid path at all (cannot happen mid-run)
        }
        let bridge = bridges(&aug, None);
        let (_, path_edges) = steiner_graph::traversal::forest_path_to(&forest, w)
            .expect("w is reachable from the super-source");
        // Unique iff every edge of this path is a bridge (Lemma 16 with
        // T = {super-source}).
        !path_edges.iter().all(|e| bridge[e.index()])
    }

    fn recurse(&mut self, depth: u32) -> ControlFlow<()> {
        self.emitter.tick(self.stats.work)?;
        if self.t.complete() {
            self.stats.note_node(0, depth);
            let edges = self.t.edges.clone();
            return self.emit(&edges);
        }
        let tprime = self.minimal_completion();
        // Fast certificate (Lemma 30 direction that *is* sound): if every
        // edge of E(T') ∖ E(T) is a bridge of G[C ∪ W], the completion is
        // unique.
        let candidate = tprime
            .iter()
            .copied()
            .find(|e| !self.edge_in_t[e.index()] && !self.bridge[e.index()]);
        let branch_terminal = match candidate {
            None => None,
            Some(e_star) => {
                // Primary candidate: the terminal behind the non-bridge
                // edge; verified exactly, with a fallback scan over the
                // remaining missing terminals (the Lemma 30 erratum case).
                let primary = find_terminal_beyond(
                    self.gc,
                    &tprime,
                    e_star,
                    &self.t.in_tree,
                    &self.t.is_terminal,
                    &mut self.stats.work,
                );
                if self.has_two_valid_paths(primary) {
                    Some(primary)
                } else {
                    let missing: Vec<VertexId> = self
                        .terminals
                        .iter()
                        .copied()
                        .filter(|v| !self.t.in_tree[v.index()] && *v != primary)
                        .collect();
                    missing.into_iter().find(|&w| self.has_two_valid_paths(w))
                }
            }
        };
        let Some(w) = branch_terminal else {
            // No terminal branches: the completion is unique.
            self.stats.note_node(0, depth);
            return self.emit(&tprime);
        };
        // Valid paths for (T, w): (V(T) ∖ W)-w paths inside G[C ∪ {w}].
        let n = self.gc.num_vertices();
        let mut sources = vec![false; n];
        for &v in &self.t.vertices {
            if self.comp_mask[v.index()] {
                sources[v.index()] = true;
            }
        }
        let mut allowed: Vec<bool> = self.comp_mask.to_vec();
        allowed[w.index()] = true;
        let inst = SourceSetInstance::new(self.gc, &sources, Some(&allowed));
        self.stats.work += (n + self.gc.num_edges()) as u64;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let per_child = (n + self.gc.num_edges()) as u64;
        let _pstats = inst.enumerate(w, &mut |p| {
            children += 1;
            self.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let edges = p.edges.to_vec();
            let ext = self.t.extend_path(&verts, &edges);
            for &e in &edges {
                self.edge_in_t[e.index()] = true;
            }
            let f = self.recurse(depth + 1);
            for &e in &edges {
                self.edge_in_t[e.index()] = false;
            }
            self.t.retract(ext);
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        self.stats.note_node(children, depth);
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 30 guarantees two valid paths behind a non-bridge edge"
        );
        flow
    }
}

/// Enumerates all minimal terminal Steiner trees of `(g, terminals)`
/// through an arbitrary [`SolutionSink`].
///
/// Degenerate cases: |W| ≤ 1 has no solutions (every tree has a
/// non-terminal leaf); |W| = 2 reduces to `s`-`t` path enumeration.
pub fn enumerate_minimal_terminal_steiner_trees_with(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    let terminals = normalize_terminals(terminals);
    let mut stats = EnumStats::default();
    stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
    if terminals.len() < 2 {
        return stats;
    }
    if terminals.len() == 2 {
        // Minimal terminal Steiner trees with two terminals are exactly the
        // w₀-w₁ paths (§5.1).
        let mut scratch: Vec<EdgeId> = Vec::new();
        let mut result = EnumStats::default();
        let pstats = enumerate_st_paths(g, terminals[0], terminals[1], None, &mut |p| {
            scratch.clear();
            scratch.extend_from_slice(p.edges);
            scratch.sort_unstable();
            result.note_emission();
            result.note_node(0, 0);
            emitter.solution(&scratch, result.work)
        });
        result.work = pstats.work;
        let _ = emitter.finish();
        result.note_end();
        return result;
    }
    // |W| ≥ 3: clean the graph, split into admissible components.
    let n = g.num_vertices();
    let mut is_terminal = vec![false; n];
    for &w in &terminals {
        is_terminal[w.index()] = true;
    }
    let cleaned = clean_graph(g, &is_terminal);
    let gc = &cleaned.graph;
    let non_terminal_mask: Vec<bool> = (0..n).map(|v| !is_terminal[v]).collect();
    let comps = connected_components(gc, Some(&non_terminal_mask));
    stats.preprocessing_work += (n + gc.num_edges()) as u64;
    let mut enumerator_stats = stats;
    for c in 0..comps.count {
        // Admissibility: W ⊆ N(C) (Lemma 27).
        let comp_mask: Vec<bool> = (0..n).map(|v| comps.comp[v] == Some(c as u32)).collect();
        let mut covered = vec![false; n];
        let mut cover_count = 0usize;
        for (v, &in_comp) in comp_mask.iter().enumerate() {
            if !in_comp {
                continue;
            }
            for (u, _) in gc.neighbors(VertexId::new(v)) {
                if is_terminal[u.index()] && !covered[u.index()] {
                    covered[u.index()] = true;
                    cover_count += 1;
                }
            }
        }
        enumerator_stats.preprocessing_work += (n + gc.num_edges()) as u64;
        if cover_count < terminals.len() {
            continue; // W ⊄ N(C): no solutions in this component
        }
        // Bridges of G[C ∪ W] — fixed for the whole component (Lemma 30).
        let mut allowed_cw: Vec<bool> = comp_mask.clone();
        for &w in &terminals {
            allowed_cw[w.index()] = true;
        }
        let bridge = bridges(gc, Some(&allowed_cw));
        // Case (1): the root branches on the w₀-w₁ paths inside G[C ∪ {w₀, w₁}].
        let (w0, w1) = (terminals[0], terminals[1]);
        let mut allowed01 = comp_mask.clone();
        allowed01[w0.index()] = true;
        allowed01[w1.index()] = true;
        let mut e = TerminalEnumerator {
            gc,
            orig_edge: &cleaned.orig_edge,
            terminals: &terminals,
            comp_mask: &comp_mask,
            bridge,
            t: PartialTree::new(n, &terminals, None),
            edge_in_t: vec![false; gc.num_edges()],
            stats: enumerator_stats,
            scratch: Vec::new(),
            emitter: &mut *emitter,
        };
        let mut root_children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let per_child = (n + gc.num_edges()) as u64;
        let _pstats = enumerate_st_paths(gc, w0, w1, Some(&allowed01), &mut |p| {
            root_children += 1;
            e.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let edges = p.edges.to_vec();
            let ext = e.t.extend_path(&verts, &edges);
            for &edge in &edges {
                e.edge_in_t[edge.index()] = true;
            }
            let f = e.recurse(1);
            for &edge in &edges {
                e.edge_in_t[edge.index()] = false;
            }
            e.t.retract(ext);
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        e.stats.note_node(root_children, 0);
        enumerator_stats = e.stats;
        if flow.is_break() {
            enumerator_stats.note_end();
            return enumerator_stats;
        }
    }
    let _ = emitter.finish();
    enumerator_stats.note_end();
    enumerator_stats
}

/// Enumerates all minimal terminal Steiner trees with amortized O(n + m)
/// time per solution (Theorem 31), emitting directly.
///
/// ```
/// use steiner_core::terminal::enumerate_minimal_terminal_steiner_trees;
/// use steiner_graph::{UndirectedGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// // Star: terminals 1, 2, 3 must all be leaves; the full star is the
/// // unique solution.
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
/// let w = [VertexId(1), VertexId(2), VertexId(3)];
/// let mut count = 0;
/// enumerate_minimal_terminal_steiner_trees(&g, &w, &mut |tree| {
///     assert_eq!(tree.len(), 3);
///     count += 1;
///     ControlFlow::Continue(())
/// });
/// assert_eq!(count, 1);
/// ```
pub fn enumerate_minimal_terminal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    enumerate_minimal_terminal_steiner_trees_with(g, terminals, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay (Theorem 31).
pub fn enumerate_minimal_terminal_steiner_trees_queued(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut queue = OutputQueue::new(config, sink);
    enumerate_minimal_terminal_steiner_trees_with(g, terminals, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> BTreeSet<Vec<EdgeId>> {
        let mut out = BTreeSet::new();
        enumerate_minimal_terminal_steiner_trees(g, w, &mut |edges| {
            assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn two_terminals_are_paths() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = [VertexId(0), VertexId(2)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn direct_terminal_edge_counts_for_two() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        let got = collect(&g, &[VertexId(0), VertexId(1)]);
        assert_eq!(got.len(), 1, "single edge is a valid 2-terminal solution");
    }

    #[test]
    fn star_with_three_terminals() {
        // Center 0, terminals 1, 2, 3: the star is the unique solution.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let w = [VertexId(1), VertexId(2), VertexId(3)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn terminal_terminal_edges_are_ignored() {
        // Terminals 1, 2, 3 around center 0, plus edge {1, 2} which no
        // solution may use (Lemma 27).
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let w = [VertexId(1), VertexId(2), VertexId(3)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        for sol in &got {
            assert!(!sol.contains(&EdgeId(3)));
        }
    }

    #[test]
    fn multiple_components_enumerate_separately() {
        // Terminals 0, 1, 2; two internal "hubs" 3 and 4, each adjacent to
        // all terminals: two disjoint component solutions.
        let g = UndirectedGraph::from_edges(
            5,
            &[(3, 0), (3, 1), (3, 2), (4, 0), (4, 1), (4, 2)],
        )
        .unwrap();
        let w = [VertexId(0), VertexId(1), VertexId(2)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn single_terminal_has_no_solutions() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(collect(&g, &[VertexId(0)]).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e51);
        for case in 0..60 {
            let n = 4 + case % 5;
            let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            assert_eq!(
                collect(&g, &w),
                brute::minimal_terminal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    #[test]
    fn outputs_verify_minimal_terminal() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let mut count = 0;
        enumerate_minimal_terminal_steiner_trees(&g, &w, &mut |edges| {
            count += 1;
            assert!(crate::verify::is_minimal_terminal_steiner_tree(&g, &w, edges));
            ControlFlow::Continue(())
        });
        assert!(count > 0);
    }

    #[test]
    fn queued_matches_direct() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let direct = collect(&g, &w);
        let mut queued = BTreeSet::new();
        enumerate_minimal_terminal_steiner_trees_queued(&g, &w, None, &mut |edges| {
            assert!(queued.insert(edges.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(direct, queued);
    }
}
