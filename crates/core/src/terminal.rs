//! Minimal terminal Steiner tree enumeration (§5.1, Theorems 29 & 31),
//! exposed as the [`TerminalSteinerTree`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! A terminal Steiner tree is a Steiner tree in which **every terminal is a
//! leaf** (Proposition 26 characterizes the minimal ones: every terminal is
//! a leaf *and* every leaf is a terminal). For |W| = 2 the problem is plain
//! `s`-`t` path enumeration. For |W| ≥ 3, Lemma 27 says solutions use no
//! terminal-terminal edge and live inside `G[C ∪ W]` for a single
//! component `C` of `G[V ∖ W]` with `W ⊆ N(C)` — so `prepare`
//!
//! 1. builds a *cleaned* copy of `G` without terminal-terminal edges
//!    (remembering original edge ids for emission), and
//! 2. splits it into admissible components, each with its own bridge set
//!    and precomputed vertex masks.
//!
//! The engine's root node branches over all admissible components (the
//! [`TerminalBranch::Root`] target: the `w₀`-`w₁` paths of an empty
//! partial tree, per component); deeper nodes run the improved branching:
//! grow a minimal terminal completion `T′ ⊇ T` (a spanning tree of `C`
//! containing `T ∩ C`, one leaf edge per missing terminal, then
//! Proposition 26 pruning), scan `E(T′) ∖ E(T)` against the bridges of
//! `G[C ∪ W]` (Lemma 30), and either branch on a terminal behind a
//! non-bridge edge or emit the unique completion.
//!
//! The root (case (1) of the paper) may legitimately have one child; the
//! paper treats it as "linear-time preprocessing", and it is the one
//! exception to the ≥2-children invariant that the stats report.
//!
//! Hot-path state management follows the engine-wide zero-allocation
//! discipline: the cleaned graph's CSR and doubled-CSR views, all vertex
//! masks (including the per-component `G[C ∪ {w₀, w₁}]` masks) and the
//! augmented-graph scratch of the exact two-paths test are built once in
//! `prepare()`; `branch` snapshots and rolls back through the [`Trail`]
//! instead of cloning component masks.

use crate::improved::{find_terminal_beyond_csr, BeyondScratch, BranchScratch};
use crate::partial::{Extension, PartialTree};
use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError, SubtreeRecord};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::simple::normalize_terminals;
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use crate::trail::{FrameLog, ScratchUsage, Trail, TrailMark};
use std::borrow::Cow;
use std::ops::ControlFlow;
use std::sync::Arc;
use steiner_graph::bridges::{bridges_csr_into, BridgeScratch};
use steiner_graph::connectivity::{all_in_one_component, connected_components};
use steiner_graph::csr::grow;
use steiner_graph::spanning::{
    grow_spanning_tree_csr, prune_leaves_csr, CompletionScratch, DynamicSpanning, SpanMark,
};
use steiner_graph::{CsrDigraph, CsrUndirected, EdgeId, UndirectedGraph, VertexId};
use steiner_paths::enumerate::{EnumerateOptions, PathScratch};
use steiner_paths::stsets::enumerate_source_set_paths_csr;

/// Branch targets of the terminal variant: the component-and-first-path
/// root expansion, or a missing terminal with ≥ 2 valid paths.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TerminalBranch {
    /// The root node: branch over every admissible component's `w₀`-`w₁`
    /// paths (|W| = 2: over the `w₀`-`w₁` paths of `G` itself).
    Root,
    /// A missing terminal with at least two valid paths.
    Terminal(VertexId),
}

/// The minimal terminal Steiner tree problem (§5.1): find all
/// inclusion-minimal Steiner trees in which every terminal is a leaf.
///
/// ```
/// use steiner_core::{Enumeration, TerminalSteinerTree};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// // Star: terminals 1, 2, 3 must all be leaves; the full star is the
/// // unique solution.
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
/// let w = [VertexId(1), VertexId(2), VertexId(3)];
/// let trees = Enumeration::new(TerminalSteinerTree::new(&g, &w)).collect_vec().unwrap();
/// assert_eq!(trees.len(), 1);
/// assert_eq!(trees[0].len(), 3);
/// ```
pub struct TerminalSteinerTree<'g> {
    g: Cow<'g, UndirectedGraph>,
    terminals: Vec<VertexId>,
    stats: EnumStats,
    search: Option<TerminalSearch>,
    level_cache_cap: Option<usize>,
    incremental: bool,
    packed: bool,
}

/// The typed checkpoint frame of one descent in component mode.
struct TermFrame {
    ext: Extension,
    trail: TrailMark,
    span: SpanMark,
}

enum TerminalSearch {
    /// |W| = 2: solutions are exactly the `w₀`-`w₁` paths of `G`.
    TwoTerminals(Box<TwoTerminalSearch>),
    /// |W| ≥ 3: per-component search over the cleaned graph.
    Components(Box<ComponentSearch>),
}

/// |W| = 2 search state: one doubled CSR of `G` plus a path scratch (the
/// root is the only branch, so no depth pool is needed).
struct TwoTerminalSearch {
    doubled: Arc<CsrDigraph>,
    path: PathScratch,
    boundary: Vec<(VertexId, steiner_graph::ArcId)>,
    /// The path currently being emitted (set during the root branch).
    current: Vec<EdgeId>,
    active: bool,
    baseline_allocs: u64,
}

impl TwoTerminalSearch {
    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.doubled.alloc_events() + self.path.alloc_events(),
            self.doubled.capacity_bytes()
                + self.path.capacity_bytes()
                + (self.boundary.capacity()
                    * std::mem::size_of::<(VertexId, steiner_graph::ArcId)>()
                    + self.current.capacity() * std::mem::size_of::<EdgeId>())
                    as u64,
        )
    }
}

struct ComponentSearch {
    /// `G` with all terminal-terminal edges removed (Lemma 27), same
    /// vertex ids as `G`, as a flat CSR view.
    gc: CsrUndirected,
    /// Doubled CSR of the cleaned graph (shared with nested branches).
    gc_doubled: Arc<CsrDigraph>,
    /// For each cleaned edge: the original edge id (for emission).
    orig_edge: Vec<EdgeId>,
    /// The admissible components (`W ⊆ N(C)`).
    comps: Vec<ComponentCtx>,
    /// Index into `comps` of the component being enumerated; set by the
    /// root branch.
    active: Option<usize>,
    t: PartialTree,
    edge_in_t: Vec<bool>,
    /// Undo log for `edge_in_t`.
    trail: Trail,
    /// Incremental connectivity over the active component's bridge
    /// skeleton (bridges of `G[C ∪ W]`, terminals as barriers): a missing
    /// terminal reached from `V(T) ∩ C` here has a unique valid path, so
    /// an all-reached node is a Unique leaf without a completion pass.
    span: DynamicSpanning,
    /// Which component `span`'s skeleton currently describes.
    span_comp: Option<usize>,
    /// Typed checkpoint frames of the active descent (LIFO).
    frames: FrameLog<TermFrame>,
    completion: CompletionScratch,
    beyond: BeyondScratch,
    /// Seed buffer for the minimal completion (`V(T) ∩ C`).
    seeds: Vec<VertexId>,
    aug: AugScratch,
    pool: Vec<BranchScratch>,
    depth: usize,
    /// Per-level BFS cache preallocation cap for pool growth.
    level_cache_cap: usize,
    extra_allocs: u64,
    baseline_allocs: u64,
}

struct ComponentCtx {
    /// `comp_mask[v]` — whether `v` belongs to this component `C`.
    comp_mask: Vec<bool>,
    /// `comp_mask` plus `{w₀, w₁}`: the vertex set of the root expansion's
    /// `G[C ∪ {w₀, w₁}]` (precomputed — the root no longer clones masks).
    allowed01: Vec<bool>,
    /// Bridges of `G[C ∪ W]` (cleaned graph, masked) — fixed per component
    /// (Lemma 30).
    bridge: Vec<bool>,
}

/// Reusable buffers for the exact two-valid-paths test: the augmented
/// super-source graph is rebuilt in place per call.
#[derive(Default)]
struct AugScratch {
    endpoints: Vec<(VertexId, VertexId)>,
    csr: CsrUndirected,
    bridge: BridgeScratch,
    visited: Vec<bool>,
    parent_edge: Vec<u32>,
    queue: Vec<VertexId>,
    allocs: u64,
}

impl AugScratch {
    fn preallocate(&mut self, n: usize, m: usize) {
        if self.endpoints.capacity() < m {
            self.endpoints.reserve(m - self.endpoints.capacity());
        }
        self.csr.preallocate(n + 1, m);
        self.bridge.preallocate(n + 1, m);
        grow(&mut self.visited, n + 1, false, &mut self.allocs);
        grow(&mut self.parent_edge, n + 1, 0u32, &mut self.allocs);
        if self.queue.capacity() < n + 1 {
            self.queue.reserve(n + 1 - self.queue.capacity());
        }
        self.allocs = 0;
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs + self.csr.alloc_events() + self.bridge.alloc_events(),
            self.csr.capacity_bytes()
                + self.bridge.capacity_bytes()
                + (self.endpoints.capacity() * std::mem::size_of::<(VertexId, VertexId)>()
                    + self.visited.capacity() * std::mem::size_of::<bool>()
                    + self.parent_edge.capacity() * std::mem::size_of::<u32>()
                    + self.queue.capacity() * std::mem::size_of::<VertexId>())
                    as u64,
        )
    }
}

impl ComponentSearch {
    fn usage(&self) -> ScratchUsage {
        let pool: ScratchUsage = self.pool.iter().map(|b| b.usage()).sum();
        self.trail.usage()
            + self.frames.usage()
            + ScratchUsage::new(
                self.gc.alloc_events() + self.gc_doubled.alloc_events() + self.span.alloc_events(),
                self.gc.capacity_bytes()
                    + self.gc_doubled.capacity_bytes()
                    + self.span.capacity_bytes(),
            )
            + ScratchUsage::new(
                self.completion.alloc_events(),
                self.completion.capacity_bytes(),
            )
            + self.beyond.usage()
            + self.aug.usage()
            + pool
            + ScratchUsage::new(self.extra_allocs, 0)
    }
}

impl<'g> TerminalSteinerTree<'g> {
    /// A problem instance borrowing the graph.
    pub fn new(g: &'g UndirectedGraph, terminals: &[VertexId]) -> Self {
        TerminalSteinerTree {
            g: Cow::Borrowed(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// A problem instance owning the graph.
    pub fn from_graph(g: UndirectedGraph, terminals: &[VertexId]) -> TerminalSteinerTree<'static> {
        TerminalSteinerTree {
            g: Cow::Owned(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// Clones the borrowed graph (if any) so the instance becomes
    /// `'static` for the iterator front-end.
    pub fn into_owned(self) -> TerminalSteinerTree<'static> {
        TerminalSteinerTree {
            g: Cow::Owned(self.g.into_owned()),
            terminals: self.terminals,
            stats: self.stats,
            search: self.search,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        }
    }
}

/// A minimal terminal Steiner tree `T′ ⊇ T` (Lemma 28's construction),
/// left in `completion.edges`. Allocation-free over the scratch buffers.
fn minimal_completion_csr(
    gc: &CsrUndirected,
    comp_mask: &[bool],
    terminals: &[VertexId],
    t: &PartialTree,
    seeds: &mut Vec<VertexId>,
    completion: &mut CompletionScratch,
    work: &mut u64,
) {
    *work += (gc.num_vertices() + gc.num_edges()) as u64;
    // Stage 1: span C from the non-terminal part of T.
    seeds.clear();
    seeds.extend(t.vertices.iter().copied().filter(|v| comp_mask[v.index()]));
    debug_assert!(!seeds.is_empty(), "a nonempty partial tree touches C");
    grow_spanning_tree_csr(gc, seeds, &t.edges, Some(comp_mask), completion);
    // Stage 2: one leaf edge per missing terminal.
    for &w in terminals {
        if t.in_tree[w.index()] {
            continue;
        }
        let leaf_edge = gc
            .adjacency(w)
            .iter()
            .filter(|(v, _)| comp_mask[v.index()])
            .map(|&(_, e)| e)
            .min()
            .expect("W ⊆ N(C) guarantees an attachment edge");
        completion.edges.push(leaf_edge);
    }
    // Stage 3: prune non-terminal leaves (Proposition 26).
    let is_terminal = &t.is_terminal;
    let in_tree = &t.in_tree;
    prune_leaves_csr(
        gc,
        |v| is_terminal[v.index()] || in_tree[v.index()],
        completion,
    );
}

/// Exact test: does `w` have at least two valid paths? A valid path is
/// an `(V(T) ∖ W)`-`w` path inside `G[C ∪ {w}]`. We apply Lemma 16 to
/// the graph augmented with a super-source wired to the source set by
/// one parallel edge per boundary edge: the valid path is unique iff
/// every edge of one super-source-to-`w` path is a bridge there.
///
/// Note: this is stricter than the paper's Lemma 30 test (bridges of
/// `G[C ∪ W]`). That test can report a spurious second path whose
/// rerouting cycle passes through *another terminal* — which valid
/// paths must avoid. See DESIGN.md §9.6 (erratum note).
fn has_two_valid_paths(
    gc: &CsrUndirected,
    comp_mask: &[bool],
    t: &PartialTree,
    w: VertexId,
    aug: &mut AugScratch,
    work: &mut u64,
) -> bool {
    let n = gc.num_vertices();
    *work += (n + gc.num_edges()) as u64;
    // Vertices 0..n are gc's; vertex n is the super-source.
    let super_source = VertexId::new(n);
    let in_c_or_w = |v: VertexId| comp_mask[v.index()] || v == w;
    let source = |v: VertexId| t.in_tree[v.index()] && comp_mask[v.index()];
    aug.endpoints.clear();
    for i in 0..gc.num_edges() {
        let (u, v) = gc.endpoints(EdgeId::new(i));
        match (source(u), source(v)) {
            (true, true) => {}
            (true, false) if in_c_or_w(v) => aug.endpoints.push((super_source, v)),
            (false, true) if in_c_or_w(u) => aug.endpoints.push((super_source, u)),
            (false, false) if in_c_or_w(u) && in_c_or_w(v) => aug.endpoints.push((u, v)),
            _ => {}
        }
    }
    aug.csr.rebuild_from_edges(n + 1, &aug.endpoints);
    // BFS from the super-source, recording parent edges.
    const NONE: u32 = u32::MAX;
    grow(&mut aug.visited, n + 1, false, &mut aug.allocs);
    grow(&mut aug.parent_edge, n + 1, NONE, &mut aug.allocs);
    aug.queue.clear();
    aug.visited[super_source.index()] = true;
    aug.queue.push(super_source);
    let mut head = 0;
    while head < aug.queue.len() {
        let u = aug.queue[head];
        head += 1;
        for &(v, e) in aug.csr.adjacency(u) {
            if !aug.visited[v.index()] {
                aug.visited[v.index()] = true;
                aug.parent_edge[v.index()] = e.0;
                aug.queue.push(v);
            }
        }
    }
    if !aug.visited[w.index()] {
        return false; // no valid path at all (cannot happen mid-run)
    }
    bridges_csr_into(&aug.csr, None, &mut aug.bridge);
    // Unique iff every edge of this path is a bridge (Lemma 16 with
    // T = {super-source}); i.e. a second path exists iff some edge of the
    // BFS path is not a bridge.
    let mut cur = w;
    while cur != super_source {
        let e = aug.parent_edge[cur.index()];
        debug_assert_ne!(e, NONE, "w is reachable from the super-source");
        if !aug.bridge.is_bridge[e as usize] {
            return true;
        }
        cur = aug.csr.other_endpoint(EdgeId(e), cur);
    }
    false
}

impl MinimalSteinerProblem for TerminalSteinerTree<'_> {
    type Item = EdgeId;
    type Branch = TerminalBranch;

    const NAME: &'static str = "minimal terminal Steiner tree";

    fn validate(&self) -> Result<(), SteinerError> {
        crate::problem::validate_terminal_list(&self.terminals, self.g.num_vertices())
    }

    fn split_root(&self, _shard: crate::problem::RootShard) -> Option<Self> {
        Some(TerminalSteinerTree {
            g: self.g.clone(),
            terminals: self.terminals.clone(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        })
    }

    fn set_level_cache_cap(&mut self, cap: usize) {
        self.level_cache_cap = Some(cap.max(1));
    }

    fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    fn set_packed_frontiers(&mut self, on: bool) {
        self.packed = on;
    }

    fn cache_key(&self) -> Option<crate::cache::CacheKey> {
        // `prepare` sorts the terminals: fingerprint the sorted form (see
        // `SteinerTree::cache_key`).
        let mut sorted = self.terminals.clone();
        sorted.sort_unstable();
        // Solutions stay inside the terminals' components (see
        // `SteinerTree::cache_key` for why pinning only those regions is
        // sound under mutation).
        let regions =
            steiner_graph::RegionMap::of_undirected(&self.g).signature_of(sorted.iter().copied());
        Some(crate::cache::CacheKey {
            kind: Self::NAME,
            regions,
            query_fingerprint: crate::cache::fingerprint_terminals(&sorted),
        })
    }

    fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
        self.validate()?;
        self.terminals.sort_unstable();
        let g = &*self.g;
        let n = g.num_vertices();
        self.stats.preprocessing_work = (n + g.num_edges()) as u64;
        if !all_in_one_component(g, &self.terminals, None) {
            return Err(SteinerError::DisconnectedTerminals { set: 0 });
        }
        if self.terminals.len() == 1 {
            // Every tree with one terminal has a non-terminal leaf.
            return Ok(Prepared::Empty);
        }
        if self.terminals.len() == 2 {
            // Minimal terminal Steiner trees with two terminals are exactly
            // the w₀-w₁ paths (§5.1).
            let doubled = Arc::new(CsrDigraph::doubled(g));
            let mut path = PathScratch::new();
            path.preallocate_capped(
                n + 2,
                2 * g.num_edges() + 2,
                self.level_cache_cap
                    .unwrap_or(steiner_paths::enumerate::DEFAULT_LEVEL_CACHE_CAP),
            );
            let boundary = Vec::with_capacity(2 * g.num_edges() + 2);
            let mut search = TwoTerminalSearch {
                doubled,
                path,
                boundary,
                current: Vec::with_capacity(n + 1),
                active: false,
                baseline_allocs: 0,
            };
            search.baseline_allocs = search.usage().allocs;
            self.search = Some(TerminalSearch::TwoTerminals(Box::new(search)));
            return Ok(Prepared::Search);
        }
        // |W| ≥ 3: clean the graph, split into admissible components.
        let mut is_terminal = vec![false; n];
        for &w in &self.terminals {
            is_terminal[w.index()] = true;
        }
        let mut gc = UndirectedGraph::with_capacity(n, g.num_edges());
        let mut orig_edge = Vec::with_capacity(g.num_edges());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if is_terminal[u.index()] && is_terminal[v.index()] {
                continue; // Lemma 27: never part of a solution when |W| ≥ 3
            }
            gc.add_edge(u, v).expect("cleaned edge is valid");
            orig_edge.push(e);
        }
        let non_terminal_mask: Vec<bool> = (0..n).map(|v| !is_terminal[v]).collect();
        let comps = connected_components(&gc, Some(&non_terminal_mask));
        self.stats.preprocessing_work += (n + gc.num_edges()) as u64;
        let gc_csr = CsrUndirected::from_graph(&gc);
        let (w0, w1) = (self.terminals[0], self.terminals[1]);
        let mut admissible = Vec::new();
        for c in 0..comps.count {
            // Admissibility: W ⊆ N(C) (Lemma 27).
            let comp_mask: Vec<bool> = (0..n).map(|v| comps.comp[v] == Some(c as u32)).collect();
            let mut covered = vec![false; n];
            let mut cover_count = 0usize;
            for (v, &in_comp) in comp_mask.iter().enumerate() {
                if !in_comp {
                    continue;
                }
                for (u, _) in gc.neighbors(VertexId::new(v)) {
                    if is_terminal[u.index()] && !covered[u.index()] {
                        covered[u.index()] = true;
                        cover_count += 1;
                    }
                }
            }
            self.stats.preprocessing_work += (n + gc.num_edges()) as u64;
            if cover_count < self.terminals.len() {
                continue; // W ⊄ N(C): no solutions in this component
            }
            // Bridges of G[C ∪ W] — fixed for the whole component (Lemma 30).
            let mut allowed_cw: Vec<bool> = comp_mask.clone();
            for &w in &self.terminals {
                allowed_cw[w.index()] = true;
            }
            let bridge = steiner_graph::bridges::bridges(&gc, Some(&allowed_cw));
            let mut allowed01 = comp_mask.clone();
            allowed01[w0.index()] = true;
            allowed01[w1.index()] = true;
            admissible.push(ComponentCtx {
                comp_mask,
                allowed01,
                bridge,
            });
        }
        if admissible.is_empty() {
            return Ok(Prepared::Empty);
        }
        let num_edges = gc_csr.num_edges();
        let gc_doubled = Arc::new(CsrDigraph::doubled(&gc));
        let mut completion = CompletionScratch::default();
        completion.preallocate(n, num_edges);
        let mut beyond = BeyondScratch::default();
        beyond.preallocate(n, num_edges);
        let mut aug = AugScratch::default();
        aug.preallocate(n, num_edges);
        let mut trail = Trail::new();
        trail.preallocate(2 * n + 2);
        let level_cache_cap = self
            .level_cache_cap
            .unwrap_or(steiner_paths::enumerate::DEFAULT_LEVEL_CACHE_CAP);
        let mut pool = Vec::with_capacity(self.terminals.len() + 2);
        for _ in 0..self.terminals.len() + 2 {
            let mut bs = BranchScratch::default();
            bs.preallocate(n, num_edges, level_cache_cap);
            pool.push(bs);
        }
        let mut t = PartialTree::new(n, &self.terminals, None);
        t.vertices.reserve(n + 1);
        t.edges.reserve(n + 1);
        let mut span = DynamicSpanning::new();
        span.preallocate(n, 2 * num_edges);
        let mut frames = FrameLog::new();
        frames.preallocate(self.terminals.len() + 3);
        let mut search = ComponentSearch {
            gc: gc_csr,
            gc_doubled,
            orig_edge,
            comps: admissible,
            active: None,
            t,
            edge_in_t: vec![false; num_edges],
            trail,
            span,
            span_comp: None,
            frames,
            completion,
            beyond,
            seeds: Vec::with_capacity(n + 1),
            aug,
            pool,
            depth: 0,
            level_cache_cap,
            extra_allocs: 0,
            baseline_allocs: 0,
        };
        search.baseline_allocs = search.usage().allocs;
        self.search = Some(TerminalSearch::Components(Box::new(search)));
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.g.num_edges())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self, _out: &mut Vec<EdgeId>) -> NodeStep<TerminalBranch> {
        let incremental = self.incremental;
        let stats = &mut self.stats;
        let terminals = &self.terminals;
        match self
            .search
            .as_mut()
            .expect("prepare() runs before the search")
        {
            TerminalSearch::TwoTerminals(ts) => {
                if ts.active {
                    NodeStep::Complete
                } else {
                    NodeStep::Branch(TerminalBranch::Root)
                }
            }
            TerminalSearch::Components(cs) => {
                let Some(active) = cs.active else {
                    return NodeStep::Branch(TerminalBranch::Root);
                };
                if cs.t.complete() {
                    return NodeStep::Complete;
                }
                if incremental && cs.span_comp == Some(active) {
                    // Incremental fast path: a missing terminal reached
                    // over the component's bridge skeleton (sourced from
                    // V(T) ∩ C, with terminals as barriers) has a unique
                    // valid path — an all-bridge path avoiding other
                    // terminals internally is the only one (the Lemma 16
                    // argument inside G[C ∪ {w}]). If every missing
                    // terminal is reached, the completion is unique and
                    // equals the recorded forced paths. O(|W| + |answer|).
                    stats.work += terminals.len() as u64;
                    let span = &mut cs.span;
                    let in_tree = &cs.t.in_tree;
                    let orig_edge = &cs.orig_edge;
                    _out.extend(cs.t.edges.iter().map(|e| orig_edge[e.index()]));
                    let all_forced = span.collect_all_forced(
                        terminals,
                        |v| in_tree[v.index()],
                        |e| _out.push(orig_edge[e as usize]),
                    );
                    if all_forced {
                        stats.classify_incremental += 1;
                        stats.work += _out.len() as u64;
                        #[cfg(debug_assertions)]
                        {
                            // Cross-check against the fresh completion
                            // pass: T′ must carry no non-bridge extension
                            // edge and equal the collected set.
                            let mut dummy = 0u64;
                            minimal_completion_csr(
                                &cs.gc,
                                &cs.comps[active].comp_mask,
                                terminals,
                                &cs.t,
                                &mut cs.seeds,
                                &mut cs.completion,
                                &mut dummy,
                            );
                            debug_assert!(
                                cs.completion.edges.iter().all(|e| cs.edge_in_t[e.index()]
                                    || cs.comps[active].bridge[e.index()]),
                                "incremental Unique verdict disagrees with the fresh pass"
                            );
                            let mut got = _out.clone();
                            got.sort_unstable();
                            let mut want: Vec<EdgeId> = cs
                                .completion
                                .edges
                                .iter()
                                .map(|e| cs.orig_edge[e.index()])
                                .collect();
                            want.sort_unstable();
                            debug_assert_eq!(
                                got, want,
                                "incremental unique completion differs from T′"
                            );
                        }
                        return NodeStep::Unique;
                    }
                    _out.clear();
                    stats.classify_rebuilds += 1;
                } else {
                    stats.classify_rebuilds += 1;
                }
                let ctx = &cs.comps[active];
                minimal_completion_csr(
                    &cs.gc,
                    &ctx.comp_mask,
                    terminals,
                    &cs.t,
                    &mut cs.seeds,
                    &mut cs.completion,
                    &mut stats.work,
                );
                let tprime = &cs.completion.edges;
                // Fast certificate (Lemma 30 direction that *is* sound): if
                // every edge of E(T') ∖ E(T) is a bridge of G[C ∪ W], the
                // completion is unique.
                let candidate = tprime
                    .iter()
                    .copied()
                    .find(|e| !cs.edge_in_t[e.index()] && !ctx.bridge[e.index()]);
                let branch_terminal = match candidate {
                    None => None,
                    Some(e_star) => {
                        // Primary candidate: the terminal behind the
                        // non-bridge edge; verified exactly, with a fallback
                        // scan over the remaining missing terminals (the
                        // Lemma 30 erratum case).
                        let primary = find_terminal_beyond_csr(
                            &cs.gc,
                            tprime,
                            e_star,
                            &cs.t.in_tree,
                            &cs.t.is_terminal,
                            &mut cs.beyond,
                            &mut stats.work,
                        );
                        if has_two_valid_paths(
                            &cs.gc,
                            &ctx.comp_mask,
                            &cs.t,
                            primary,
                            &mut cs.aug,
                            &mut stats.work,
                        ) {
                            Some(primary)
                        } else {
                            terminals
                                .iter()
                                .copied()
                                .filter(|&v| !cs.t.in_tree[v.index()] && v != primary)
                                .find(|&w| {
                                    has_two_valid_paths(
                                        &cs.gc,
                                        &ctx.comp_mask,
                                        &cs.t,
                                        w,
                                        &mut cs.aug,
                                        &mut stats.work,
                                    )
                                })
                        }
                    }
                };
                match branch_terminal {
                    Some(w) => NodeStep::Branch(TerminalBranch::Terminal(w)),
                    // No terminal branches: the completion is unique.
                    None => {
                        _out.extend(cs.completion.edges.iter().map(|e| cs.orig_edge[e.index()]));
                        NodeStep::Unique
                    }
                }
            }
        }
    }

    fn solution(&self, out: &mut Vec<EdgeId>) {
        match self
            .search
            .as_ref()
            .expect("prepare() runs before the search")
        {
            TerminalSearch::TwoTerminals(ts) => {
                debug_assert!(ts.active, "emitting inside the root branch");
                out.extend_from_slice(&ts.current);
            }
            TerminalSearch::Components(cs) => {
                out.extend(cs.t.edges.iter().map(|e| cs.orig_edge[e.index()]));
            }
        }
    }

    fn seal_stats(&mut self) {
        if let Some(search) = &self.search {
            let (usage, baseline) = match search {
                TerminalSearch::TwoTerminals(ts) => (ts.usage(), ts.baseline_allocs),
                TerminalSearch::Components(cs) => {
                    self.stats.note_connectivity(cs.span.repair_stats());
                    (cs.usage(), cs.baseline_allocs)
                }
            };
            self.stats
                .note_scratch(ScratchUsage::new(usage.allocs - baseline, usage.bytes));
        }
    }

    fn record_subtree(&self) -> Option<SubtreeRecord<EdgeId>> {
        match self.search.as_ref()? {
            TerminalSearch::TwoTerminals(ts) => Some(SubtreeRecord {
                vertices: Vec::new(),
                items: ts.current.clone(),
                meta: 0,
            }),
            TerminalSearch::Components(cs) => Some(SubtreeRecord {
                vertices: cs.t.vertices.clone(),
                items: cs.t.edges.clone(),
                meta: cs.active.expect("recording inside a branch descent") as u64,
            }),
        }
    }

    fn replay_subtree(
        &mut self,
        record: &SubtreeRecord<EdgeId>,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        let two_terminal = matches!(self.search.as_ref(), Some(TerminalSearch::TwoTerminals(_)));
        if two_terminal {
            let ts = self.two_terminal_mut();
            ts.current.clear();
            ts.current.extend_from_slice(&record.items);
            ts.active = true;
            let flow = child(self);
            self.two_terminal_mut().active = false;
            flow
        } else {
            self.components_mut().active = Some(record.meta as usize);
            self.descend(&record.vertices, &record.items);
            let flow = child(self);
            self.retract_frame();
            self.components_mut().active = None;
            flow
        }
    }

    fn branch(
        &mut self,
        at: TerminalBranch,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        match at {
            TerminalBranch::Root => self.branch_root(child),
            TerminalBranch::Terminal(w) => self.branch_terminal(w, child),
        }
    }
}

impl TerminalSteinerTree<'_> {
    /// The component-mode search state; panics outside |W| ≥ 3 mode
    /// (the mode is fixed by `prepare()`).
    fn components_mut(&mut self) -> &mut ComponentSearch {
        match self.search.as_mut() {
            Some(TerminalSearch::Components(cs)) => cs,
            _ => unreachable!("component mode is fixed by prepare()"),
        }
    }

    /// The |W| = 2 search state; panics outside two-terminal mode.
    fn two_terminal_mut(&mut self) -> &mut TwoTerminalSearch {
        match self.search.as_mut() {
            Some(TerminalSearch::TwoTerminals(ts)) => ts,
            _ => unreachable!("two-terminal mode is fixed by prepare()"),
        }
    }

    /// Takes the depth-`d` branch scratch out of the component pool,
    /// growing the pool if the recursion outruns the preallocation.
    fn take_branch_scratch(&mut self) -> (BranchScratch, usize) {
        let cs = self.components_mut();
        let depth = cs.depth;
        if cs.pool.len() <= depth {
            cs.extra_allocs += 1;
            let mut fresh = BranchScratch::default();
            fresh.preallocate(cs.gc.num_vertices(), cs.gc.num_edges(), cs.level_cache_cap);
            cs.pool.push(fresh);
        }
        cs.depth = depth + 1;
        (std::mem::take(&mut cs.pool[depth]), depth)
    }

    fn put_branch_scratch(&mut self, bs: BranchScratch, depth: usize) {
        let cs = self.components_mut();
        cs.pool[depth] = bs;
        cs.depth = depth;
    }

    /// Rebuilds the connectivity skeleton for component `ci` (bridges of
    /// `G[C ∪ W]`, terminals as barriers) if it currently describes a
    /// different component. Component switches only happen at the root,
    /// with an empty partial tree, so no reach state needs migrating.
    fn ensure_span(&mut self, ci: usize) {
        let terminals = &self.terminals;
        let cs = match self.search.as_mut() {
            Some(TerminalSearch::Components(cs)) => cs,
            _ => unreachable!("component mode is fixed by prepare()"),
        };
        if cs.span_comp == Some(ci) {
            return;
        }
        debug_assert!(
            cs.t.vertices.is_empty(),
            "the skeleton only switches components at the root"
        );
        let n = cs.gc.num_vertices();
        cs.span.begin_skeleton(n);
        for &w in terminals {
            cs.span.set_barrier(w);
        }
        let bridge = &cs.comps[ci].bridge;
        for (i, _) in bridge.iter().enumerate().filter(|(_, &b)| b) {
            let (u, v) = cs.gc.endpoints(EdgeId::new(i));
            cs.span.add_edge(u, v, i as u32);
        }
        cs.span.finish_skeleton();
        cs.span_comp = Some(ci);
        self.stats.work += (n + cs.gc.num_edges()) as u64;
    }

    /// The descend half of the branch protocol (component mode): extends
    /// the partial tree by one valid path, records the edge-mask trail,
    /// attaches the path vertices to the connectivity skeleton, and
    /// pushes the combined typed frame. Shared by locally generated and
    /// replayed root children.
    fn descend(&mut self, path_vertices: &[VertexId], path_edges: &[EdgeId]) {
        let incremental = self.incremental;
        if incremental {
            let ci = self
                .components_mut()
                .active
                .expect("descend runs inside an active component");
            self.ensure_span(ci);
        }
        let cs = self.components_mut();
        let ext = cs.t.extend_path(path_vertices, path_edges);
        let trail = cs.trail.mark();
        for &e in path_edges {
            cs.trail.set(&mut cs.edge_in_t, e.index());
        }
        // The partial-tree mask doubles as the query layer's source
        // oracle; nothing else to maintain on descent.
        let span = cs.span.mark();
        cs.frames.push(TermFrame { ext, trail, span });
    }

    /// The undo half: pops the innermost frame and restores every layer.
    fn retract_frame(&mut self) {
        let cs = self.components_mut();
        let frame = cs.frames.pop();
        cs.span.undo_to(frame.span);
        cs.trail.undo_to(&mut cs.edge_in_t, frame.trail);
        cs.t.retract(frame.ext);
    }

    /// Root expansion: |W| = 2 branches on the `w₀`-`w₁` paths of `G`;
    /// |W| ≥ 3 on the `w₀`-`w₁` paths inside `G[C ∪ {w₀, w₁}]` of every
    /// admissible component.
    fn branch_root(
        &mut self,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let (w0, w1) = (self.terminals[0], self.terminals[1]);
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        match self
            .search
            .as_ref()
            .expect("prepare() runs before the search")
        {
            TerminalSearch::TwoTerminals(_) => {
                let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
                let (mut path, mut boundary, doubled) = {
                    let ts = self.two_terminal_mut();
                    (
                        std::mem::take(&mut ts.path),
                        std::mem::take(&mut ts.boundary),
                        Arc::clone(&ts.doubled),
                    )
                };
                // The search's doubled CSR is fixed, so packed BFS
                // caches may survive across root replays.
                path.begin_same_graph(doubled.num_vertices() + 1);
                let sources = [w0];
                let pstats = enumerate_source_set_paths_csr(
                    &doubled,
                    &sources,
                    w1,
                    EnumerateOptions {
                        packed_frontiers: self.packed,
                        ..EnumerateOptions::default()
                    },
                    &mut path,
                    &mut boundary,
                    &mut |p| {
                        children += 1;
                        self.stats.work += per_child;
                        let ts = self.two_terminal_mut();
                        ts.current.clear();
                        ts.current
                            .extend(p.arcs.iter().map(|a| EdgeId::new(a.index() / 2)));
                        ts.active = true;
                        let f = child(self);
                        self.two_terminal_mut().active = false;
                        if f.is_break() {
                            flow = ControlFlow::Break(());
                        }
                        f
                    },
                );
                self.stats.path_gen_work += pstats.work;
                self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
                self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
                let ts = self.two_terminal_mut();
                ts.path = path;
                ts.boundary = boundary;
            }
            TerminalSearch::Components(cs) => {
                let num_comps = cs.comps.len();
                let n = cs.gc.num_vertices();
                let per_child = (n + cs.gc.num_edges()) as u64;
                let doubled = Arc::clone(&cs.gc_doubled);
                let (mut bs, depth) = self.take_branch_scratch();
                for ci in 0..num_comps {
                    // Case (1): the w₀-w₁ paths inside G[C ∪ {w₀, w₁}],
                    // using the component's precomputed mask.
                    {
                        let cs = self.components_mut();
                        // Same contracted doubled CSR for every
                        // component and depth: keep the packed caches.
                        let removed = bs.path.begin_same_graph(n + 1);
                        for (v, r) in removed.iter_mut().enumerate().take(n) {
                            *r = !cs.comps[ci].allowed01[v];
                        }
                        bs.sources.clear();
                        bs.sources.push(w0);
                        cs.active = Some(ci);
                    }
                    let BranchScratch {
                        path,
                        boundary,
                        sources,
                        edges,
                    } = &mut bs;
                    let pstats = enumerate_source_set_paths_csr(
                        &doubled,
                        sources,
                        w1,
                        EnumerateOptions {
                            packed_frontiers: self.packed,
                            ..EnumerateOptions::default()
                        },
                        path,
                        boundary,
                        &mut |p| {
                            children += 1;
                            self.stats.work += per_child;
                            edges.clear();
                            edges.extend(p.arcs.iter().map(|a| EdgeId::new(a.index() / 2)));
                            self.descend(p.vertices, edges);
                            let f = child(self);
                            self.retract_frame();
                            if f.is_break() {
                                flow = ControlFlow::Break(());
                            }
                            f
                        },
                    );
                    self.stats.path_gen_work += pstats.work;
                    self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
                    self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
                    if flow.is_break() {
                        break;
                    }
                }
                self.put_branch_scratch(bs, depth);
                self.components_mut().active = None;
            }
        }
        (children, flow)
    }

    /// Valid paths for `(T, w)`: `(V(T) ∖ W)`-`w` paths inside
    /// `G[C ∪ {w}]`.
    fn branch_terminal(
        &mut self,
        w: VertexId,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let (mut bs, depth) = self.take_branch_scratch();
        let (doubled, per_child) = {
            let cs = self.components_mut();
            let ctx = &cs.comps[cs.active.expect("active component set by the root branch")];
            let n = cs.gc.num_vertices();
            // Sources: V(T) ∩ C; excluded vertices: outside C ∪ {w}.
            // Same contracted doubled CSR on every branch of this
            // search: keep the packed caches.
            let removed = bs.path.begin_same_graph(n + 1);
            for (v, r) in removed.iter_mut().enumerate().take(n) {
                *r = !(ctx.comp_mask[v] || VertexId::new(v) == w);
            }
            bs.sources.clear();
            bs.sources.extend(
                cs.t.vertices
                    .iter()
                    .copied()
                    .filter(|v| ctx.comp_mask[v.index()]),
            );
            (Arc::clone(&cs.gc_doubled), (n + cs.gc.num_edges()) as u64)
        };
        self.stats.work += per_child;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let BranchScratch {
            path,
            boundary,
            sources,
            edges,
        } = &mut bs;
        let pstats = enumerate_source_set_paths_csr(
            &doubled,
            sources,
            w,
            EnumerateOptions {
                packed_frontiers: self.packed,
                ..EnumerateOptions::default()
            },
            path,
            boundary,
            &mut |p| {
                children += 1;
                self.stats.work += per_child;
                edges.clear();
                edges.extend(p.arcs.iter().map(|a| EdgeId::new(a.index() / 2)));
                self.descend(p.vertices, edges);
                let f = child(self);
                self.retract_frame();
                if f.is_break() {
                    flow = ControlFlow::Break(());
                }
                f
            },
        );
        self.stats.path_gen_work += pstats.work;
        self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
        self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
        self.put_branch_scratch(bs, depth);
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 30 guarantees two valid paths behind a non-bridge edge"
        );
        (children, flow)
    }
}

/// Enumerates all minimal terminal Steiner trees of `(g, terminals)`
/// through an arbitrary [`SolutionSink`].
///
/// Degenerate cases: |W| ≤ 1 has no solutions (every tree has a
/// non-terminal leaf); |W| = 2 reduces to `s`-`t` path enumeration.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `solver::run_with_sink(&mut TerminalSteinerTree::new(g, terminals), emitter)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(TerminalSteinerTree::new(g, terminals))` with a custom sink"
)]
pub fn enumerate_minimal_terminal_steiner_trees_with(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    let mut problem = TerminalSteinerTree::new(g, &normalize_terminals(terminals));
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal terminal Steiner trees with amortized O(n + m)
/// time per solution (Theorem 31), emitting directly.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(TerminalSteinerTree::new(g, terminals)).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(TerminalSteinerTree::new(g, terminals)).for_each(sink)`"
)]
pub fn enumerate_minimal_terminal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut problem = TerminalSteinerTree::new(g, &normalize_terminals(terminals));
    let mut direct = DirectSink { sink };
    run_sink_lenient(&mut problem, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay (Theorem 31).
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(TerminalSteinerTree::new(g, terminals)).with_queue(config).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(TerminalSteinerTree::new(g, terminals)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_terminal_steiner_trees_queued(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut problem = TerminalSteinerTree::new(g, &normalize_terminals(terminals));
    let mut queue = OutputQueue::new(config, sink);
    run_sink_lenient(&mut problem, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> BTreeSet<Vec<EdgeId>> {
        let mut out = BTreeSet::new();
        Enumeration::new(TerminalSteinerTree::new(g, w))
            .for_each(|edges| {
                assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        out
    }

    #[test]
    fn two_terminals_are_paths() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = [VertexId(0), VertexId(2)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn direct_terminal_edge_counts_for_two() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        let got = collect(&g, &[VertexId(0), VertexId(1)]);
        assert_eq!(got.len(), 1, "single edge is a valid 2-terminal solution");
    }

    #[test]
    fn star_with_three_terminals() {
        // Center 0, terminals 1, 2, 3: the star is the unique solution.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let w = [VertexId(1), VertexId(2), VertexId(3)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn terminal_terminal_edges_are_ignored() {
        // Terminals 1, 2, 3 around center 0, plus edge {1, 2} which no
        // solution may use (Lemma 27).
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let w = [VertexId(1), VertexId(2), VertexId(3)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        for sol in &got {
            assert!(!sol.contains(&EdgeId(3)));
        }
    }

    #[test]
    fn multiple_components_enumerate_separately() {
        // Terminals 0, 1, 2; two internal "hubs" 3 and 4, each adjacent to
        // all terminals: two disjoint component solutions.
        let g = UndirectedGraph::from_edges(5, &[(3, 0), (3, 1), (3, 2), (4, 0), (4, 1), (4, 2)])
            .unwrap();
        let w = [VertexId(0), VertexId(1), VertexId(2)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_terminal_steiner_trees(&g, &w));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn single_terminal_has_no_solutions() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        let trees = Enumeration::new(TerminalSteinerTree::new(&g, &[VertexId(0)]))
            .collect_vec()
            .unwrap();
        assert!(trees.is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e51);
        for case in 0..60 {
            let n = 4 + case % 5;
            let m = (n + rng.gen_range(0..5)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            assert_eq!(
                collect(&g, &w),
                brute::minimal_terminal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    #[test]
    fn outputs_verify_minimal_terminal() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let mut count = 0;
        Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .for_each(|edges| {
                count += 1;
                assert!(crate::verify::is_minimal_terminal_steiner_tree(
                    &g, &w, edges
                ));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(count > 0);
    }

    #[test]
    fn queued_matches_direct() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let direct = collect(&g, &w);
        let mut queued = BTreeSet::new();
        Enumeration::new(TerminalSteinerTree::new(&g, &w))
            .with_default_queue()
            .for_each(|edges| {
                assert!(queued.insert(edges.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn iterator_front_end_matches_direct() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let direct = collect(&g, &w);
        let iterated: BTreeSet<Vec<EdgeId>> =
            Enumeration::new(TerminalSteinerTree::from_graph(g, &w))
                .into_iter()
                .unwrap()
                .collect();
        assert_eq!(direct, iterated);
    }

    #[test]
    fn search_does_not_allocate_after_prepare() {
        for w in [
            vec![VertexId(0), VertexId(11)],
            vec![VertexId(0), VertexId(3), VertexId(8)],
        ] {
            let g = steiner_graph::generators::grid(3, 4);
            let (run, stats) = Enumeration::new(TerminalSteinerTree::new(&g, &w)).with_stats();
            run.run().unwrap();
            let stats = stats.get();
            assert!(stats.solutions > 0);
            assert_eq!(
                stats.scratch_allocs, 0,
                "terminals {w:?}: the search must not allocate after prepare()"
            );
            assert!(stats.peak_scratch_bytes > 0);
        }
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(3), VertexId(8)];
        let new_api = collect(&g, &w);
        let mut old_api = BTreeSet::new();
        enumerate_minimal_terminal_steiner_trees(&g, &w, &mut |edges| {
            old_api.insert(edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(new_api, old_api);
    }
}
